"""Classic setuptools entry point; all metadata lives in setup.cfg."""
from setuptools import setup

setup()
