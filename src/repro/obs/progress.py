"""Live in-scan progress, keyed off the *virtual* clock.

The real FlashRoute prints a live console line during a scan — sending
rate, destinations still in the ring, interfaces found.  The reproduction
runs on virtual time, so the reporter's notion of "every N seconds" must
be virtual too: a wall-clock interval would make ``--progress`` output
depend on host speed and be untestable.  Engines call
:meth:`ProgressReporter.maybe_report` at natural checkpoints (round ends,
chunk boundaries, per-trace); the reporter emits at most one line per
``interval`` of virtual time, so the sequence of lines is a pure function
of the scan — reproducible under ``capsys``.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO


class ProgressReporter:
    """Renders periodic one-line scan snapshots to a stream (stderr)."""

    __slots__ = ("interval", "_stream", "_next_at", "lines_emitted")

    def __init__(self, interval: float = 1.0,
                 stream: Optional[TextIO] = None) -> None:
        if interval <= 0:
            raise ValueError("progress interval must be positive")
        self.interval = interval
        self._stream = stream
        #: Virtual time of the next due report; 0.0 means the first
        #: checkpoint reports immediately.
        self._next_at = 0.0
        self.lines_emitted = 0

    def due(self, vnow: float) -> bool:
        """Is a report due at virtual time ``vnow``?

        Cheap enough to call per ring step; callers should only assemble
        the (possibly expensive) snapshot fields when this returns True.
        """
        return vnow >= self._next_at

    def report(self, vnow: float, fields: Dict[str, object]) -> None:
        """Emit one line now and schedule the next report."""
        stream = self._stream if self._stream is not None else sys.stderr
        rendered = " ".join(f"{key}={self._fmt(value)}"
                            for key, value in fields.items())
        stream.write(f"[progress] t={vnow:.1f}s {rendered}\n")
        self.lines_emitted += 1
        self._next_at = vnow + self.interval

    def maybe_report(self, vnow: float,
                     fields: Dict[str, object]) -> bool:
        """Report if due; returns whether a line was emitted."""
        if vnow < self._next_at:
            return False
        self.report(vnow, fields)
        return True

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:,.0f}"
        if isinstance(value, int):
            return f"{value:,}"
        return str(value)
