"""Shard-aware observability: heartbeats, merged forests, shard report.

A sharded scan (``scan --shards N``) fans the keyspace out across worker
processes, which turns every single-process telemetry channel into a
merge problem.  This module owns the three shard-specific pieces:

* **Heartbeats** — each worker wraps its engine progress callbacks in a
  :class:`ShardHeartbeatReporter` that, instead of printing, streams a
  small dict (slice id, worker pid, probes, responses, virtual time,
  wall time) to the parent over a multiprocessing queue.  The parent's
  :class:`ShardProgressView` aggregates them into a live line with
  per-worker rates, aggregate pps, an ETA, and straggler flags when a
  worker falls behind the median rate by a configurable factor.
* **Merged span forests** — :func:`merge_trace_logs` folds per-slice
  ``ScanTracer`` outputs into one multi-root JSONL forest (span ids
  renumbered, each event tagged with its ``slice``) that passes
  :func:`repro.obs.trace.validate_trace` and whose deterministic content
  is byte-identical for every worker count.
* **The post-run shard report** — :func:`add_shard_dimension` folds
  per-slice probes/responses/holes/virtual-duration plus an imbalance
  factor into the merged metrics snapshot under ``shard.*`` names;
  :func:`shard_wall_report` carries the wall-clock side (worker pids,
  CPU and wall seconds) for the snapshot's quarantined ``wall`` section.

Everything here follows the repository's determinism discipline: only
the heartbeat records and the wall report touch the wall clock, and both
stay out of the deterministic sections of every output file.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    TextIO, Tuple)

from .progress import ProgressReporter
from .trace import TRACE_SCHEMA

#: Schema tag carried on every heartbeat record.
HEARTBEAT_SCHEMA = "repro.obs.heartbeat/1"

#: A worker is flagged as a straggler when its probing rate falls below
#: the median worker rate divided by this factor.
DEFAULT_STRAGGLER_FACTOR = 4.0

#: Default minimum *wall-clock* gap between heartbeat emissions per
#: worker.  The virtual clock can race wall time by orders of magnitude
#: (a simulated second costs microseconds of CPU), so a purely virtual
#: throttle would flood the parent queue; the floor caps the enqueue
#: rate at human-observation timescales and keeps the worker-side cost
#: within the benchmarked <= 1.15x bar.
DEFAULT_MIN_WALL_SECONDS = 0.05

#: Engine progress fields forwarded onto heartbeat records.
_HEARTBEAT_FIELDS = ("tool", "round", "probes", "responses", "pps",
                     "remaining", "interfaces")


class ShardHeartbeatReporter(ProgressReporter):
    """Worker-side progress reporter that streams heartbeats upward.

    Drop-in for :class:`ProgressReporter` — engines call ``due`` /
    ``maybe_report`` at their usual checkpoints — but ``report`` builds a
    heartbeat record and hands it to ``emit`` (a queue ``put`` or a
    direct callback) instead of writing a console line.  Throttling is
    two-level: the virtual ``interval`` decides when a beat is *due*
    (the engine-side cadence), and ``min_wall_seconds`` floors the wall
    gap between actual emissions so a fast-racing virtual clock cannot
    flood the parent channel.  Heartbeats feed only the live view —
    never a deterministic output file — so the wall floor costs nothing
    in reproducibility.
    """

    __slots__ = ("slice_index", "_emit", "min_wall_seconds", "_last_wall",
                 "heartbeats_sent", "heartbeats_suppressed")

    def __init__(self, interval: float,
                 emit: Callable[[Dict[str, object]], None],
                 slice_index: int,
                 min_wall_seconds: float = DEFAULT_MIN_WALL_SECONDS
                 ) -> None:
        super().__init__(interval=interval)
        self.slice_index = slice_index
        self._emit = emit
        self.min_wall_seconds = min_wall_seconds
        self._last_wall: Optional[float] = None
        self.heartbeats_sent = 0
        self.heartbeats_suppressed = 0

    def report(self, vnow: float, fields: Dict[str, object]) -> None:
        self._next_at = vnow + self.interval
        wall = time.monotonic()
        if self._last_wall is not None \
                and wall - self._last_wall < self.min_wall_seconds:
            self.heartbeats_suppressed += 1
            return
        self._last_wall = wall
        record: Dict[str, object] = {
            "schema": HEARTBEAT_SCHEMA, "slice": self.slice_index,
            "pid": os.getpid(), "vt": vnow, "wall": time.time()}
        for key in _HEARTBEAT_FIELDS:
            if key in fields:
                record[key] = fields[key]
        self._emit(record)
        self.heartbeats_sent += 1
        self.lines_emitted += 1


class ShardProgressView:
    """Parent-side aggregation of heartbeats and slice completions.

    Renders at most one line per ``interval`` seconds of *wall* time (the
    parent has no virtual clock — worker clocks advance independently),
    plus one final ``done`` line from :meth:`finish`:

    .. code-block:: text

        [shard-progress] slices=5/16 agg_pps=1,234,567 eta=3.2s \\
            workers[4]: pid4711=312,400pps pid4712=9,800pps!straggler

    Per-worker rates are wall-clock probing rates between consecutive
    heartbeats from the same worker; the ETA extrapolates completed-slice
    wall time over the remaining slices.
    """

    def __init__(self, slices: int, workers: int = 1,
                 interval: float = 1.0,
                 stream: Optional[TextIO] = None,
                 straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if interval <= 0:
            raise ValueError("progress interval must be positive")
        if straggler_factor < 1.0:
            raise ValueError("straggler factor must be >= 1.0")
        self.slices = slices
        self.workers = workers
        self.interval = interval
        self.straggler_factor = straggler_factor
        self._stream = stream
        self._clock = clock
        self._start: Optional[float] = None
        self._last_render: Optional[float] = None
        #: pid -> {wall, slice, probes, rate} from its last heartbeat.
        self._worker_state: Dict[int, Dict[str, object]] = {}
        self.slices_done = 0
        self.probes_done = 0
        self.heartbeats_seen = 0
        self.lines_emitted = 0

    # ------------------------------------------------------------------ #

    def observe(self, heartbeat: Dict[str, object]) -> None:
        """Fold one worker heartbeat in; render if a line is due."""
        now = self._clock()
        if self._start is None:
            self._start = now
        self.heartbeats_seen += 1
        pid = heartbeat.get("pid")
        wall = float(heartbeat.get("wall", now))
        probes = int(heartbeat.get("probes", 0) or 0)
        state = self._worker_state.setdefault(
            pid, {"wall": wall, "slice": None, "probes": 0, "rate": None})
        if wall > float(state["wall"]):
            previous = (int(state["probes"])
                        if state["slice"] == heartbeat.get("slice") else 0)
            delta = probes - previous
            if delta >= 0:
                state["rate"] = delta / (wall - float(state["wall"]))
        state["wall"] = wall
        state["slice"] = heartbeat.get("slice")
        state["probes"] = probes
        self.maybe_render(now)

    def slice_done(self, slice_index: int, probes: int,
                   duration: float) -> None:
        """Record one completed slice; render if a line is due."""
        now = self._clock()
        if self._start is None:
            self._start = now
        self.slices_done += 1
        self.probes_done += probes
        self.maybe_render(now)

    # ------------------------------------------------------------------ #

    def worker_rates(self) -> Dict[int, float]:
        """Last-interval probing rate per worker pid (pps, wall time)."""
        return {pid: float(state["rate"])
                for pid, state in sorted(self._worker_state.items())
                if state["rate"] is not None}

    def stragglers(self) -> List[int]:
        """Worker pids probing slower than median / straggler_factor."""
        rates = self.worker_rates()
        if len(rates) < 2:
            return []
        median = statistics.median(rates.values())
        if median <= 0:
            return []
        floor = median / self.straggler_factor
        return [pid for pid, rate in rates.items() if rate < floor]

    # ------------------------------------------------------------------ #

    def maybe_render(self, now: Optional[float] = None) -> bool:
        """Render if the wall interval elapsed; first call is immediate."""
        now = self._clock() if now is None else now
        if self._last_render is not None \
                and now - self._last_render < self.interval:
            return False
        self._render_line(self._line(now), now)
        return True

    def _render_line(self, line: str, now: float) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        stream.write(line + "\n")
        self.lines_emitted += 1
        self._last_render = now

    def _line(self, now: float) -> str:
        elapsed = max(now - self._start, 0.0) \
            if self._start is not None else 0.0
        rates = self.worker_rates()
        if rates:
            aggregate = sum(rates.values())
        elif elapsed > 0:
            aggregate = self.probes_done / elapsed
        else:
            aggregate = 0.0
        if self.slices_done and self.slices_done < self.slices:
            remaining = self.slices - self.slices_done
            eta = f"{remaining * elapsed / self.slices_done:.1f}s"
        elif self.slices_done >= self.slices:
            eta = "0.0s"
        else:
            eta = "?"
        parts = [f"[shard-progress] slices={self.slices_done}"
                 f"/{self.slices}",
                 f"agg_pps={aggregate:,.0f}", f"eta={eta}"]
        if rates:
            slow = set(self.stragglers())
            bits = " ".join(
                f"pid{pid}={rate:,.0f}pps"
                + ("!straggler" if pid in slow else "")
                for pid, rate in rates.items())
            parts.append(f"workers[{len(self._worker_state)}]: {bits}")
        return " ".join(parts)

    def finish(self, total_probes: Optional[int] = None) -> None:
        """Emit the final ``done`` line with end-to-end aggregate pps."""
        now = self._clock()
        elapsed = max(now - self._start, 0.0) \
            if self._start is not None else 0.0
        probes = self.probes_done if total_probes is None else total_probes
        aggregate = probes / elapsed if elapsed > 0 else 0.0
        line = (f"[shard-progress] done slices={self.slices_done}"
                f"/{self.slices} probes={probes:,} "
                f"agg_pps={aggregate:,.0f} wall={elapsed:.2f}s")
        self._render_line(line, now)


# --------------------------------------------------------------------- #
# Merged span forests
# --------------------------------------------------------------------- #

def merge_trace_logs(texts: Sequence[str]) -> str:
    """Merge per-slice trace logs into one multi-root span forest.

    Each input is a complete ``ScanTracer`` JSONL text (header + one span
    tree).  The merge keeps slice order, emits a single header, renumbers
    span ids with a running offset so they stay unique across the forest
    (root parents remain 0), and tags every event with its ``slice``
    index.  Because per-slice content is deterministic and the fold runs
    in slice order, the merged deterministic content is byte-identical
    for every worker count.
    """
    if not texts:
        raise ValueError("need at least one slice trace to merge")
    lines_out: List[str] = []
    offset = 0
    for index, text in enumerate(texts):
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError(f"slice {index}: empty trace log")
        header = json.loads(lines[0])
        if header.get("ev") != "trace" \
                or header.get("schema") != TRACE_SCHEMA:
            raise ValueError(f"slice {index}: missing trace header line")
        if index == 0:
            lines_out.append(json.dumps(header, sort_keys=True))
        top = 0
        for line in lines[1:]:
            event = json.loads(line)
            event["slice"] = index
            span_id = event.get("id")
            if isinstance(span_id, int) and span_id > 0:
                top = max(top, span_id)
                event["id"] = span_id + offset
            parent = event.get("parent")
            if isinstance(parent, int) and parent > 0:
                event["parent"] = parent + offset
            lines_out.append(json.dumps(event, sort_keys=True))
        offset += top
    return "\n".join(lines_out) + "\n"


# --------------------------------------------------------------------- #
# Post-run shard report
# --------------------------------------------------------------------- #

def slice_metric_name(slice_index: int, slices: int, field: str) -> str:
    """Metric name for one slice's shard-report field."""
    width = max(2, len(str(max(slices - 1, 0))))
    return f"shard.slice{slice_index:0{width}d}.{field}"


def shard_imbalance(durations: Sequence[float]) -> float:
    """Max/mean ratio of per-slice virtual durations (1.0 = balanced)."""
    positive = [d for d in durations if d > 0]
    if not positive:
        return 1.0
    return max(positive) / (sum(positive) / len(positive))


def add_shard_dimension(snapshot: Dict[str, object],
                        slice_results: Iterable[Tuple[int, object]],
                        slices: int) -> Dict[str, object]:
    """Fold the per-slice shard report into a merged metrics snapshot.

    ``slice_results`` yields ``(slice_index, ScanResult)`` pairs.  Adds
    per-slice counters (``shard.sliceNN.probes/responses/route_holes``)
    and gauges (``.duration_virtual_seconds``, ``.targets``) plus the
    scan-wide ``shard.slices`` and ``shard.imbalance_factor`` gauges.
    Everything added derives from virtual-clock scan results, so the
    dimension is deterministic and invariant in worker count; wall-clock
    shard data belongs in :func:`shard_wall_report` instead.
    """
    counters = dict(snapshot.get("counters", {}))
    gauges = dict(snapshot.get("gauges", {}))
    durations: List[float] = []
    for slice_index, result in slice_results:
        def name(field: str, index: int = slice_index) -> str:
            return slice_metric_name(index, slices, field)
        counters[name("probes")] = result.probes_sent
        counters[name("responses")] = result.responses
        counters[name("route_holes")] = result.route_holes()
        gauges[name("duration_virtual_seconds")] = result.duration
        gauges[name("targets")] = result.num_targets
        durations.append(result.duration)
    gauges["shard.slices"] = slices
    gauges["shard.imbalance_factor"] = round(shard_imbalance(durations), 4)
    merged = dict(snapshot)
    merged["counters"] = dict(sorted(counters.items()))
    merged["gauges"] = dict(sorted(gauges.items()))
    return merged


def shard_wall_report(
        slice_stats: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Wall-clock shard accounting for the snapshot's ``wall`` section.

    Per-slice worker pid, CPU seconds, and wall seconds, plus per-worker
    totals — everything about the run that is true of *this host on this
    day* and must stay out of the deterministic sections.
    """
    workers: Dict[str, Dict[str, object]] = {}
    for entry in slice_stats:
        pid = str(entry.get("pid"))
        bucket = workers.setdefault(
            pid, {"slices": 0, "probes": 0, "cpu_seconds": 0.0})
        bucket["slices"] += 1
        bucket["probes"] += int(entry.get("probes") or 0)
        # Slices restored from a checkpoint carry no cpu accounting
        # (they were not run this time) — count them as zero.
        bucket["cpu_seconds"] = round(
            float(bucket["cpu_seconds"])
            + float(entry.get("cpu_seconds") or 0.0), 6)
    return {"slices": [dict(entry) for entry in slice_stats],
            "workers": dict(sorted(workers.items()))}


# --------------------------------------------------------------------- #
# Per-slice packet captures
# --------------------------------------------------------------------- #

def slice_pcap_path(base: str, slice_index: int,
                    slices: int = 1) -> str:
    """Capture path for one slice: ``out.pcap`` -> ``out.slice03.pcap``."""
    root, ext = os.path.splitext(base)
    width = max(2, len(str(max(slices - 1, 0))))
    return f"{root}.slice{slice_index:0{width}d}{ext or '.pcap'}"
