"""Structured scan tracing: JSONL span events over virtual + wall time.

A scan unfolds as nested spans — ``scan`` → ``phase`` (preprobe, main,
bulk, fill, …) → ``round`` — and the tracer writes one JSON object per
line at every boundary:

.. code-block:: json

    {"ev": "begin", "span": "round", "name": "round-3", "id": 7,
     "parent": 2, "vt": 4.096, "wt": 1730000000.1, "occupancy": 812}

``vt`` is the engine's virtual clock (deterministic under a fixed seed);
``wt`` is ``time.time()`` at write — the single wall-clock field, so tests
compare traces after stripping it (:func:`read_trace` keeps it, callers
drop it).  ``id``/``parent`` link the span tree; extra keyword fields ride
along verbatim.

The default tracer is :data:`NULL_TRACER`, whose methods are no-ops — an
engine constructed without telemetry pays nothing for tracing, and the
zero-overhead tests pin that the null path allocates no events.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, TextIO

#: Trace line schema tag (recorded on the ``scan`` begin event).
TRACE_SCHEMA = "repro.obs.trace/1"


class NullTracer:
    """No-op tracer: the zero-overhead default."""

    __slots__ = ()

    enabled = False

    def begin(self, span: str, name: str, vt: float, **fields) -> int:
        return 0

    def end(self, span: str, name: str, vt: float, **fields) -> None:
        pass

    def event(self, name: str, vt: float, **fields) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared no-op instance engines default to.
NULL_TRACER = NullTracer()


class ScanTracer:
    """Writes span begin/end and point events as JSON lines.

    Construct with either an open text stream or a path (owned and closed
    by :meth:`close`).  Span ids are sequential; the innermost open span
    is the parent of the next ``begin``.
    """

    enabled = True

    def __init__(self, stream: Optional[TextIO] = None,
                 path: Optional[str] = None) -> None:
        if (stream is None) == (path is None):
            raise ValueError("pass exactly one of stream= or path=")
        self._owns_stream = path is not None
        self._stream: TextIO = (open(path, "w", encoding="utf-8")
                                if path is not None else stream)
        self._next_id = 1
        self._open: List[int] = []  # stack of open span ids
        self.events_written = 0
        self._write({"ev": "trace", "schema": TRACE_SCHEMA,
                     "vt": 0.0, "wt": time.time()})

    # ------------------------------------------------------------------ #

    def _write(self, payload: Dict[str, object]) -> None:
        self._stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self.events_written += 1

    def begin(self, span: str, name: str, vt: float, **fields) -> int:
        """Open a span; returns its id (for symmetry — ``end`` pops)."""
        span_id = self._next_id
        self._next_id += 1
        payload: Dict[str, object] = {
            "ev": "begin", "span": span, "name": name, "id": span_id,
            "parent": self._open[-1] if self._open else 0,
            "vt": vt, "wt": time.time()}
        payload.update(fields)
        self._write(payload)
        self._open.append(span_id)
        return span_id

    def end(self, span: str, name: str, vt: float, **fields) -> None:
        """Close the innermost span (must match the ``begin`` order)."""
        span_id = self._open.pop() if self._open else 0
        payload: Dict[str, object] = {
            "ev": "end", "span": span, "name": name, "id": span_id,
            "vt": vt, "wt": time.time()}
        payload.update(fields)
        self._write(payload)

    def event(self, name: str, vt: float, **fields) -> None:
        """A point event inside the current span."""
        payload: Dict[str, object] = {
            "ev": "event", "name": name,
            "parent": self._open[-1] if self._open else 0,
            "vt": vt, "wt": time.time()}
        payload.update(fields)
        self._write(payload)

    def close(self) -> None:
        """Flush and (for path-constructed tracers) close the stream."""
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()


def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL trace file back into its event dictionaries."""
    events: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _innermost_id(stack: List[Dict[str, object]]) -> Optional[int]:
    """Id of the innermost open span: 0 at top level, None if unknown."""
    if not stack:
        return 0
    span_id = stack[-1].get("id")
    return span_id if isinstance(span_id, int) else None


def validate_trace(events: List[Dict[str, object]]) -> None:
    """Assert the span structure is a well-formed multi-root forest.

    Checks the header line; that every ``end`` closes the innermost open
    ``begin`` of the same span kind, name, and (when present) id; that
    span ids are unique across the whole forest and every ``parent``
    points at the innermost open span (so spans cannot overlap across
    roots or reference a span from another root); and that nothing stays
    open.  Sequential root spans — a merged per-slice forest — are
    valid.  Raises ``ValueError`` on the first violation.
    """
    if not events or events[0].get("ev") != "trace" \
            or events[0].get("schema") != TRACE_SCHEMA:
        raise ValueError("missing or bad trace header line")
    stack: List[Dict[str, object]] = []
    seen_ids: set = set()
    for event in events[1:]:
        kind = event.get("ev")
        if kind == "begin":
            span_id = event.get("id")
            if isinstance(span_id, int):
                if span_id == 0 or span_id in seen_ids:
                    raise ValueError(f"duplicate span id: {event!r}")
                seen_ids.add(span_id)
            parent = event.get("parent")
            expected = _innermost_id(stack)
            if isinstance(parent, int) and expected is not None \
                    and parent != expected:
                raise ValueError(
                    f"orphaned span (parent {parent} is not the "
                    f"innermost open span {expected}): {event!r}")
            stack.append(event)
        elif kind == "end":
            if not stack:
                raise ValueError(f"end without begin: {event!r}")
            opened = stack.pop()
            if (opened["span"], opened["name"]) != (event["span"],
                                                    event["name"]):
                raise ValueError(
                    f"mismatched span nesting: {opened!r} vs {event!r}")
            end_id = event.get("id")
            if isinstance(end_id, int) and \
                    isinstance(opened.get("id"), int) and \
                    end_id != opened["id"]:
                raise ValueError(
                    f"overlapping spans: end id {end_id} does not match "
                    f"its begin {opened['id']}: {event!r}")
            if event.get("vt", 0.0) < opened.get("vt", 0.0):
                raise ValueError(f"span ends before it begins: {event!r}")
        elif kind == "event":
            parent = event.get("parent")
            expected = _innermost_id(stack)
            if isinstance(parent, int) and expected is not None \
                    and parent != expected:
                raise ValueError(
                    f"orphaned event (parent {parent} is not the "
                    f"innermost open span {expected}): {event!r}")
        elif kind == "trace":
            raise ValueError(f"duplicate trace header: {event!r}")
        else:
            raise ValueError(f"unknown event kind: {event!r}")
    if stack:
        raise ValueError(f"unclosed spans: {[e['name'] for e in stack]}")


def deterministic_trace(events: List[Dict[str, object]]) -> str:
    """Re-serialize trace events minus the one wall-clock field (``wt``).

    The result is the trace's deterministic content: byte-identical for
    same-seed runs, including sharded runs at any worker count.  Used by
    tests and the CI shard smoke to ``cmp`` traces.
    """
    lines = [json.dumps({key: value for key, value in event.items()
                         if key != "wt"}, sort_keys=True)
             for event in events]
    return "\n".join(lines) + "\n"
