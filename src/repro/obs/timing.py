"""The one wall-clock timing helper.

Wall time is deliberately quarantined: scan telemetry is virtual-time and
deterministic, and the only legitimate wall-clock measurements in this
repository are implementation-throughput numbers (Table 5, the benchmark
harness).  Those all share this stopwatch instead of re-spelling
``time.perf_counter()`` bookkeeping inline.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Context-manager stopwatch over ``time.perf_counter``.

    ::

        with Stopwatch() as watch:
            do_work()
        print(watch.elapsed)   # wall seconds, also readable mid-run
    """

    __slots__ = ("_started", "_stopped")

    def __init__(self) -> None:
        self._started: float = 0.0
        self._stopped: float = -1.0

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        self._stopped = -1.0
        return self

    def __exit__(self, *exc_info) -> None:
        self._stopped = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Wall seconds since start (final once the block has exited)."""
        if self._stopped >= 0.0:
            return self._stopped - self._started
        return time.perf_counter() - self._started
