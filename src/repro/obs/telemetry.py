"""The telemetry bundle engines accept, plus the layer collectors.

Engines take ``telemetry=None`` (the default: every hot path stays on its
pre-telemetry code) or a :class:`Telemetry` — a registry to report into,
a tracer (no-op unless a trace file was requested) and an optional
progress reporter.  Scan-level metrics use the ``scan.*`` namespace;
:func:`record_network` folds the simulator's own counters (sends, route
cache hits/misses, fault draws, rate-limiter stalls) into ``simnet.*``
after a scan, so the hot probe paths in
:mod:`repro.simnet.network` / :mod:`~repro.simnet.routecache` /
:mod:`~repro.simnet.ratelimit` / :mod:`~repro.simnet.faults` keep their
existing cheap integer counters and never call into the registry
per probe.

Namespace contract (see docs/observability.md for the full table):

* ``scan.*`` — what the probing engine did; identical for the same seed
  regardless of serving mode (cached/uncached, faulted alike).
* ``simnet.*`` except ``simnet.cache.*`` — what the network served;
  also serving-mode independent.
* ``simnet.cache.*`` — route-cache effectiveness; differs between cached
  and uncached runs *by design* (equivalence tests exclude this prefix).
"""

from __future__ import annotations

from typing import Optional, TextIO

from .artifacts import detect_artifacts, record_artifacts
from .events import EventRecorder
from .metrics import MetricsRegistry, POW2_BUCKETS
from .progress import ProgressReporter
from .trace import NULL_TRACER, ScanTracer


class Telemetry:
    """Registry + tracer + progress + event recorder, handed to a scanner
    as one bundle.  ``events`` is the probe-level flight recorder
    (:class:`~repro.obs.events.EventRecorder`); ``None`` — the default —
    keeps engine hot paths on their pre-recorder code.

    ``metrics=False`` builds a registry-less bundle: ``registry`` stays
    ``None``, so engines keep their per-probe counters off exactly as if
    telemetry were disabled.  Sharded workers use this when only
    heartbeats were requested (``scan --shards --progress`` without
    ``--metrics-out``) — streaming a throttled progress record must not
    buy the full metrics hot path."""

    __slots__ = ("registry", "tracer", "progress", "events")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer=None,
                 progress: Optional[ProgressReporter] = None,
                 events: Optional[EventRecorder] = None,
                 metrics: bool = True) -> None:
        if registry is None and metrics:
            registry = MetricsRegistry()
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.progress = progress
        self.events = events

    @classmethod
    def create(cls, trace_path: Optional[str] = None,
               progress_interval: Optional[float] = None,
               progress_stream: Optional[TextIO] = None,
               events_path: Optional[str] = None,
               events_sample: float = 1.0,
               events_ring: Optional[int] = None) -> "Telemetry":
        """The CLI constructor: a fresh registry, a file tracer when a
        trace path was requested, a progress reporter when an interval
        was, a flight recorder when an events path was."""
        tracer = (ScanTracer(path=trace_path)
                  if trace_path is not None else None)
        progress = (ProgressReporter(interval=progress_interval,
                                     stream=progress_stream)
                    if progress_interval is not None else None)
        events = (EventRecorder(path=events_path, sample=events_sample,
                                ring=events_ring)
                  if events_path is not None else None)
        return cls(tracer=tracer, progress=progress, events=events)

    def record_result(self, result) -> None:
        if self.registry is not None:
            record_scan_result(self.registry, result)

    def record_network(self, network) -> None:
        if self.registry is not None:
            record_network(self.registry, network)

    def close(self) -> None:
        self.tracer.close()
        if self.events is not None:
            self.events.close()


def record_scan_result(registry: MetricsRegistry, result) -> None:
    """Fold a finished :class:`~repro.core.results.ScanResult` into
    ``scan.*`` counters/gauges.

    Engines call this once per scan (after finalization); per-event
    counters — stop reasons, prediction hits, ring occupancy — are
    incremented live by the engines themselves and are *not* derivable
    from the result.
    """
    registry.inc("scan.probes.total", result.probes_sent)
    registry.inc("scan.probes.preprobe", result.preprobe_probes)
    registry.inc("scan.probes.main",
                 result.probes_sent - result.preprobe_probes)
    registry.inc("scan.probes.skipped", result.skipped_probes)
    registry.inc("scan.responses.total", result.responses)
    registry.inc("scan.responses.duplicate", result.duplicate_responses)
    registry.inc("scan.responses.mismatched_quote", result.mismatched_quotes)
    registry.inc("scan.rounds", result.rounds)
    registry.inc("scan.interfaces.discovered", result.interface_count())
    registry.inc("scan.destinations.reached", len(result.dest_distance))
    registry.inc("scan.route_holes", result.route_holes())
    registry.set_gauge("scan.duration_virtual_seconds", result.duration)
    registry.set_gauge("scan.targets", result.num_targets)
    if result.duration > 0:
        registry.set_gauge("scan.rate_pps",
                           result.probes_sent / result.duration)
    for kind in sorted(result.response_kinds):
        registry.inc(f"scan.responses.kind.{kind}",
                     result.response_kinds[kind])
    record_artifacts(registry, detect_artifacts(result.routes))


def record_scan_ring(registry: MetricsRegistry, occupancy: int) -> None:
    """Per-round ring occupancy: latest value as a gauge, distribution as
    a power-of-two histogram."""
    registry.set_gauge("scan.ring.occupancy", occupancy)
    registry.observe("scan.ring.occupancy_per_round", occupancy,
                     buckets=POW2_BUCKETS)


def record_network(registry: MetricsRegistry, network) -> None:
    """Fold a network's counters (see ``SimulatedNetwork.stats()``) into
    ``simnet.*``.

    Call once after a scan, on the same network the scan used; counters
    accumulate across scans exactly as the network's own counters do
    (``SimulatedNetwork.reset()`` starts both over).
    """
    stats = network.stats()
    registry.inc("simnet.probes_sent", stats["probes_sent"])
    registry.inc("simnet.responses_generated", stats["responses_generated"])
    registry.inc("simnet.rewritten_responses", stats["rewritten_responses"])
    ratelimit = stats["ratelimit"]
    registry.inc("simnet.ratelimit.dropped", ratelimit["dropped"])
    registry.set_gauge("simnet.ratelimit.overprobed_interfaces",
                       ratelimit["overprobed_interfaces"])
    registry.set_gauge("simnet.ratelimit.limit", ratelimit["limit"])
    cache = stats["route_cache"]
    registry.set_gauge("simnet.cache.enabled", 1 if cache is not None else 0)
    if cache is not None:
        registry.inc("simnet.cache.hits", cache["hits"])
        registry.inc("simnet.cache.misses", cache["misses"])
        registry.set_gauge("simnet.cache.entries", cache["entries"])
        registry.set_gauge("simnet.cache.udp_tables", cache["udp_tables"])
        registry.set_gauge("simnet.cache.tcp_tables", cache["tcp_tables"])
    faults = stats["faults"]
    if faults is not None:
        registry.inc("simnet.faults.probes_lost", faults["probes_lost"])
        registry.inc("simnet.faults.responses_lost",
                     faults["responses_lost"])
        registry.inc("simnet.faults.blackout_drops",
                     faults["blackout_drops"])
        registry.inc("simnet.faults.duplicates_injected",
                     faults["duplicates_injected"])
        registry.inc("simnet.faults.reordered", faults["reordered"])
