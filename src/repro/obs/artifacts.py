"""Traceroute measurement-artifact detection (loops, cycles, diamonds).

Viger et al. (*Detection, Understanding, and Prevention of Traceroute
Measurement Artifacts*) classify the recurring anomalies of traceroute
output; this module detects the three structural ones in the routes a
scan recorded, so their counts can ride in the metrics registry next to
the stop-reason ledger:

* **loop** — the same responder at two *adjacent* TTLs of one trace
  (the classic effect of a routing change or an unresponsive hop being
  bridged by its neighbour's address);
* **cycle** — a responder reappearing at a *non-adjacent* TTL of the
  same trace with a different responder in between (forwarding loops,
  address rewriting);
* **diamond** — across traces, a pair of nodes ``(u, w)`` joined by
  two-hop paths through **two or more distinct** middle nodes
  (per-flow path diversity: different Paris flow identifiers pinned to
  different load-balanced branches re-converging).

Detection is pure structure over ``ScanResult.routes`` — no network,
no clock — so it runs identically on live results and on event logs
replayed by :mod:`repro.obs.scandiff`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Set, Tuple

from .metrics import MetricsRegistry


@dataclass
class ArtifactReport:
    """What :func:`detect_artifacts` found, with per-instance evidence."""

    #: ``(prefix, ttl)`` of the first hop of each adjacent repetition.
    loops: List[Tuple[int, int]] = field(default_factory=list)
    #: ``(prefix, first_ttl, revisit_ttl)`` per non-adjacent revisit.
    cycles: List[Tuple[int, int, int]] = field(default_factory=list)
    #: ``(u, w) -> sorted distinct middle nodes`` for pairs with >= 2.
    diamonds: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)

    @property
    def loop_count(self) -> int:
        return len(self.loops)

    @property
    def cycle_count(self) -> int:
        return len(self.cycles)

    @property
    def diamond_count(self) -> int:
        return len(self.diamonds)

    def empty(self) -> bool:
        return not (self.loops or self.cycles or self.diamonds)


def detect_artifacts(routes: Mapping[int, Mapping[int, int]]) -> ArtifactReport:
    """Find loops, cycles and diamonds in per-prefix ``{ttl: responder}``
    routes (the :attr:`ScanResult.routes <repro.core.results.ScanResult>`
    shape).  Deterministic: evidence lists are sorted."""
    report = ArtifactReport()
    # (u, w) -> middle nodes seen on recorded u -> v -> w 2-hop paths.
    mids: Dict[Tuple[int, int], Set[int]] = {}
    for prefix in sorted(routes):
        hops = routes[prefix]
        ttls = sorted(hops)
        seen_at: Dict[int, int] = {}
        for i, ttl in enumerate(ttls):
            responder = hops[ttl]
            last = seen_at.get(responder)
            if last is not None:
                if ttl == last + 1:
                    report.loops.append((prefix, last))
                else:
                    report.cycles.append((prefix, last, ttl))
            seen_at[responder] = ttl
            # 2-hop windows use *consecutive TTLs* only — a hole between
            # hops means the middle node is unknown, not absent.
            if i >= 2 and ttls[i - 1] == ttl - 1 and ttls[i - 2] == ttl - 2:
                u, v, w = hops[ttl - 2], hops[ttl - 1], responder
                if u != v and v != w:
                    mids.setdefault((u, w), set()).add(v)
    for pair in sorted(mids):
        middles = mids[pair]
        if len(middles) >= 2:
            report.diamonds[pair] = sorted(middles)
    return report


def record_artifacts(registry: MetricsRegistry,
                     report: ArtifactReport) -> None:
    """Fold an artifact report into ``scan.artifacts.*`` counters."""
    registry.inc("scan.artifacts.loops", report.loop_count)
    registry.inc("scan.artifacts.cycles", report.cycle_count)
    registry.inc("scan.artifacts.diamonds", report.diamond_count)
