"""The metrics registry: named counters, gauges and fixed-bucket histograms.

Deterministic by construction: values derive only from what the scan did
(virtual time, probe counts, seeded draws), never from wall clocks or
iteration order.  :meth:`MetricsRegistry.snapshot` sorts every mapping and
:meth:`MetricsRegistry.save` confines wall-clock stamps to a segregated
``wall`` section, so two runs with the same seed produce byte-identical
metrics files once that section is dropped (see
:func:`deterministic_snapshot`) — the property the telemetry equivalence
tests pin.

Metric names are dotted paths namespaced by layer (``scan.*`` for the
probing engines, ``simnet.*`` for the simulator); the namespaces matter
because some are properties of the *serving mode* rather than the scan —
``simnet.cache.*`` differs between cached and uncached runs of the same
scan by design, and the equivalence tests exclude exactly that prefix.
"""

from __future__ import annotations

import json
import re
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Schema tag written into every snapshot; bump on breaking layout change.
METRICS_SCHEMA = "repro.obs.metrics/1"

#: Default histogram bucket upper bounds: a 1-2-5 ladder wide enough for
#: RTTs in milliseconds and per-round probe counts alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000)

#: Power-of-two bucket bounds for set sizes (ring occupancy, stop sets).
POW2_BUCKETS: Tuple[float, ...] = tuple(1 << n for n in range(21))


class _Histogram:
    """Fixed-bucket histogram: counts per bound plus an overflow slot."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: One slot per bound (value <= bound) plus the overflow slot.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.total}


class MetricsRegistry:
    """Named counters, gauges and histograms for one (or more) scans.

    One registry typically serves one scan run; sharing one across several
    scans simply accumulates (counters add up, gauges keep the last value),
    which is what the discovery-optimized multi-scan mode wants.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self._gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into histogram ``name``.

        The bucket bounds are fixed on first observation; observing into
        an existing histogram with different bounds raises (silently
        switching bounds would make snapshots incomparable).
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = _Histogram(buckets)
            self._histograms[name] = histogram
        elif histogram.bounds != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"{histogram.bounds}")
        histogram.observe(value)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def names(self) -> List[str]:
        """Sorted names across all metric kinds."""
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms))

    def snapshot(self) -> Dict[str, object]:
        """The deterministic state of every metric (no wall-clock fields)."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": {name: self._counters[name]
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name]
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str, extra_wall: Optional[Dict[str, object]] = None
             ) -> None:
        """Write the snapshot as JSON with a segregated ``wall`` section.

        Everything outside ``wall`` is byte-identical across same-seed
        runs; ``wall`` carries the write timestamp (and any caller-supplied
        wall-clock extras, e.g. elapsed CPU seconds).
        """
        save_snapshot(self.snapshot(), path, extra_wall=extra_wall)


def save_snapshot(snapshot: Dict[str, object], path: str,
                  extra_wall: Optional[Dict[str, object]] = None) -> None:
    """Write an already-built snapshot the way :meth:`MetricsRegistry.save`
    does (wall-clock stamps confined to the ``wall`` section).

    The sharded scan driver uses this to persist a *merged* snapshot that
    no single registry ever held (see :mod:`repro.core.sharding`).
    """
    payload = dict(snapshot)
    wall: Dict[str, object] = {"written_unix": time.time()}
    if extra_wall:
        wall.update(extra_wall)
    payload["wall"] = wall
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")


def merge_snapshots(snapshots: Sequence[Dict[str, object]]
                    ) -> Dict[str, object]:
    """Fold per-shard registry snapshots into one, in the given order.

    Counters and histogram contents sum (so the merged snapshot reads as
    if one registry had observed every shard's scan); gauges keep the
    last shard's value, exactly as one shared registry would after serving
    the shards sequentially in that order.  Histogram bounds must agree
    across shards — all engines draw them from the same fixed ladders.
    Deterministic: callers pass shards in slice-index order, never in
    completion order.
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        schema = snapshot.get("schema")
        if schema != METRICS_SCHEMA:
            raise ValueError(f"unsupported metrics schema: {schema!r}")
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snapshot.get("gauges", {}))
        for name, data in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {"bounds": list(data["bounds"]),
                                    "counts": list(data["counts"]),
                                    "count": data["count"],
                                    "sum": data["sum"]}
                continue
            if merged["bounds"] != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bounds differ across shards")
            merged["counts"] = [a + b for a, b in
                                zip(merged["counts"], data["counts"])]
            merged["count"] += data["count"]
            merged["sum"] += data["sum"]
    return {
        "schema": METRICS_SCHEMA,
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name]
                       for name in sorted(histograms)},
    }


def load_snapshot(path: str) -> Dict[str, object]:
    """Load a metrics file written by :meth:`MetricsRegistry.save`."""
    with open(path, encoding="utf-8") as stream:
        payload = json.load(stream)
    schema = payload.get("schema")
    if schema != METRICS_SCHEMA:
        raise ValueError(f"unsupported metrics schema: {schema!r}")
    return payload


def histogram_quantile(histogram: Dict[str, object], q: float) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram dict.

    Nearest-rank over the cumulative bucket counts, reporting the upper
    bound of the bucket the rank lands in (the overflow slot reports the
    last finite bound).  Good enough for dashboards; the exact values
    live only in the raw observations, which snapshots do not keep.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = histogram["count"]
    if count == 0:
        raise ValueError("empty histogram has no quantiles")
    bounds = list(histogram["bounds"])
    counts = list(histogram["counts"])
    rank = max(1, min(count, round(q * (count - 1)) + 1))
    cumulative = 0
    for bound, bucket in zip(bounds, counts[:-1]):
        cumulative += bucket
        if rank <= cumulative:
            return float(bound)
    return float(bounds[-1])


def _exposition_name(name: str, prefix: str) -> str:
    """A metric name mangled into the Prometheus grammar."""
    mangled = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"{prefix}_{mangled}" if prefix else mangled


def _exposition_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_exposition(snapshot: Dict[str, object],
                      prefix: str = "flashroute") -> str:
    """The snapshot as Prometheus text exposition (version 0.0.4).

    Deterministic: rendered purely from the snapshot's sorted
    deterministic sections, so two byte-identical snapshots expose
    byte-identically.  Counters and gauges map 1:1; histograms emit the
    standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Any ``wall`` section is ignored — wall-clock data never
    leaks into the exposition.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _exposition_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric} "
            f"{_exposition_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _exposition_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(
            f"{metric} {_exposition_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        metric = _exposition_name(name, prefix)
        histogram = snapshot["histograms"][name]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, bucket in zip(histogram["bounds"],
                                 histogram["counts"][:-1]):
            cumulative += bucket
            lines.append(f'{metric}_bucket{{le="'
                         f'{_exposition_value(float(bound))}"}} '
                         f'{cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram["count"]}')
        lines.append(f"{metric}_sum "
                     f"{_exposition_value(float(histogram['sum']))}")
        lines.append(f"{metric}_count {histogram['count']}")
    return "\n".join(lines) + "\n"


def deterministic_snapshot(snapshot: Dict[str, object],
                           exclude_prefixes: Iterable[str] = ()
                           ) -> Dict[str, object]:
    """``snapshot`` minus the ``wall`` section and any metric whose name
    starts with one of ``exclude_prefixes``.

    The equivalence tests feed ``exclude_prefixes=("simnet.cache.",)`` to
    compare cached vs uncached scans: the cache counters describe the
    serving mode, everything else must match exactly.
    """
    prefixes = tuple(exclude_prefixes)

    def keep(name: str) -> bool:
        return not name.startswith(prefixes) if prefixes else True

    return {
        "schema": snapshot.get("schema"),
        "counters": {name: value
                     for name, value in snapshot.get("counters", {}).items()
                     if keep(name)},
        "gauges": {name: value
                   for name, value in snapshot.get("gauges", {}).items()
                   if keep(name)},
        "histograms": {name: value
                       for name, value in snapshot.get("histograms", {}).items()
                       if keep(name)},
    }
