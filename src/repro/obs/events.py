"""The probe-level flight recorder: a compact per-probe event stream.

Scan-level telemetry (metrics, spans) says *that* the numbers moved;
when two runs disagree — cached vs uncached, ``--loss 0.02`` vs clean,
FlashRoute vs Yarrp — the question is *which probe* to *which prefix*
diverged and *why* a hop became a hole.  Viger et al. (*Detection,
Understanding, and Prevention of Traceroute Measurement Artifacts*) make
the same point for loops/cycles/diamonds: diagnosis needs per-probe
evidence.  Yarrp leaves response logging to an external recorder (paper
§4.2.3, mirrored here by ``repro.net.pcap``); this module is the
structured, tool-readable equivalent.

Engines emit five event kinds through the :class:`EventRecorder` carried
on the :class:`~repro.obs.telemetry.Telemetry` bundle, each stamped with
**virtual** time, destination prefix, TTL, flow and responder:

* ``probe_sent`` — one per emitted probe (dst, TTL, flow id, phase);
* ``response`` — one per processed response (responder, kind, RTT, the
  destination distance when the engine derived one);
* ``stop_decision`` — why probing a prefix stopped in one direction
  (``ttl1`` / ``stop_set`` backward; ``gap_limit`` / ``max_ttl`` /
  ``dest_reached`` forward);
* ``preprobe_predict`` — the preprobe ledger per prefix (measured
  distance vs proximity-span prediction, §3.3);
* ``dcb_release`` — the prefix left the scanning ring.

Determinism contract: events carry **no wall-clock data** — a header
line, then records whose every field derives from the scan itself — so
two same-seed runs write *byte-identical* event files, and cached vs
uncached runs produce identical streams.  ``events=None`` (the default
on every engine) keeps all hot paths on their pre-recorder code.

Two on-disk formats parse back into identical event dictionaries:

* **JSONL** (default): one sorted-key JSON object per line;
* **length-prefixed binary** (``.bin`` paths): an 8-byte magic, then one
  length-prefixed fixed-layout record per event — ~4x smaller, for
  full-scan recording at 4096+ prefixes.

Cost controls for large scans, both deterministic:

* ``sample=p`` keeps a seedless-hash-selected fraction ``p`` of
  *prefixes* (all events of a kept prefix are recorded, so per-prefix
  joins stay complete; two runs sample the same prefixes);
* ``ring=n`` bounds memory/disk to the last ``n`` events (written at
  close; ``events_dropped`` counts the evicted head).
"""

from __future__ import annotations

import json
import struct
from collections import deque
from typing import Dict, List, Optional, TextIO, Tuple

#: Schema tag: first JSONL line / implied by the binary magic version.
EVENTS_SCHEMA = "repro.obs.events/1"

#: Magic prefix of the binary format (8 bytes, version in the last byte).
BINARY_MAGIC = b"REVTLOG1"

#: Fixed binary record layout (little-endian): kind u8, vt f64,
#: prefix u32, ttl u8, code u8, addr u32, value f64, aux u8, flags u8.
_RECORD = struct.Struct("<BdIBBIdBB")
_RECORD_LEN = _RECORD.size

_KIND_PROBE_SENT = 1
_KIND_RESPONSE = 2
_KIND_STOP_DECISION = 3
_KIND_PREPROBE_PREDICT = 4
_KIND_DCB_RELEASE = 5
_KIND_RETRY = 6
_KIND_RATE_CHANGE = 7
_KIND_CHECKPOINT = 8

_KIND_NAMES = {
    _KIND_PROBE_SENT: "probe_sent",
    _KIND_RESPONSE: "response",
    _KIND_STOP_DECISION: "stop_decision",
    _KIND_PREPROBE_PREDICT: "preprobe_predict",
    _KIND_DCB_RELEASE: "dcb_release",
    _KIND_RETRY: "retry",
    _KIND_RATE_CHANGE: "rate_change",
    _KIND_CHECKPOINT: "checkpoint",
}

#: Probing phases (probe_sent ``phase``).  "retry" is appended after the
#: original five so the phase codes of pre-resilience logs stay stable.
PHASES = ("preprobe", "main", "bulk", "fill", "trace", "retry")
#: Rate-change reasons (rate_change ``reason``): multiplicative backoff
#: vs additive recovery, see repro.core.resilience.
RATE_REASONS = ("backoff", "recover")
#: Stop reasons (stop_decision ``reason``).  The first two are backward
#: stops, the rest forward stops — matching the ``scan.*_stops.*``
#: metric names.
STOP_REASONS = ("ttl1", "stop_set", "gap_limit", "max_ttl", "dest_reached")
#: Response kinds (mirrors :class:`repro.net.icmp.ResponseKind` values).
RESPONSE_KINDS = ("ttl_exceeded", "port_unreachable", "host_unreachable",
                  "tcp_rst", "echo_reply")
#: Preprobe ledger sources (preprobe_predict ``source``).
PREDICT_SOURCES = ("measured", "predicted")

_PHASE_CODE = {name: code for code, name in enumerate(PHASES)}
_RATE_REASON_CODE = {name: code for code, name in enumerate(RATE_REASONS)}
_REASON_CODE = {name: code for code, name in enumerate(STOP_REASONS)}
_RESPONSE_CODE = {name: code for code, name in enumerate(RESPONSE_KINDS)}
_SOURCE_CODE = {name: code for code, name in enumerate(PREDICT_SOURCES)}

#: ``aux`` sentinel for "no distance".
_NO_AUX = 255
#: ``value`` sentinel for "no RTT" (RTTs are non-negative).
_NO_VALUE = -1.0

_FLAG_PRE = 1
_FLAG_DUP = 2

_MASK64 = (1 << 64) - 1
_SAMPLE_SALT = 0x5EEDFACE0B5E47ED


def _mix64(x: int) -> int:
    """SplitMix64 finalizer (same avalanche as repro.simnet.faults)."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def prefix_sampled(prefix: int, sample: float) -> bool:
    """Deterministic, seedless per-prefix sampling decision.

    Pure hash of the prefix (no RNG stream), so every run — clean or
    faulted, cached or uncached — keeps exactly the same prefixes and
    ``scan-diff`` joins of two sampled logs stay complete per kept
    prefix.
    """
    if sample >= 1.0:
        return True
    if sample <= 0.0:
        return False
    draw = _mix64((prefix * 0x9E3779B97F4A7C15) ^ _SAMPLE_SALT)
    return draw < sample * 18446744073709551616.0


class EventRecorder:
    """Writes probe-level events to a JSONL or binary sink.

    Construct with either an open text/binary stream or a path (owned
    and closed by :meth:`close`).  ``binary=None`` infers the format
    from the path (``.bin`` → binary, else JSONL); stream construction
    defaults to JSONL unless ``binary=True`` and the stream accepts
    bytes.

    ``sample`` keeps a deterministic fraction of prefixes (see
    :func:`prefix_sampled`); ``ring`` holds only the last ``ring``
    events in memory and writes them at :meth:`close` — full-scan
    recording at 4096 prefixes stays cheap with either knob.
    """

    enabled = True

    __slots__ = ("sample", "ring_size", "events_recorded",
                 "events_sampled_out", "events_dropped", "_binary",
                 "_stream", "_owns_stream", "_ring", "_threshold",
                 "_closed")

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[TextIO] = None,
                 binary: Optional[bool] = None,
                 sample: float = 1.0,
                 ring: Optional[int] = None) -> None:
        if (stream is None) == (path is None):
            raise ValueError("pass exactly one of stream= or path=")
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample!r}")
        if ring is not None and ring < 1:
            raise ValueError(f"ring must be positive, got {ring!r}")
        if binary is None:
            binary = path is not None and path.endswith(".bin")
        self._binary = binary
        self._owns_stream = path is not None
        if path is not None:
            self._stream = open(path, "wb" if binary else "w",
                                **({} if binary else {"encoding": "utf-8"}))
        else:
            self._stream = stream
        self.sample = sample
        self.ring_size = ring
        self._ring: Optional[deque] = (deque(maxlen=ring)
                                       if ring is not None else None)
        #: Events accepted (post-sampling); ring eviction does not
        #: decrement this — ``events_dropped`` counts evictions.
        self.events_recorded = 0
        self.events_sampled_out = 0
        self.events_dropped = 0
        self._closed = False
        if self._ring is None:
            self._write_header()

    # ------------------------------------------------------------------ #
    # Emission (engine hot paths call these; keep them lean)
    # ------------------------------------------------------------------ #

    def probe_sent(self, vt: float, prefix: int, ttl: int, dst: int,
                   flow: int, phase: str) -> None:
        if prefix_sampled(prefix, self.sample):
            self._emit((_KIND_PROBE_SENT, vt, prefix, ttl,
                        _PHASE_CODE[phase], dst, float(flow), _NO_AUX, 0))
        else:
            self.events_sampled_out += 1

    def response(self, vt: float, prefix: int, ttl: int, responder: int,
                 kind: str, rtt: Optional[float] = None,
                 dist: Optional[int] = None, pre: bool = False,
                 dup: bool = False) -> None:
        if prefix_sampled(prefix, self.sample):
            flags = (_FLAG_PRE if pre else 0) | (_FLAG_DUP if dup else 0)
            self._emit((_KIND_RESPONSE, vt, prefix, ttl,
                        _RESPONSE_CODE[kind], responder,
                        _NO_VALUE if rtt is None else rtt,
                        _NO_AUX if dist is None else dist, flags))
        else:
            self.events_sampled_out += 1

    def stop_decision(self, vt: float, prefix: int, reason: str,
                      ttl: int) -> None:
        if prefix_sampled(prefix, self.sample):
            self._emit((_KIND_STOP_DECISION, vt, prefix, ttl,
                        _REASON_CODE[reason], 0, _NO_VALUE, _NO_AUX, 0))
        else:
            self.events_sampled_out += 1

    def preprobe_predict(self, vt: float, prefix: int, distance: int,
                         source: str) -> None:
        if prefix_sampled(prefix, self.sample):
            self._emit((_KIND_PREPROBE_PREDICT, vt, prefix, 0,
                        _SOURCE_CODE[source], 0, _NO_VALUE, distance, 0))
        else:
            self.events_sampled_out += 1

    def dcb_release(self, vt: float, prefix: int) -> None:
        if prefix_sampled(prefix, self.sample):
            self._emit((_KIND_DCB_RELEASE, vt, prefix, 0, 0, 0,
                        _NO_VALUE, _NO_AUX, 0))
        else:
            self.events_sampled_out += 1

    def retry(self, vt: float, prefix: int, ttl: int, attempt: int,
              dst: int) -> None:
        """A probe was retransmitted (attempt >= 1); emitted alongside
        the retried probe's ``probe_sent`` record."""
        if prefix_sampled(prefix, self.sample):
            self._emit((_KIND_RETRY, vt, prefix, ttl, attempt, dst,
                        _NO_VALUE, _NO_AUX, 0))
        else:
            self.events_sampled_out += 1

    def rate_change(self, vt: float, rate: float, reason: str) -> None:
        """The adaptive controller changed the probing rate.  Scan-wide
        (prefix 0) and never sampled out."""
        self._emit((_KIND_RATE_CHANGE, vt, 0, 0,
                    _RATE_REASON_CODE[reason], 0, float(rate), _NO_AUX, 0))

    def checkpoint(self, vt: float, rounds: int) -> None:
        """A checkpoint file was written after round ``rounds``.
        Scan-wide (prefix 0) and never sampled out."""
        self._emit((_KIND_CHECKPOINT, vt, 0, 0, 0, 0, float(rounds),
                    _NO_AUX, 0))

    # ------------------------------------------------------------------ #

    def _emit(self, record: Tuple) -> None:
        self.events_recorded += 1
        ring = self._ring
        if ring is not None:
            if ring.maxlen is not None and len(ring) == ring.maxlen:
                self.events_dropped += 1
            ring.append(record)
        else:
            self._write_record(record)

    def _write_header(self) -> None:
        if self._binary:
            self._stream.write(BINARY_MAGIC)
        else:
            self._stream.write(json.dumps(
                {"ev": "events", "schema": EVENTS_SCHEMA},
                sort_keys=True) + "\n")

    def _write_record(self, record: Tuple) -> None:
        if self._binary:
            self._stream.write(_LEN_PREFIX + _RECORD.pack(*record))
        else:
            self._stream.write(_record_to_line(record))

    def close(self) -> None:
        """Flush buffered (ring) events and release the sink.

        Idempotent; path-constructed recorders close their file.
        """
        if self._closed:
            return
        self._closed = True
        if self._ring is not None:
            self._write_header()
            for record in self._ring:
                self._write_record(record)
            self._ring = None
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()


_LEN_PREFIX = bytes((_RECORD_LEN,))


def _record_to_line(record: Tuple) -> str:
    """One JSONL line for an event tuple — byte-identical to
    ``json.dumps(_record_to_dict(record), sort_keys=True) + "\\n"`` but
    ~4x faster (this runs once per probe on recording scans; field names
    are fixed and values are ints, floats whose ``repr`` matches JSON
    encoding, and known-safe name-table strings)."""
    kind, vt, prefix, ttl, code, addr, value, aux, flags = record
    if kind == _KIND_PROBE_SENT:
        return (f'{{"dst": {addr}, "ev": "probe_sent", '
                f'"flow": {int(value)}, "phase": "{PHASES[code]}", '
                f'"prefix": {prefix}, "ttl": {ttl}, "vt": {vt!r}}}\n')
    if kind == _KIND_RESPONSE:
        parts = []
        if aux != _NO_AUX:
            parts.append(f'"dist": {aux}')
        if flags & _FLAG_DUP:
            parts.append('"dup": 1')
        parts.append(f'"ev": "response", "kind": "{RESPONSE_KINDS[code]}"')
        if flags & _FLAG_PRE:
            parts.append('"pre": 1')
        parts.append(f'"prefix": {prefix}, "responder": {addr}')
        if value != _NO_VALUE:
            parts.append(f'"rtt": {value!r}')
        parts.append(f'"ttl": {ttl}, "vt": {vt!r}')
        return "{" + ", ".join(parts) + "}\n"
    if kind == _KIND_STOP_DECISION:
        return (f'{{"ev": "stop_decision", "prefix": {prefix}, '
                f'"reason": "{STOP_REASONS[code]}", "ttl": {ttl}, '
                f'"vt": {vt!r}}}\n')
    if kind == _KIND_PREPROBE_PREDICT:
        return (f'{{"distance": {aux}, "ev": "preprobe_predict", '
                f'"prefix": {prefix}, "source": "{PREDICT_SOURCES[code]}", '
                f'"vt": {vt!r}}}\n')
    if kind == _KIND_RETRY:
        return (f'{{"attempt": {code}, "dst": {addr}, "ev": "retry", '
                f'"prefix": {prefix}, "ttl": {ttl}, "vt": {vt!r}}}\n')
    if kind == _KIND_RATE_CHANGE:
        return (f'{{"ev": "rate_change", "prefix": {prefix}, '
                f'"rate": {value!r}, "reason": "{RATE_REASONS[code]}", '
                f'"vt": {vt!r}}}\n')
    if kind == _KIND_CHECKPOINT:
        return (f'{{"ev": "checkpoint", "prefix": {prefix}, '
                f'"round": {int(value)}, "vt": {vt!r}}}\n')
    return f'{{"ev": "dcb_release", "prefix": {prefix}, "vt": {vt!r}}}\n'


def _record_to_dict(record: Tuple) -> Dict[str, object]:
    """The named-field view of one event tuple (shared by the JSONL
    writer and both readers, so every format parses identically)."""
    kind, vt, prefix, ttl, code, addr, value, aux, flags = record
    event: Dict[str, object] = {"ev": _KIND_NAMES[kind], "vt": vt,
                                "prefix": prefix}
    if kind == _KIND_PROBE_SENT:
        event["ttl"] = ttl
        event["dst"] = addr
        event["flow"] = int(value)
        event["phase"] = PHASES[code]
    elif kind == _KIND_RESPONSE:
        event["ttl"] = ttl
        event["responder"] = addr
        event["kind"] = RESPONSE_KINDS[code]
        if value != _NO_VALUE:
            event["rtt"] = value
        if aux != _NO_AUX:
            event["dist"] = aux
        if flags & _FLAG_PRE:
            event["pre"] = 1
        if flags & _FLAG_DUP:
            event["dup"] = 1
    elif kind == _KIND_STOP_DECISION:
        event["ttl"] = ttl
        event["reason"] = STOP_REASONS[code]
    elif kind == _KIND_PREPROBE_PREDICT:
        event["source"] = PREDICT_SOURCES[code]
        event["distance"] = aux
    elif kind == _KIND_RETRY:
        event["ttl"] = ttl
        event["dst"] = addr
        event["attempt"] = code
    elif kind == _KIND_RATE_CHANGE:
        event["rate"] = value
        event["reason"] = RATE_REASONS[code]
    elif kind == _KIND_CHECKPOINT:
        event["round"] = int(value)
    return event


def read_events(path: str) -> List[Dict[str, object]]:
    """Parse an event file (either format) into its event dictionaries.

    The first element is the header (``{"ev": "events", "schema": ...}``,
    synthesized for binary files); records follow in emission order.
    Raises ``ValueError`` on malformed input.
    """
    with open(path, "rb") as probe_stream:
        magic = probe_stream.read(len(BINARY_MAGIC))
        if magic == BINARY_MAGIC:
            return _read_binary(probe_stream)
    return _read_jsonl(path)


def _read_binary(stream) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = [
        {"ev": "events", "schema": EVENTS_SCHEMA}]
    while True:
        length = stream.read(1)
        if not length:
            break
        if length[0] != _RECORD_LEN:
            raise ValueError(
                f"bad record length {length[0]} (expected {_RECORD_LEN})")
        payload = stream.read(_RECORD_LEN)
        if len(payload) != _RECORD_LEN:
            raise ValueError("truncated event record")
        record = _RECORD.unpack(payload)
        if record[0] not in _KIND_NAMES:
            raise ValueError(f"unknown event kind code {record[0]}")
        events.append(_record_to_dict(record))
    return events


def _read_jsonl(path: str) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    validate_events(events)
    return events


def validate_events(events: List[Dict[str, object]]) -> None:
    """Structure-check an event list; raises ``ValueError`` on the first
    violation (missing/bad header, unknown kind, missing fields)."""
    if not events or events[0].get("ev") != "events" \
            or events[0].get("schema") != EVENTS_SCHEMA:
        raise ValueError("missing or bad event-log header")
    known = set(_KIND_NAMES.values())
    for event in events[1:]:
        kind = event.get("ev")
        if kind not in known:
            raise ValueError(f"unknown event kind: {event!r}")
        if "vt" not in event or "prefix" not in event:
            raise ValueError(f"event missing vt/prefix: {event!r}")
        if kind == "probe_sent" and event.get("phase") not in PHASES:
            raise ValueError(f"bad probe phase: {event!r}")
        if kind == "stop_decision" and event.get("reason") not in STOP_REASONS:
            raise ValueError(f"bad stop reason: {event!r}")
        if kind == "response" and event.get("kind") not in RESPONSE_KINDS:
            raise ValueError(f"bad response kind: {event!r}")
        if kind == "retry" and not isinstance(event.get("attempt"), int):
            raise ValueError(f"retry missing attempt: {event!r}")
        if kind == "rate_change" \
                and event.get("reason") not in RATE_REASONS:
            raise ValueError(f"bad rate-change reason: {event!r}")
        if kind == "checkpoint" and not isinstance(event.get("round"), int):
            raise ValueError(f"checkpoint missing round: {event!r}")


# --------------------------------------------------------------------- #
# Sharded merge (see repro.core.sharding)
# --------------------------------------------------------------------- #

def event_log_header(binary: bool):
    """The file header a fresh recorder writes: the binary magic, or the
    JSONL schema line (including its newline)."""
    if binary:
        return BINARY_MAGIC
    return json.dumps({"ev": "events", "schema": EVENTS_SCHEMA},
                      sort_keys=True) + "\n"


def strip_event_header(payload, binary: bool):
    """``payload`` (one recorder's complete output) minus its header —
    the per-shard body the sharded merge concatenates.  Raises
    ``ValueError`` when the header is absent (a truncated shard payload
    must not be silently merged)."""
    header = event_log_header(binary)
    if not payload.startswith(header):
        raise ValueError("event payload is missing its header")
    return payload[len(header):]


def merge_event_logs(bodies, binary: bool, ring: Optional[int] = None):
    """One complete event log from per-shard header-stripped bodies.

    Bodies concatenate in the given order (the sharded scan passes them
    in slice-index order, reproducing the single-worker emission order);
    ``ring`` keeps only the last ``ring`` records, applied *after* the
    merge so sharded and single-worker ``--events-ring`` files agree.
    """
    if ring is not None and ring < 1:
        raise ValueError(f"ring must be positive, got {ring!r}")
    if binary:
        body = b"".join(bodies)
        if ring is not None:
            chunk = 1 + _RECORD_LEN
            if len(body) % chunk:
                raise ValueError("merged binary body is not record-aligned")
            records = len(body) // chunk
            if records > ring:
                body = body[(records - ring) * chunk:]
        return BINARY_MAGIC + body
    body = "".join(bodies)
    if ring is not None:
        lines = body.splitlines(keepends=True)
        if len(lines) > ring:
            body = "".join(lines[len(lines) - ring:])
    return event_log_header(False) + body
