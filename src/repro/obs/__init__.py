"""Unified scan telemetry: metrics, tracing, progress (observability).

The real FlashRoute tool prints live rate/remaining-DCB statistics during
a scan and its evaluation (§3.2–§4) hinges on *why* probes were saved —
per-phase probe counts, backward-probing stop-set hits, gap-limit
terminations.  Yarrp ships per-epoch statistics output and Doubletree was
analysed through redundancy counters; this package gives the reproduction
the same instrument panel, dependency-free:

* :class:`MetricsRegistry` — named counters / gauges / fixed-bucket
  histograms every hot path reports into.  Snapshots are deterministic
  under a fixed seed (wall-clock fields live in a segregated ``wall``
  section), so equivalence tests can assert that cached and uncached
  scans produce identical telemetry.
* :class:`ScanTracer` — structured JSONL span events (scan → phase →
  round) stamped with both virtual and wall time.  The default
  :data:`NULL_TRACER` is a no-op, so tracing costs nothing when disabled.
* :class:`ProgressReporter` — periodic in-scan snapshots (pps, targets
  remaining, discovered interfaces) to stderr, keyed off the *virtual*
  clock so ``--progress`` output is reproducible in tests.
* :class:`Telemetry` — the bundle engines accept (``telemetry=`` on every
  scanner constructor / :class:`~repro.core.scanner.ScannerOptions`).
  ``None`` (the default) keeps every hot path on its pre-telemetry code,
  byte-identical results included.
* :class:`Stopwatch` — the one wall-clock timing helper (replaces ad-hoc
  ``time.perf_counter`` stopwatch code in the experiment drivers).

``tools/metrics_report.py`` (also ``flashroute-sim metrics-report``)
summarizes one metrics file or diffs two.
"""

from .artifacts import ArtifactReport, detect_artifacts, record_artifacts
from .events import (
    EVENTS_SCHEMA,
    EventRecorder,
    read_events,
    validate_events,
)
from .metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    POW2_BUCKETS,
    MetricsRegistry,
    deterministic_snapshot,
    load_snapshot,
)
from .progress import ProgressReporter
from .scandiff import (
    Divergence,
    diff_views,
    load_view,
    render_scan_diff,
    scan_diff,
)
from .shardobs import (
    HEARTBEAT_SCHEMA,
    ShardHeartbeatReporter,
    ShardProgressView,
    add_shard_dimension,
    merge_trace_logs,
    shard_wall_report,
    slice_pcap_path,
)
from .telemetry import Telemetry, record_network, record_scan_result
from .timing import Stopwatch
from .trace import (
    NULL_TRACER,
    NullTracer,
    ScanTracer,
    deterministic_trace,
    read_trace,
    validate_trace,
)

__all__ = [
    "ArtifactReport",
    "DEFAULT_BUCKETS",
    "Divergence",
    "EVENTS_SCHEMA",
    "EventRecorder",
    "HEARTBEAT_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "POW2_BUCKETS",
    "ProgressReporter",
    "ScanTracer",
    "ShardHeartbeatReporter",
    "ShardProgressView",
    "Stopwatch",
    "Telemetry",
    "add_shard_dimension",
    "detect_artifacts",
    "deterministic_snapshot",
    "deterministic_trace",
    "diff_views",
    "load_snapshot",
    "load_view",
    "merge_trace_logs",
    "read_events",
    "read_trace",
    "record_artifacts",
    "record_network",
    "record_scan_result",
    "render_scan_diff",
    "scan_diff",
    "shard_wall_report",
    "slice_pcap_path",
    "validate_events",
    "validate_trace",
]
