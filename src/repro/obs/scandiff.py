"""Explainable scan diffs: join two runs per prefix, attribute causes.

``flashroute-sim scan-diff A B`` answers the question PR-level telemetry
cannot: two scans of the same topology disagree — *which probe* to
*which prefix* diverged, and *why*.  Inputs are either probe-level event
logs (:mod:`repro.obs.events`) or ``--output`` result files; the two
kinds can be mixed, but cause attribution below the prefix level needs
the probe-level evidence only event logs carry.

Every divergent ``(prefix, ttl)`` is classified **deterministically**:

* ``not_probed`` — that side never sent the probe (its recorded
  ``stop_decision`` events say why probing stopped short);
* ``probe_loss`` / ``blackout`` / ``response_loss`` — the probe was
  sent and the :class:`~repro.simnet.faults.FaultModel` seed confirms
  the corresponding hash draw fired (the injector's decisions are
  stateless, so :meth:`FaultInjector.explain
  <repro.simnet.faults.FaultInjector.explain>` can replay them from the
  event log alone);
* ``rate_limited`` — sent, unanswered, and no fault draw fired: the
  responder's ICMP rate limiter swallowed it (the remaining silent
  mechanism in the simulator);
* ``responder_mismatch`` / ``path_length`` / ``dest_distance`` /
  ``missing_prefix`` — structural disagreements between the two sides;
* ``unattributed`` — a hole on a side without probe-level data (result
  files), or without a fault model to check against.

Convention: the optional fault model describes **side B** (the second
file) — the usual workflow is ``scan-diff clean.events lossy.events
--loss 0.02 --fault-seed N`` with B the faulted run.  Holes on side A
are still detected and classified from A's own stop decisions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.report import render_table
from ..core.output import result_from_dict
from ..simnet.faults import FaultInjector, FaultModel
from .events import BINARY_MAGIC, read_events

#: Cause labels, in report order (severity: structural first).
CAUSES = ("missing_prefix", "path_length", "dest_distance",
          "responder_mismatch", "not_probed", "exhausted_retries",
          "probe_loss", "blackout", "response_loss", "rate_limited",
          "unattributed")


@dataclass
class Divergence:
    """One classified disagreement between the two sides."""

    prefix: int
    cause: str
    #: TTL of the divergent hop; ``None`` for prefix-level causes.
    ttl: Optional[int] = None
    #: Which side lacks/loses the hop ("a"/"b"; "-" for symmetric causes).
    side: str = "-"
    detail: str = ""


@dataclass
class ScanView:
    """What one input file knows about its scan."""

    label: str
    source: str  # "events" | "result"
    routes: Dict[int, Dict[int, int]] = field(default_factory=dict)
    dest_distance: Dict[int, int] = field(default_factory=dict)
    #: ``(prefix, ttl) -> (send vt, full destination address)`` — only
    #: event logs carry this (``has_probe_level``).
    probes: Dict[Tuple[int, int], Tuple[float, int]] = field(
        default_factory=dict)
    #: Every send of each ``(prefix, ttl)`` in order — more than one
    #: entry means the probe was retried (``repro.core.resilience``).
    attempts: Dict[Tuple[int, int], List[Tuple[float, int]]] = field(
        default_factory=dict)
    responded: Set[Tuple[int, int]] = field(default_factory=set)
    stops: Dict[int, List[Tuple[str, int]]] = field(default_factory=dict)
    has_probe_level: bool = False

    def route_length(self, prefix: int) -> Optional[int]:
        distance = self.dest_distance.get(prefix)
        if distance is not None:
            return distance
        hops = self.routes.get(prefix)
        return max(hops) if hops else None

    def prefixes(self) -> Set[int]:
        found = set(self.routes) | set(self.dest_distance)
        if self.has_probe_level:
            found.update(prefix for prefix, _ in self.probes)
        return found


def view_from_events(label: str, events: List[Dict[str, object]]) -> ScanView:
    """Replay an event stream into per-prefix routes, destination
    distances, the probe ledger and the stop-decision record.

    Reconstruction mirrors engine recording: ``response`` events carry
    the distance the engine derived at its own ``record_destination``
    call site (minimum kept), preprobe responses an engine did not fold
    into routes are flagged ``pre`` and skipped here, and injected
    duplicates re-record the same hop the original did.
    """
    view = ScanView(label=label, source="events", has_probe_level=True)
    for event in events:
        kind = event.get("ev")
        if kind == "probe_sent":
            key = (event["prefix"], event["ttl"])
            if key not in view.probes:
                view.probes[key] = (event["vt"], event["dst"])
            view.attempts.setdefault(key, []).append(
                (event["vt"], event["dst"]))
        elif kind == "response":
            prefix = event["prefix"]
            ttl = event["ttl"]
            view.responded.add((prefix, ttl))
            if event.get("pre"):
                continue
            if event["kind"] == "ttl_exceeded":
                view.routes.setdefault(prefix, {})[ttl] = event["responder"]
            dist = event.get("dist")
            if dist is not None:
                known = view.dest_distance.get(prefix)
                if known is None or dist < known:
                    view.dest_distance[prefix] = dist
        elif kind == "stop_decision":
            view.stops.setdefault(event["prefix"], []).append(
                (event["reason"], event["ttl"]))
    return view


def load_view(path: str) -> ScanView:
    """Auto-detect an input file: binary/JSONL event log, or a
    ``--output`` result JSON.  Raises ``ValueError`` when it is
    neither."""
    with open(path, "rb") as stream:
        head = stream.read(len(BINARY_MAGIC))
    if head == BINARY_MAGIC:
        return view_from_events(path, read_events(path))
    with open(path, encoding="utf-8") as stream:
        first = stream.read(1)
    if first == "{":
        # Could be a result file (one JSON document) or a JSONL event
        # log (header object on line one).  A result file's first line
        # is just "{"; an event header is a complete object.
        with open(path, encoding="utf-8") as stream:
            first_line = stream.readline().strip()
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            header = None
        if isinstance(header, dict) and header.get("ev") == "events":
            return view_from_events(path, read_events(path))
        with open(path, encoding="utf-8") as stream:
            payload = json.load(stream)
        if isinstance(payload, dict) and "format_version" in payload:
            result = result_from_dict(payload)
            view = ScanView(label=path, source="result")
            view.routes = {prefix: dict(hops)
                           for prefix, hops in result.routes.items()}
            view.dest_distance = dict(result.dest_distance)
            return view
    raise ValueError(f"{path}: not an event log or scan result file")


def _classify_hole(view: ScanView, prefix: int, ttl: int,
                   expected_responder: Optional[int],
                   injector: Optional[FaultInjector]
                   ) -> Tuple[str, str]:
    """Why ``view`` has no hop at ``(prefix, ttl)`` while the other side
    does.  Checks mirror the injector's own order (probe_loss →
    blackout → response_loss), then fall through to rate limiting."""
    if not view.has_probe_level:
        return "unattributed", "no probe-level data (result file)"
    probe = view.probes.get((prefix, ttl))
    if probe is None:
        stops = view.stops.get(prefix, ())
        detail = ", ".join(f"{reason}@{at}" for reason, at in stops) \
            or "no stop decision recorded"
        return "not_probed", detail
    vt, dst = probe
    if (prefix, ttl) in view.responded:
        return "unattributed", "responded, hop not recorded"
    attempts = view.attempts.get((prefix, ttl), ())
    if len(attempts) > 1:
        # The probe was retried and every attempt stayed silent: cite
        # the fault draw behind each one (the injector's decisions are
        # stateless, so they replay from the event log alone).
        if injector is not None:
            cites = []
            for index, (vt_i, dst_i) in enumerate(attempts):
                draw = injector.explain(dst_i, ttl, vt_i,
                                        responder=expected_responder)
                cites.append(f"attempt {index}: "
                             f"{draw or 'rate_limited'}@vt={vt_i:.6f}")
            return "exhausted_retries", "; ".join(cites)
        return ("exhausted_retries",
                f"{len(attempts)} attempts, all unanswered "
                f"(no fault model given)")
    if injector is not None:
        cause = injector.explain(dst, ttl, vt,
                                 responder=expected_responder)
        if cause is not None:
            return cause, f"fault draw at vt={vt:.6f}"
        return "rate_limited", "sent, unanswered, no fault draw fired"
    return "unattributed", "sent, unanswered (no fault model given)"


def diff_views(view_a: ScanView, view_b: ScanView,
               fault_model: Optional[FaultModel] = None
               ) -> List[Divergence]:
    """All classified divergences, sorted by (prefix, ttl).

    ``fault_model`` (if given) describes side B's run; its seed lets
    silent-probe holes on B be attributed to the exact fault draw.
    """
    injector = (FaultInjector(fault_model)
                if fault_model is not None and fault_model.enabled else None)
    divergences: List[Divergence] = []
    for prefix in sorted(view_a.prefixes() | view_b.prefixes()):
        in_a = prefix in view_a.prefixes()
        in_b = prefix in view_b.prefixes()
        if not (in_a and in_b):
            divergences.append(Divergence(
                prefix=prefix, cause="missing_prefix",
                side="a" if not in_a else "b",
                detail="prefix absent from this side"))
            continue
        hops_a = view_a.routes.get(prefix, {})
        hops_b = view_b.routes.get(prefix, {})
        length_a = view_a.route_length(prefix)
        length_b = view_b.route_length(prefix)
        if length_a != length_b:
            divergences.append(Divergence(
                prefix=prefix, cause="path_length",
                detail=f"a={length_a} b={length_b}"))
        dist_a = view_a.dest_distance.get(prefix)
        dist_b = view_b.dest_distance.get(prefix)
        if dist_a != dist_b:
            divergences.append(Divergence(
                prefix=prefix, cause="dest_distance",
                detail=f"a={dist_a} b={dist_b}"))
        for ttl in sorted(set(hops_a) | set(hops_b)):
            responder_a = hops_a.get(ttl)
            responder_b = hops_b.get(ttl)
            if responder_a == responder_b:
                continue
            if responder_a is not None and responder_b is not None:
                divergences.append(Divergence(
                    prefix=prefix, ttl=ttl, cause="responder_mismatch",
                    detail=f"a={responder_a} b={responder_b}"))
            elif responder_b is None:
                cause, detail = _classify_hole(
                    view_b, prefix, ttl, responder_a, injector)
                divergences.append(Divergence(
                    prefix=prefix, ttl=ttl, side="b", cause=cause,
                    detail=detail))
            else:
                # Hole on side A: its own stop record still explains a
                # not-probed TTL; faults are only modelled for side B.
                cause, detail = _classify_hole(
                    view_a, prefix, ttl, responder_b, None)
                divergences.append(Divergence(
                    prefix=prefix, ttl=ttl, side="a", cause=cause,
                    detail=detail))
    return divergences


def scan_diff(path_a: str, path_b: str,
              fault_model: Optional[FaultModel] = None
              ) -> List[Divergence]:
    """Load two files (event logs or result JSON) and diff them."""
    return diff_views(load_view(path_a), load_view(path_b), fault_model)


def divergence_rows(divergences: List[Divergence]) -> List[List[str]]:
    return [[str(d.prefix), "-" if d.ttl is None else str(d.ttl),
             d.side, d.cause, d.detail] for d in divergences]


def cause_counts(divergences: List[Divergence]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for divergence in divergences:
        counts[divergence.cause] = counts.get(divergence.cause, 0) + 1
    return {cause: counts[cause] for cause in CAUSES if cause in counts}


def render_scan_diff(view_a: ScanView, view_b: ScanView,
                     divergences: List[Divergence]) -> str:
    """The human report: cause summary, then every divergence."""
    counts = cause_counts(divergences)
    lines = [f"[scan-diff] a={view_a.label} ({view_a.source}) "
             f"b={view_b.label} ({view_b.source})",
             f"[scan-diff] prefixes: a={len(view_a.prefixes())} "
             f"b={len(view_b.prefixes())} "
             f"divergent={len({d.prefix for d in divergences})}"]
    if not divergences:
        lines.append("[scan-diff] no divergences")
        return "\n".join(lines)
    lines.append("[scan-diff] causes: " + ", ".join(
        f"{cause}={count}" for cause, count in counts.items()))
    lines.append(render_table(
        ["Prefix", "TTL", "Side", "Cause", "Detail"],
        divergence_rows(divergences),
        title="[scan-diff] divergences"))
    return "\n".join(lines)


def divergences_to_json(divergences: List[Divergence]) -> List[Dict[str, object]]:
    return [{"prefix": d.prefix, "ttl": d.ttl, "side": d.side,
             "cause": d.cause, "detail": d.detail} for d in divergences]
