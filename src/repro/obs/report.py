"""Metrics-file summaries and diffs (``flashroute-sim metrics-report``).

Feeds the BENCH_* trajectory analysis: run two scans with ``--metrics-out``
(different configs, seeds, or code revisions) and diff the snapshots to see
exactly which phase saved or spent the probes.  Wall-clock fields are
segregated in the files and ignored here, so diffs only ever show real
behavioural deltas.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..analysis.report import render_table
from .metrics import load_snapshot, render_exposition

#: Per-slice shard-dimension metric names (see repro.obs.shardobs).
_SHARD_METRIC = re.compile(r"^shard\.slice(\d+)\.([a-z_]+)$")


def flatten_snapshot(snapshot: Dict[str, object]) -> Dict[str, float]:
    """One flat ``name -> value`` view of a snapshot's deterministic part.

    Histograms contribute their ``count`` and ``sum`` under derived names
    (``<name>.count`` / ``<name>.sum``); bucket vectors are summary-diffed
    through those, not bucket by bucket.
    """
    flat: Dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = value
    for name, value in snapshot.get("gauges", {}).items():
        flat[name] = value
    for name, histogram in snapshot.get("histograms", {}).items():
        flat[f"{name}.count"] = histogram["count"]
        flat[f"{name}.sum"] = histogram["sum"]
    return flat


def diff_rows(a: Dict[str, object], b: Dict[str, object]
              ) -> List[Tuple[str, Optional[float], Optional[float],
                              Optional[float]]]:
    """Per-metric ``(name, a, b, b - a)`` rows over the union of names;
    a missing side reports ``None`` (rendered as ``-``)."""
    flat_a = flatten_snapshot(a)
    flat_b = flatten_snapshot(b)
    rows = []
    for name in sorted(set(flat_a) | set(flat_b)):
        left = flat_a.get(name)
        right = flat_b.get(name)
        delta = (right - left) if left is not None and right is not None \
            else None
        rows.append((name, left, right, delta))
    return rows


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


def render_summary(snapshot: Dict[str, object], label: str = "value") -> str:
    """One metrics file as a sorted table."""
    flat = flatten_snapshot(snapshot)
    return render_table(
        ["Metric", label],
        [[name, _fmt(flat[name])] for name in sorted(flat)],
        title="[metrics] snapshot summary")


def render_diff(a: Dict[str, object], b: Dict[str, object],
                label_a: str = "A", label_b: str = "B",
                changed_only: bool = False) -> str:
    """Two metrics files side by side with deltas."""
    rows = diff_rows(a, b)
    if changed_only:
        rows = [row for row in rows if row[3] is None or row[3] != 0]
    body = [[name, _fmt(left), _fmt(right),
             _fmt(delta) if delta is None or delta >= 0
             else f"-{_fmt(-delta)}"]
            for name, left, right, delta in rows]
    return render_table(["Metric", label_a, label_b, "Delta (B-A)"], body,
                        title="[metrics] snapshot diff")


def shard_breakdown_rows(snapshot: Dict[str, object]
                         ) -> Dict[int, Dict[str, float]]:
    """Per-slice field map from a snapshot's shard dimension (may be
    empty — unsharded snapshots carry no ``shard.sliceNN.*`` metrics)."""
    per_slice: Dict[int, Dict[str, float]] = {}
    for section in ("counters", "gauges"):
        for name, value in snapshot.get(section, {}).items():
            match = _SHARD_METRIC.match(name)
            if match is not None:
                per_slice.setdefault(int(match.group(1)),
                                     {})[match.group(2)] = value
    return per_slice


def render_shard_breakdown(snapshot: Dict[str, object]) -> Optional[str]:
    """The per-shard breakdown table, or ``None`` when the snapshot
    carries no shard dimension."""
    per_slice = shard_breakdown_rows(snapshot)
    if not per_slice:
        return None
    total_probes = sum(fields.get("probes", 0)
                       for fields in per_slice.values())
    body = []
    for index in sorted(per_slice):
        fields = per_slice[index]
        probes = fields.get("probes", 0)
        share = (f"{100.0 * probes / total_probes:.1f}%"
                 if total_probes else "-")
        body.append([str(index), _fmt(probes),
                     _fmt(fields.get("responses")),
                     _fmt(fields.get("route_holes")),
                     f"{fields.get('duration_virtual_seconds', 0.0):,.1f}",
                     share])
    gauges = snapshot.get("gauges", {})
    imbalance = gauges.get("shard.imbalance_factor")
    title = "[metrics] per-shard breakdown"
    if imbalance is not None:
        title += f" (imbalance factor {imbalance:.2f}x)"
    return render_table(
        ["Slice", "Probes", "Responses", "Holes", "Duration (vt s)",
         "Share"],
        body, title=title)


def metrics_report(path_a: str, path_b: Optional[str] = None,
                   changed_only: bool = False,
                   exposition: bool = False) -> str:
    """Entry point shared by the CLI subcommand and ``tools/``: summarize
    one metrics file, diff two, or (``exposition=True``) re-render one as
    Prometheus text exposition — the same format the daemon's ``metrics``
    control op serves live."""
    snapshot_a = load_snapshot(path_a)
    if exposition:
        if path_b is not None:
            raise ValueError("--exposition renders one snapshot, not a "
                             "diff")
        return render_exposition(snapshot_a).rstrip("\n")
    if path_b is None:
        summary = render_summary(snapshot_a)
        breakdown = render_shard_breakdown(snapshot_a)
        if breakdown is not None:
            summary = f"{summary}\n\n{breakdown}"
        return summary
    snapshot_b = load_snapshot(path_b)
    return render_diff(snapshot_a, snapshot_b, label_a=path_a,
                       label_b=path_b, changed_only=changed_only)
