"""Command-line interface: ``flashroute-sim`` (or ``python -m repro``).

Subcommands:

* ``scan`` — run one tool over a freshly generated topology and print the
  scan summary (optionally JSON).
* ``experiment`` — regenerate one of the paper's tables/figures.
* ``list`` — list available experiments.
* ``metrics-report`` — summarize or diff ``--metrics-out`` snapshots.
* ``scan-diff`` — join two scans (``--events`` logs or ``--output``
  results) per prefix and attribute every divergence to a cause.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from .api import Engine, ScanRequest
from .core.config import PreprobeMode
from .core.results import ScanResult
from .core.scanner import scanner_names
from .experiments import (
    ExperimentContext,
    run_discovery_experiment,
    run_fig3,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig8,
    run_loss_recovery,
    run_loss_sweep,
    run_neighborhood_protection,
    run_proximity_span_ablation,
    run_rewrite_detection,
    run_round_pacing_ablation,
    run_granularity_future_work,
    run_route_holes,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from .simnet.faults import FaultModel

_EXPERIMENTS: Dict[str, Callable[[ExperimentContext], object]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "neighborhood": run_neighborhood_protection,
    "discovery": run_discovery_experiment,
    "rewrite": run_rewrite_detection,
    "ablation-span": run_proximity_span_ablation,
    "ablation-pacing": run_round_pacing_ablation,
    "holes": run_route_holes,
    "loss-sweep": run_loss_sweep,
    "loss-recovery": run_loss_recovery,
    "future-granularity": run_granularity_future_work,
}


# --------------------------------------------------------------------- #
# Argument validators: reject impossible values at the parser, with a
# readable message, instead of crashing deep in topology generation.
# --------------------------------------------------------------------- #

def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonneg_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}")
    return value


def _gap_limit(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"gap limit must be at least 1, got {value}")
    return value


def _probability(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a probability in [0, 1), got {value}")
    return value


def _fraction(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a fraction in [0, 1], got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flashroute-sim",
        description="FlashRoute (IMC 2020) reproduction on a simulated "
                    "Internet")
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="run one scan")
    scan.add_argument("--tool", choices=scanner_names(),
                      default="flashroute-16")
    scan.add_argument("--prefixes", type=_positive_int, default=1024,
                      help="number of /24 prefixes in the simulated space")
    scan.add_argument("--seed", type=int, default=20201027,
                      help="topology seed")
    scan.add_argument("--split-ttl", type=int, default=None)
    scan.add_argument("--gap-limit", type=_gap_limit, default=None)
    scan.add_argument("--preprobe",
                      choices=[mode.value for mode in PreprobeMode],
                      default=None)
    scan.add_argument("--rate", type=_positive_float, default=None,
                      help="probes per second (default: scaled 100 Kpps)")
    scan.add_argument("--loss", type=_probability, default=0.0,
                      help="independent per-probe and per-response loss "
                           "probability (default 0: no injected faults)")
    scan.add_argument("--blackout", type=_probability, default=0.0,
                      help="fraction of responders suffering periodic "
                           "transient blackouts")
    scan.add_argument("--fault-seed", type=int, default=0,
                      help="seed of the injected fault sequence (same seed "
                           "+ same scan = identical faults)")
    scan.add_argument("--json", action="store_true",
                      help="print the result as JSON")
    scan.add_argument("--output", metavar="FILE", default=None,
                      help="save the full result (.json) or the hop list "
                           "(.csv)")
    scan.add_argument("--pcap", metavar="FILE", default=None,
                      help="capture every probe and response to a pcap "
                           "file (with --shards, one suffixed file per "
                           "slice: out.pcap -> out.slice00.pcap, ...)")
    scan.add_argument("--no-route-cache", action="store_true",
                      help="bypass the simulator's flat route cache and "
                           "resolve every probe from scratch (A/B and "
                           "debugging; results are identical)")
    scan.add_argument("--metrics-out", metavar="FILE", default=None,
                      help="write a metrics-registry snapshot (JSON) after "
                           "the scan (see docs/observability.md)")
    scan.add_argument("--trace", metavar="FILE", default=None,
                      help="write structured scan/phase/round span events "
                           "as JSONL (with --shards, per-slice trees "
                           "merged into one multi-root forest)")
    scan.add_argument("--events", metavar="FILE", default=None,
                      help="record probe-level flight-recorder events "
                           "(JSONL, or length-prefixed binary when FILE "
                           "ends in .bin); see docs/observability.md")
    scan.add_argument("--events-sample", type=_fraction, default=1.0,
                      metavar="FRACTION",
                      help="record only this deterministic fraction of "
                           "prefixes in the event log (default 1.0: all)")
    scan.add_argument("--events-ring", type=_positive_int, default=None,
                      metavar="N",
                      help="keep only the last N events (bounded ring "
                           "buffer, written at scan end)")
    scan.add_argument("--progress", nargs="?", const=1.0,
                      type=_positive_float, default=None,
                      metavar="SECONDS",
                      help="print progress snapshots to stderr every "
                           "SECONDS of virtual scan time (default 1.0); "
                           "with --shards, a live aggregated view of the "
                           "worker heartbeats (per-worker rates, "
                           "aggregate pps, ETA, straggler flags)")
    scan.add_argument("--retries", type=_nonneg_int, default=0,
                      metavar="N",
                      help="re-probe each unanswered (prefix, ttl) up to N "
                           "times (default 0: byte-identical to the "
                           "retry-free engines; see docs/robustness.md)")
    scan.add_argument("--adaptive-rate",
                      action=argparse.BooleanOptionalAction, default=False,
                      help="back the probing rate off multiplicatively "
                           "when a round's loss or rate-limiter drops "
                           "spike, recover additively when it clears")
    scan.add_argument("--checkpoint", metavar="FILE", default=None,
                      help="write a versioned scan checkpoint at round "
                           "boundaries and on interrupt; resume with "
                           "--resume FILE")
    scan.add_argument("--checkpoint-every", type=_positive_int, default=1,
                      metavar="K",
                      help="write the checkpoint file every K rounds "
                           "(default 1; the latest round boundary is "
                           "always flushed on interrupt)")
    scan.add_argument("--resume", metavar="FILE", default=None,
                      help="continue a scan from a checkpoint written by "
                           "--checkpoint (topology, tool and faults are "
                           "rebuilt from the file; other scan flags "
                           "except telemetry ones are ignored)")
    scan.add_argument("--interrupt-after-round", type=_positive_int,
                      default=None, metavar="K",
                      help="deterministically interrupt the scan at round "
                           "boundary K, as if ^C were pressed (testing "
                           "checkpoint/resume); with --shards, K counts "
                           "completed slices instead of rounds")
    scan.add_argument("--shards", type=_positive_int, default=None,
                      metavar="N",
                      help="run the scan sharded over N worker processes "
                           "and merge to an output byte-identical to "
                           "--shards 1 for the same seed (see "
                           "docs/scaling.md)")
    scan.add_argument("--shard-index", type=_nonneg_int, default=None,
                      metavar="I",
                      help="run only worker I's residue class of slices "
                           "(slice %% N == I) standalone; requires "
                           "--shards N")
    scan.add_argument("--shard-slices", type=_positive_int, default=16,
                      metavar="L",
                      help="logical slices the keyspace splits into "
                           "(default 16); fixed independently of --shards "
                           "so the merged output never depends on the "
                           "worker count")
    scan.add_argument("--slice-retries", type=_nonneg_int, default=0,
                      metavar="K",
                      help="respawn a crashed slice's work up to K times "
                           "before giving up (default 0); the merged "
                           "output stays byte-identical to a clean run, "
                           "and exhausted retries salvage the completed "
                           "slices into a --resume checkpoint; requires "
                           "--shards")
    scan.add_argument("--chaos-spec", metavar="SPEC", default=None,
                      help="seeded fault injector for resilience drills: "
                           "a JSON file path or inline JSON (see "
                           "docs/robustness.md for the spec format); "
                           "kills shard workers at slice boundaries; "
                           "requires --shards")

    serve = sub.add_parser(
        "serve",
        help="run the traceroute-as-a-service daemon (docs/service.md)")
    serve.add_argument("--prefixes", type=_positive_int, default=1024,
                       help="number of /24 prefixes in the warm topology")
    serve.add_argument("--seed", type=int, default=20201027,
                       help="topology seed")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=4792,
                       help="TCP port (0 picks a free one; default 4792)")
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="serve on a Unix-domain socket instead of TCP")
    serve.add_argument("--cache-size", type=_nonneg_int, default=None,
                       metavar="N",
                       help="LRU result-cache capacity in traces "
                            "(0 disables caching)")
    serve.add_argument("--telemetry", action="store_true",
                       help="enable service observability (request ids, "
                            "latency histograms, the metrics/health "
                            "control ops); implied by --trace and "
                            "--metrics-out")
    serve.add_argument("--trace", metavar="FILE", default=None,
                       help="write per-request span trees as JSONL "
                            "(implies --telemetry)")
    serve.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the final metrics snapshot on "
                            "shutdown (metrics-report compatible; "
                            "implies --telemetry)")
    serve.add_argument("--slow-ms", type=_nonneg_float, default=None,
                       metavar="MS",
                       help="wall-latency threshold for the slow-request "
                            "log (0 logs every request; default 500)")
    serve.add_argument("--default-deadline-ms", type=_positive_float,
                       default=None, metavar="MS",
                       help="bound every request that does not carry its "
                            "own deadline_ms; expired requests get a "
                            "structured deadline_exceeded error "
                            "(default: no deadline)")
    serve.add_argument("--max-inflight", type=_positive_int, default=None,
                       metavar="N",
                       help="admit at most N concurrent trace streams; "
                            "overflow beyond the queue is shed with a "
                            "structured 'overloaded' error (default: "
                            "unlimited)")
    serve.add_argument("--max-queued", type=_nonneg_int, default=0,
                       metavar="N",
                       help="requests allowed to wait for an admission "
                            "slot before shedding starts (default 0; "
                            "only meaningful with --max-inflight)")
    serve.add_argument("--drain-seconds", type=_nonneg_float, default=5.0,
                       metavar="S",
                       help="graceful-shutdown window: in-flight traces "
                            "get S seconds to finish after SIGTERM or "
                            "the shutdown op before being cancelled "
                            "(default 5)")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running daemon "
             "(polls stats/health/metrics)")
    top.add_argument("--host", default="127.0.0.1",
                     help="daemon TCP address (default 127.0.0.1)")
    top.add_argument("--port", type=int, default=4792,
                     help="daemon TCP port (default 4792)")
    top.add_argument("--socket", metavar="PATH", default=None,
                     help="connect over a Unix-domain socket instead")
    top.add_argument("--interval", type=_positive_float, default=1.0,
                     help="seconds between redraws (default 1.0)")
    top.add_argument("--iterations", type=_nonneg_int, default=0,
                     metavar="N",
                     help="render N frames then exit (0 = until ^C; "
                          "useful for CI smokes)")
    top.add_argument("--no-clear", action="store_true",
                     help="never redraw in place; print sequential "
                          "frames (the non-TTY default)")

    bench = sub.add_parser(
        "serve-bench",
        help="burst-load an in-process daemon and report latency "
             "percentiles + cache/coalesce rates")
    bench.add_argument("--prefixes", type=_positive_int, default=256)
    bench.add_argument("--seed", type=int, default=20201027)
    bench.add_argument("--clients", type=_positive_int, default=1000,
                       help="concurrent client connections in the burst")
    bench.add_argument("--keys", type=_positive_int, default=64,
                       help="distinct (destination, flow) identities the "
                            "burst cycles over")
    bench.add_argument("--flows", type=_positive_int, default=4)
    bench.add_argument("--concurrency", type=_positive_int, default=None,
                       help="cap concurrently open connections (default: "
                            "the full burst at once)")
    bench.add_argument("--output", metavar="FILE", default=None,
                       help="write the full report JSON (the "
                            "BENCH_service_latency.json artifact)")
    bench.add_argument("--telemetry", action="store_true",
                       help="run the daemon with the full observability "
                            "bundle enabled (the overhead-measurement "
                            "mode)")
    bench.add_argument("--json", action="store_true",
                       help="print the full report as JSON")
    bench.add_argument("--max-inflight", type=_positive_int, default=None,
                       metavar="N",
                       help="run the daemon with admission control: at "
                            "most N concurrent trace streams")
    bench.add_argument("--max-queued", type=_nonneg_int, default=0,
                       metavar="N",
                       help="admission queue depth before shedding "
                            "(with --max-inflight)")
    bench.add_argument("--default-deadline-ms", type=_positive_float,
                       default=None, metavar="MS",
                       help="run the daemon with a default per-request "
                            "deadline")
    bench.add_argument("--deadline-ms", type=_positive_float,
                       default=None, metavar="MS",
                       help="stamp every burst request with this "
                            "client-side deadline_ms")
    bench.add_argument("--chaos", action="store_true",
                       help="run hostile clients (slow-loris, mid-stream "
                            "disconnects, resets, malformed floods) "
                            "alongside the measured burst")
    bench.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for the chaos injector (default 0)")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--prefixes", type=_positive_int, default=None,
                            help="override REPRO_BENCH_PREFIXES")

    sub.add_parser("list", help="list available experiments")

    report = sub.add_parser(
        "metrics-report",
        help="summarize one metrics snapshot or diff two")
    report.add_argument("metrics", metavar="FILE",
                        help="metrics JSON written by scan --metrics-out")
    report.add_argument("baseline", metavar="BASELINE", nargs="?",
                        default=None,
                        help="second snapshot to diff against (optional)")
    report.add_argument("--changed-only", action="store_true",
                        help="when diffing, show only rows whose value "
                             "differs")
    report.add_argument("--exposition", action="store_true",
                        help="render the snapshot as Prometheus text "
                             "exposition instead of a table")

    diff = sub.add_parser(
        "scan-diff",
        help="join two scans (event logs or --output result files) per "
             "prefix and attribute every divergence to a cause")
    diff.add_argument("a", metavar="A",
                      help="first input: scan --events log or --output "
                           "result JSON")
    diff.add_argument("b", metavar="B",
                      help="second input (the faulted run, when diffing "
                           "clean vs faulted)")
    diff.add_argument("--loss", type=_probability, default=0.0,
                      help="fault model of run B: per-probe/per-response "
                           "loss probability (as passed to scan --loss)")
    diff.add_argument("--blackout", type=_probability, default=0.0,
                      help="fault model of run B: blackout fraction")
    diff.add_argument("--fault-seed", type=int, default=0,
                      help="fault seed of run B (must match scan "
                           "--fault-seed to attribute fault draws)")
    diff.add_argument("--json", action="store_true",
                      help="print divergences as JSON")
    return parser


def _build_telemetry(args: argparse.Namespace):
    """Construct the observability bundle when any telemetry flag is set;
    ``None`` otherwise so every engine stays on its zero-overhead path."""
    if (args.metrics_out is None and args.trace is None
            and args.progress is None and args.events is None):
        return None
    from .obs import Telemetry

    return Telemetry.create(trace_path=args.trace,
                            progress_interval=args.progress,
                            events_path=args.events,
                            events_sample=args.events_sample,
                            events_ring=args.events_ring)


def _scan_flag_error(message: str) -> "SystemExit":
    """Cross-flag validation failure: argparse-style message, exit 2."""
    print(f"flashroute-sim scan: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _validate_shard_flags(args: argparse.Namespace) -> None:
    """Cross-field checks argparse types can't express (exit code 2)."""
    if args.shard_index is not None and args.shards is None:
        raise _scan_flag_error(
            "--shard-index requires --shards N (the worker count the "
            "index selects from)")
    if args.shards is not None:
        if args.shard_index is not None and args.shard_index >= args.shards:
            raise _scan_flag_error(
                f"--shard-index must be < --shards "
                f"({args.shard_index} >= {args.shards})")
        if args.shards > args.shard_slices:
            raise _scan_flag_error(
                f"--shards ({args.shards}) must not exceed --shard-slices "
                f"({args.shard_slices}); extra workers would idle — raise "
                f"--shard-slices or lower --shards")
    if getattr(args, "slice_retries", 0) and args.shards is None:
        raise _scan_flag_error(
            "--slice-retries requires --shards N (retries respawn "
            "work in the shard pool)")
    if getattr(args, "chaos_spec", None) is not None and args.shards is None:
        raise _scan_flag_error(
            "--chaos-spec requires --shards N (the injector kills "
            "shard workers at slice boundaries)")


def _invocation_meta(args: argparse.Namespace) -> Dict[str, object]:
    """The checkpoint's invocation record: the scan's
    :class:`~repro.api.ScanRequest`, serialized — everything needed to
    rebuild the same topology, faults and scanner on ``--resume``."""
    return ScanRequest.from_args(args).to_dict()


def _build_resilience(args: argparse.Namespace):
    """A ResilienceConfig when any robustness flag is set; ``None`` keeps
    every engine on its byte-identical seed path."""
    checkpoint_path = args.checkpoint
    if checkpoint_path is None and args.resume is not None:
        # Resumed scans keep checkpointing to the file they came from,
        # so interrupt → resume chains need no extra flags.
        checkpoint_path = args.resume
    if not (args.retries or args.adaptive_rate or checkpoint_path
            or args.interrupt_after_round):
        return None
    from .core.resilience import ResilienceConfig

    hook = None
    if args.interrupt_after_round is not None:
        limit = args.interrupt_after_round

        def hook(rounds: int) -> None:
            if rounds >= limit:
                raise KeyboardInterrupt

    return ResilienceConfig(
        retries=args.retries,
        adaptive_rate=args.adaptive_rate,
        checkpoint_path=checkpoint_path,
        checkpoint_every=args.checkpoint_every,
        checkpoint_meta=_invocation_meta(args),
        round_hook=hook)


def _scan_to_json(result: ScanResult) -> str:
    payload = result.as_row()
    payload.update({
        "mismatched_quotes": result.mismatched_quotes,
        "rounds": result.rounds,
    })
    return json.dumps(payload, indent=2, sort_keys=True)


def _save_output(result: ScanResult, path: str) -> None:
    from .core.output import save_json, write_hops_csv

    if path.endswith(".csv"):
        with open(path, "w", encoding="utf-8", newline="") as stream:
            write_hops_csv(result, stream)
    elif path.endswith(".json"):
        save_json(result, path)
    else:
        raise SystemExit(f"--output must end in .json or .csv: {path!r}")


def _load_resume_document(args: argparse.Namespace):
    """Load ``--resume`` and replay its invocation record onto ``args``,
    so the rest of the scan path rebuilds the identical topology, faults
    and scanner.  Exits 2 (via SystemExit) on any unusable file."""
    from .core.resilience import CheckpointError, load_checkpoint

    try:
        document = load_checkpoint(args.resume)
    except (OSError, CheckpointError) as exc:
        print(f"resume: {exc}", file=sys.stderr)
        raise SystemExit(2)
    invocation = document.get("invocation")
    try:
        if not isinstance(invocation, dict):
            raise ValueError("no invocation record")
        request = ScanRequest.from_dict(invocation, complete=True)
    except ValueError:
        print(f"resume: {args.resume}: checkpoint carries no usable "
              f"invocation record (written by an API caller? rebuild the "
              f"scan in code and call the engine's resume())",
              file=sys.stderr)
        raise SystemExit(2)
    request.apply_to_args(args)
    return document


def _run_scan(args: argparse.Namespace) -> int:
    _validate_shard_flags(args)
    resume_document = None
    if args.resume is not None:
        resume_document = _load_resume_document(args)
        # The replayed invocation may have (re)introduced shard flags.
        _validate_shard_flags(args)
    if args.shards is not None:
        return _run_sharded_scan(args, resume_document)
    request = ScanRequest.from_args(args)
    telemetry = _build_telemetry(args)
    session = Engine.from_request(request).open_session(
        request, telemetry=telemetry, resilience=_build_resilience(args))
    network = session.network
    pcap_handle = None
    if args.pcap is not None:
        from .simnet.capture import CapturingNetwork

        pcap_handle = open(args.pcap, "wb")
        session.network = network = CapturingNetwork(network, pcap_handle)
    try:
        try:
            if resume_document is not None:
                from .core.resilience import CheckpointError

                try:
                    result = session.resume(resume_document["state"])
                except CheckpointError as exc:
                    print(f"resume: {exc}", file=sys.stderr)
                    return 2
                except ValueError as exc:
                    # The session refuses tools without a resume() hook.
                    print(f"resume: {exc}", file=sys.stderr)
                    return 2
            else:
                result = session.run()
        except KeyboardInterrupt as exc:
            checkpoint_path = getattr(exc, "checkpoint_path", None)
            if checkpoint_path is not None:
                print(f"interrupted: checkpoint written to "
                      f"{checkpoint_path} (continue with "
                      f"--resume {checkpoint_path})", file=sys.stderr)
            else:
                print("interrupted: no checkpoint (pass --checkpoint FILE "
                      "to make scans resumable)", file=sys.stderr)
            if telemetry is not None:
                telemetry.close()
            return 130
    finally:
        if pcap_handle is not None:
            pcap_handle.close()
    if args.loss or args.blackout:
        # Fault-injection runs carry the simulator's cache/fault counters
        # with the result (as_row columns + the human summary line below).
        result.attach_simnet_stats(network.stats())
    if telemetry is not None:
        telemetry.record_network(network)
        if args.metrics_out is not None:
            telemetry.registry.save(args.metrics_out)
        telemetry.close()
    if args.output is not None:
        _save_output(result, args.output)
    if args.json:
        print(_scan_to_json(result))
    else:
        print(result.summary())
        print(f"  responses={result.responses:,} "
              f"mismatched={result.mismatched_quotes:,} "
              f"probes/target={result.probes_per_target():.1f}")
        if args.loss or args.blackout:
            print(f"  holes={result.route_holes():,} "
                  f"duplicates={result.duplicate_responses:,}")
            stats = network.stats()
            cache = stats.get("route_cache")
            fault_stats = stats.get("faults")
            if cache is not None:
                print(f"  cache: hits={cache['hits']:,} "
                      f"misses={cache['misses']:,}")
            if fault_stats is not None:
                print(f"  faults: probes_lost={fault_stats['probes_lost']:,} "
                      f"responses_lost={fault_stats['responses_lost']:,} "
                      f"blackout_drops={fault_stats['blackout_drops']:,} "
                      f"duplicates_injected="
                      f"{fault_stats['duplicates_injected']:,}")
        if args.pcap is not None:
            print(f"  pcap: {args.pcap}")
        if args.output is not None:
            print(f"  saved: {args.output}")
        if args.metrics_out is not None:
            print(f"  metrics: {args.metrics_out}")
        if args.trace is not None:
            print(f"  trace: {args.trace}")
        if args.events is not None:
            print(f"  events: {args.events}")
        if args.checkpoint is not None and os.path.exists(args.checkpoint):
            print(f"  checkpoint: {args.checkpoint}")
    return 0


def _run_sharded_scan(args: argparse.Namespace,
                      resume_document: Optional[dict]) -> int:
    """The ``--shards N`` scan path: slice, fan out, merge, emit.

    Output handling mirrors the unsharded tail of :func:`_run_scan`; the
    merged result, metrics snapshot and event log are byte-identical for
    every worker count (see docs/scaling.md).
    """
    from .core.resilience import CheckpointError
    from .core.sharding import (
        SHARDED_ENGINE,
        ShardError,
        ShardPlan,
        run_sharded_scan,
    )

    events_format = None
    if args.events is not None:
        events_format = ("binary" if args.events.endswith(".bin")
                         else "jsonl")
    plan = ShardPlan.from_request(
        ScanRequest.from_args(args),
        collect_metrics=args.metrics_out is not None,
        events_format=events_format,
        events_sample=args.events_sample, events_ring=args.events_ring,
        collect_trace=args.trace is not None,
        pcap_base=args.pcap,
        heartbeat_interval=args.progress)

    resume_state = None
    if resume_document is not None:
        if resume_document.get("engine") != SHARDED_ENGINE:
            print(f"resume: {args.resume}: checkpoint engine "
                  f"{resume_document.get('engine')!r} is not a sharded "
                  f"scan", file=sys.stderr)
            return 2
        resume_state = resume_document["state"]
    checkpoint_path = args.checkpoint
    if checkpoint_path is None and args.resume is not None:
        checkpoint_path = args.resume

    chaos = None
    if getattr(args, "chaos_spec", None) is not None:
        from .testing.chaos import ChaosError, load_chaos_spec

        try:
            chaos = load_chaos_spec(args.chaos_spec)
        except ChaosError as exc:
            raise _scan_flag_error(f"--chaos-spec: {exc}")

    salvage_path = None
    if (args.slice_retries or chaos is not None) \
            and checkpoint_path is None:
        # Exhausted retries must leave something resumable even when
        # the user never asked for checkpoints: derive a salvage file
        # next to the output.
        if args.output is not None:
            salvage_path = os.path.splitext(args.output)[0] \
                + ".salvage.ckpt"
        else:
            salvage_path = "flashroute-scan.salvage.ckpt"

    interrupt_after = args.interrupt_after_round
    progress_view = None
    if args.progress is not None:
        from .obs.shardobs import ShardProgressView

        # args.progress is the reporting interval: virtual seconds for
        # the workers' heartbeat throttle, wall seconds for the parent's
        # render throttle (the parent has no virtual clock).
        progress_view = ShardProgressView(
            slices=plan.slices,
            workers=plan.shards if plan.shard_index is None else 1,
            interval=args.progress)

    def slice_hook(finished: int) -> None:
        if interrupt_after is not None and finished >= interrupt_after:
            raise KeyboardInterrupt

    try:
        outcome = run_sharded_scan(
            plan,
            checkpoint_path=checkpoint_path,
            checkpoint_every=args.checkpoint_every,
            checkpoint_meta=_invocation_meta(args),
            resume_state=resume_state,
            slice_hook=slice_hook if interrupt_after is not None
            else None,
            progress=progress_view,
            slice_retries=args.slice_retries,
            chaos=chaos,
            salvage_path=salvage_path)
    except CheckpointError as exc:
        print(f"resume: {exc}", file=sys.stderr)
        return 2
    except ShardError as exc:
        print(f"scan: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt as exc:
        saved = getattr(exc, "checkpoint_path", None)
        if saved is not None:
            print(f"interrupted: checkpoint written to {saved} "
                  f"(continue with --resume {saved})", file=sys.stderr)
        else:
            print("interrupted: no checkpoint (pass --checkpoint FILE "
                  "to make scans resumable)", file=sys.stderr)
        return 130

    result = outcome.result
    if args.loss or args.blackout:
        result.attach_simnet_stats(outcome.simnet_stats)
    if args.metrics_out is not None:
        from .obs.metrics import save_snapshot
        from .obs.shardobs import shard_wall_report

        # The per-slice wall-clock accounting (pids, CPU/wall seconds)
        # rides in the snapshot's quarantined wall section, keeping the
        # deterministic sections invariant in the worker count.
        save_snapshot(outcome.metrics_snapshot, args.metrics_out,
                      extra_wall={"shard":
                                  shard_wall_report(outcome.slice_stats)})
    if args.trace is not None:
        with open(args.trace, "w", encoding="utf-8") as stream:
            stream.write(outcome.trace_payload)
    if args.events is not None:
        payload = outcome.events_payload
        if events_format == "binary":
            with open(args.events, "wb") as stream:
                stream.write(payload)
        else:
            with open(args.events, "w", encoding="utf-8") as stream:
                stream.write(payload)
    if args.output is not None:
        _save_output(result, args.output)
    if args.json:
        print(_scan_to_json(result))
    else:
        print(result.summary())
        print(f"  responses={result.responses:,} "
              f"mismatched={result.mismatched_quotes:,} "
              f"probes/target={result.probes_per_target():.1f}")
        if args.loss or args.blackout:
            print(f"  holes={result.route_holes():,} "
                  f"duplicates={result.duplicate_responses:,}")
            stats = outcome.simnet_stats
            cache = stats.get("route_cache")
            fault_stats = stats.get("faults")
            if cache is not None:
                print(f"  cache: hits={cache['hits']:,} "
                      f"misses={cache['misses']:,}")
            if fault_stats is not None:
                print(f"  faults: probes_lost={fault_stats['probes_lost']:,} "
                      f"responses_lost={fault_stats['responses_lost']:,} "
                      f"blackout_drops={fault_stats['blackout_drops']:,} "
                      f"duplicates_injected="
                      f"{fault_stats['duplicates_injected']:,}")
        shard_note = (f"worker {plan.shard_index} of {plan.shards}"
                      if plan.shard_index is not None
                      else f"{plan.shards} workers")
        print(f"  shards: {shard_note}, "
              f"{outcome.slices_total} slices"
              + (f" ({outcome.slices_resumed} resumed)"
                 if outcome.slices_resumed else ""))
        if args.output is not None:
            print(f"  saved: {args.output}")
        if args.metrics_out is not None:
            print(f"  metrics: {args.metrics_out}")
        if args.trace is not None:
            print(f"  trace: {args.trace} (merged span forest, "
                  f"{outcome.slices_total} roots)")
        if args.pcap is not None and outcome.pcap_paths:
            paths = outcome.pcap_paths
            print(f"  pcap: {len(paths)} per-slice captures "
                  f"{paths[0]} .. {paths[-1]} "
                  f"(merge externally, e.g. mergecap -w {args.pcap})")
        if args.events is not None:
            print(f"  events: {args.events}")
        if args.checkpoint is not None and os.path.exists(args.checkpoint):
            print(f"  checkpoint: {args.checkpoint}")
    return 0


def _build_service_telemetry(args: argparse.Namespace):
    """Observability bundle for ``serve``: built when any telemetry flag
    is set, ``None`` otherwise so the default daemon stays on the
    zero-overhead, byte-identical path."""
    if (not args.telemetry and args.trace is None
            and args.metrics_out is None and args.slow_ms is None):
        return None
    from .service.obs import DEFAULT_SLOW_MS, ServiceTelemetry

    return ServiceTelemetry.create(
        trace_path=args.trace,
        slow_ms=args.slow_ms if args.slow_ms is not None
        else DEFAULT_SLOW_MS)


def _run_serve(args: argparse.Namespace) -> int:
    from .service import daemon

    request = ScanRequest(prefixes=args.prefixes, seed=args.seed)
    cache_size = (args.cache_size if args.cache_size is not None
                  else daemon.DEFAULT_CACHE_SIZE)
    telemetry = _build_service_telemetry(args)
    try:
        service = daemon.serve(request, host=args.host, port=args.port,
                               socket_path=args.socket,
                               cache_size=cache_size,
                               telemetry=telemetry,
                               metrics_out=args.metrics_out,
                               default_deadline_ms=args.default_deadline_ms,
                               max_inflight=args.max_inflight,
                               max_queued=args.max_queued,
                               drain_seconds=args.drain_seconds)
    except KeyboardInterrupt:
        print("serve: interrupted", file=sys.stderr)
        return 130
    stats = service.stats()
    print(f"serve: shut down after {stats['requests']} requests "
          f"({stats['traces_started']} traces, {stats['cache_hits']} "
          f"cache hits, {stats['coalesced']} coalesced)")
    if args.metrics_out is not None and telemetry is not None:
        print(f"  metrics: {args.metrics_out}")
    if args.trace is not None:
        print(f"  trace: {args.trace}")
    return 0


def _run_top(args: argparse.Namespace) -> int:
    from .service.top import run_top

    return run_top(host=args.host, port=args.port,
                   socket_path=args.socket, interval=args.interval,
                   iterations=args.iterations,
                   clear=False if args.no_clear else None)


def _run_serve_bench(args: argparse.Namespace) -> int:
    from .service.loadtest import run_loadtest

    chaos = None
    if args.chaos:
        from .testing.chaos import ChaosSpec

        chaos = ChaosSpec(seed=args.chaos_seed, slow_loris=4,
                          disconnects=4, resets=4, malformed=4)
    report = run_loadtest(prefixes=args.prefixes, seed=args.seed,
                          clients=args.clients, keys=args.keys,
                          flows=args.flows, concurrency=args.concurrency,
                          telemetry=args.telemetry,
                          max_inflight=args.max_inflight,
                          max_queued=args.max_queued,
                          default_deadline_ms=args.default_deadline_ms,
                          deadline_ms=args.deadline_ms,
                          chaos=chaos)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        latency = report["latency_ms"]
        print(f"serve-bench: {report['clients']} clients over "
              f"{report['distinct_keys']} keys in "
              f"{report['wall_seconds']}s "
              f"({report['requests_per_second']} req/s)")
        print(f"  latency: p50={latency['p50']}ms p90={latency['p90']}ms "
              f"p99={latency['p99']}ms max={latency['max']}ms")
        for outcome, row in sorted(
                report["latency_ms_by_outcome"].items()):
            print(f"    {outcome}: n={row['count']} p50={row['p50']}ms "
                  f"p99={row['p99']}ms max={row['max']}ms")
        print(f"  outcomes: {report['outcomes']} "
              f"hit_rate={report['cache_hit_rate']} "
              f"coalesce_rate={report['coalesce_rate']}")
        if "latency_ms_admitted" in report:
            admitted = report["latency_ms_admitted"]
            print(f"  admitted: n={report['admitted']} "
                  f"p50={admitted.get('p50')}ms "
                  f"p99={admitted.get('p99')}ms "
                  f"client_exceptions={report['client_exceptions']} "
                  f"daemon_survived={report['daemon_survived']}")
        if "chaos" in report and report["chaos"].get("daemon"):
            hostile = report["chaos"]["daemon"]
            print(f"  chaos: {hostile['clients']} hostile clients "
                  f"(slow_loris={hostile['slow_loris']} "
                  f"disconnects={hostile['disconnects']} "
                  f"resets={hostile['resets']} "
                  f"malformed={hostile['malformed']})")
        if args.output is not None:
            print(f"  saved: {args.output}")
    return 0


def _run_metrics_report(args: argparse.Namespace) -> int:
    from .obs.report import metrics_report

    try:
        report = metrics_report(args.metrics, args.baseline,
                                changed_only=args.changed_only,
                                exposition=args.exposition)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"metrics-report: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _run_scan_diff(args: argparse.Namespace) -> int:
    from .obs.scandiff import (diff_views, divergences_to_json, load_view,
                               render_scan_diff)

    fault_model = None
    if args.loss or args.blackout:
        fault_model = FaultModel(probe_loss=args.loss,
                                 response_loss=args.loss,
                                 blackout_fraction=args.blackout,
                                 seed=args.fault_seed)
    try:
        view_a = load_view(args.a)
        view_b = load_view(args.b)
        divergences = diff_views(view_a, view_b, fault_model)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"scan-diff: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(divergences_to_json(divergences), indent=2,
                         sort_keys=True))
    else:
        print(render_scan_diff(view_a, view_b, divergences))
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    context = ExperimentContext.for_bench(args.prefixes)
    outcome = _EXPERIMENTS[args.id](context)
    render = getattr(outcome, "render", None)
    print(render() if callable(render) else outcome)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "scan":
        return _run_scan(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "top":
        return _run_top(args)
    if args.command == "serve-bench":
        return _run_serve_bench(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "metrics-report":
        return _run_metrics_report(args)
    if args.command == "scan-diff":
        return _run_scan_diff(args)
    if args.command == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
