"""Hop-distance accuracy analyses (paper §3.3.2–§3.3.4, Figures 3 and 4).

Figure 3 validates the one-probe distance measurement against classic
traceroute: the difference between the traceroute *triggering TTL* (first
TTL eliciting port-unreachable) and the one-probe measured distance.
Figure 4 validates the proximity-span *prediction*: for prefixes whose
distance was measured, predict it instead from a measured neighbour and
compare.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.preprobe import predict_distances


@dataclass
class DifferenceDistribution:
    """PDF of (reference - candidate) hop differences plus summary stats."""

    pdf: Dict[int, float]
    samples: int

    def fraction_exact(self) -> float:
        return self.pdf.get(0, 0.0)

    def fraction_within(self, radius: int) -> float:
        return sum(mass for diff, mass in self.pdf.items()
                   if abs(diff) <= radius)

    def cdf(self) -> Dict[int, float]:
        cumulative = 0.0
        result: Dict[int, float] = {}
        for diff in sorted(self.pdf):
            cumulative += self.pdf[diff]
            result[diff] = cumulative
        return result


def difference_distribution(reference: Mapping[int, int],
                            candidate: Mapping[int, int]) -> DifferenceDistribution:
    """PDF of ``reference[k] - candidate[k]`` over the common keys."""
    counts: Counter = Counter()
    for key, ref_value in reference.items():
        cand_value = candidate.get(key)
        if cand_value is None:
            continue
        counts[ref_value - cand_value] += 1
    total = sum(counts.values())
    if total == 0:
        return DifferenceDistribution(pdf={}, samples=0)
    return DifferenceDistribution(
        pdf={diff: count / total for diff, count in counts.items()},
        samples=total)


def measurement_accuracy(measured: Mapping[int, int],
                         triggering: Mapping[int, int]) -> DifferenceDistribution:
    """Figure 3: triggering TTL minus one-probe measured distance.

    Paper: ~89.7 % exact, +7 % within one hop, ~3.3 % off by more.
    """
    return difference_distribution(triggering, measured)


def prediction_accuracy(measured: Mapping[int, int],
                        proximity_span: int,
                        num_prefixes: int,
                        reference: Optional[Mapping[int, int]] = None
                        ) -> DifferenceDistribution:
    """Figure 4: leave-one-out prediction error of the proximity rule.

    Each measured prefix is removed in turn and re-predicted from its
    remaining measured neighbours within the span; the difference against
    ``reference`` (defaulting to the measured value itself, the paper uses
    the traceroute-mimicking triggering TTLs of the same destinations) forms
    the PDF.  Paper: 59.1 % exact, 84.5 % within one hop.
    """
    counts: Counter = Counter()
    reference = reference if reference is not None else measured
    for offset, _distance in measured.items():
        ref_value = reference.get(offset)
        if ref_value is None:
            continue
        prediction = _predict_single(measured, offset, proximity_span)
        if prediction is None:
            continue
        counts[prediction - ref_value] += 1
    total = sum(counts.values())
    if total == 0:
        return DifferenceDistribution(pdf={}, samples=0)
    return DifferenceDistribution(
        pdf={diff: count / total for diff, count in counts.items()},
        samples=total)


def _predict_single(measured: Mapping[int, int], offset: int,
                    span: int) -> Optional[int]:
    """Nearest-neighbour prediction for one prefix, excluding itself."""
    for delta in range(1, span + 1):
        left = measured.get(offset - delta)
        if left is not None:
            return left
        right = measured.get(offset + delta)
        if right is not None:
            return right
    return None


def prediction_neighbourhood_coverage(measured: Mapping[int, int],
                                      span: int) -> float:
    """Fraction of measured prefixes having another measured prefix within
    the span (paper: ~89.5 % with the default span of 5)."""
    if not measured:
        return 0.0
    covered = sum(
        1 for offset in measured
        if _predict_single(measured, offset, span) is not None)
    return covered / len(measured)


def full_prediction_coverage(measured: Mapping[int, int], num_prefixes: int,
                             span: int) -> float:
    """Fraction of *all* prefixes gaining measured or predicted distances."""
    predicted = predict_distances(dict(measured), num_prefixes, span)
    return (len(measured) + len(predicted)) / max(num_prefixes, 1)
