"""Plain-text rendering of tables and distributions.

The benchmark harness regenerates every table and figure of the paper as
text: tables as aligned columns, figures as rows of (x, value) series plus a
small ASCII sparkline so trends are visible in terminal output.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    materialized: List[List[str]] = [[_cell(value) for value in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i])
                           for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(value.ljust(widths[i])
                               for i, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """Eight-level unicode sparkline of a numeric series."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_CHARS[0] * len(values)
    return "".join(
        _SPARK_CHARS[min(int((value - low) / span * 8), 7)]
        for value in values)


def render_distribution(series: Mapping[int, float], title: str,
                        x_label: str = "x", y_label: str = "value",
                        percent: bool = False) -> str:
    """Render a figure-style series: one row per x plus a sparkline."""
    keys = sorted(series)
    lines = [title]
    values = [series[key] for key in keys]
    lines.append(f"  {x_label:>8s}  {y_label}")
    for key, value in zip(keys, values):
        shown = f"{value * 100:7.2f}%" if percent else f"{value:10.3f}"
        lines.append(f"  {key:8d}  {shown}")
    lines.append(f"  trend: {sparkline(values)}")
    return "\n".join(lines)


def render_pdf_cdf(pdf: Mapping[int, float], title: str) -> str:
    """Render a PDF and its CDF the way Figures 3 and 4 report them."""
    keys = sorted(pdf)
    lines = [title, f"  {'diff':>6s}  {'PDF':>8s}  {'CDF':>8s}"]
    cumulative = 0.0
    for key in keys:
        cumulative += pdf[key]
        lines.append(f"  {key:6d}  {pdf[key]*100:7.2f}%  {cumulative*100:7.2f}%")
    lines.append(f"  trend: {sparkline([pdf[key] for key in keys])}")
    return "\n".join(lines)


def fraction_within(pdf: Mapping[int, float], radius: int) -> float:
    """Probability mass within ``|diff| <= radius`` of a difference PDF."""
    return sum(mass for diff, mass in pdf.items() if abs(diff) <= radius)
