"""Cross-tool metrics: comparison rows, depth histograms, coverage.

These helpers turn :class:`~repro.core.results.ScanResult` objects into the
quantities the paper's evaluation section reports.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set

from ..core.results import ScanResult
from ..simnet.topology import Topology


def comparison_rows(results: Sequence[ScanResult]) -> List[Dict[str, object]]:
    """Table-3-style rows: tool, interfaces, probes, scan time."""
    return [result.as_row() for result in results]


def interface_depth_histogram(result: ScanResult) -> Dict[int, int]:
    """Unique interfaces by the shallowest TTL they were observed at."""
    depth_of: Dict[int, int] = {}
    for hops in result.routes.values():
        for ttl, responder in hops.items():
            known = depth_of.get(responder)
            if known is None or ttl < known:
                depth_of[responder] = ttl
    histogram: Counter = Counter(depth_of.values())
    return dict(histogram)


def targets_probed_per_ttl(result: ScanResult) -> Dict[int, int]:
    """Figure 7: number of targets whose route was probed at each TTL.

    Every engine in this library probes a given (target, TTL) pair at most
    once per scan, so the per-TTL probe count equals the target count.
    """
    return {ttl: count for ttl, count in
            sorted(result.ttl_probe_histogram.items())}


def route_length_distribution(result: ScanResult) -> Dict[int, int]:
    """Histogram of measured route lengths across targets."""
    histogram: Counter = Counter()
    for prefix in result.targets:
        length = result.route_length(prefix)
        if length is not None:
            histogram[length] += 1
    return dict(sorted(histogram.items()))


def coverage_against_topology(result: ScanResult,
                              topology: Topology,
                              max_ttl: int = 32) -> float:
    """Fraction of the ground-truth discoverable interfaces a scan found.

    Upper-bound denominator: every responsive interface on any route within
    ``max_ttl`` (including load-balancer alternates a single-flow scan
    cannot see).
    """
    reachable = topology.reachable_interfaces(max_ttl=max_ttl)
    if not reachable:
        return 1.0
    reachable_addrs = {topology.iface_addrs[iface] for iface in reachable}
    return len(result.interfaces() & reachable_addrs) / len(reachable_addrs)


def missed_interfaces(result: ScanResult, reference: ScanResult) -> Set[int]:
    """Interfaces the reference scan found that ``result`` missed."""
    return reference.interfaces() - result.interfaces()


def speedup_summary(fast: ScanResult, slow: ScanResult) -> Dict[str, float]:
    """Headline ratios (the abstract's '3.5x faster' style numbers)."""
    return {
        "time_ratio": slow.duration / fast.duration if fast.duration else 0.0,
        "probe_ratio": (slow.probes_sent / fast.probes_sent
                        if fast.probes_sent else 0.0),
        "interface_ratio": (fast.interface_count() /
                            max(slow.interface_count(), 1)),
    }


def describe(results: Iterable[ScanResult]) -> str:
    """Multi-line text summary of several scans."""
    lines = []
    for result in results:
        lines.append(result.summary())
    return "\n".join(lines)
