"""Per-hop Jaccard similarity of interface sets (paper Figure 8).

The hitlist-bias analysis compares, hop by hop *counted from the
destination*, the interfaces discovered by a scan of hitlist targets and a
scan of random targets.  Jaccard index 1 means identical sets; the paper
finds the two scans agree everywhere except the last two hops before the
destinations, where the hitlist's preference for stub-entrance appliances
hides interior interfaces.
"""

from __future__ import annotations

from typing import Dict, Set

from ..core.results import ScanResult


def jaccard(a: Set[int], b: Set[int]) -> float:
    """Jaccard index of two sets; defined as 1.0 for two empty sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union


def interfaces_by_hops_from_destination(result: ScanResult,
                                        max_back: int = 10
                                        ) -> Dict[int, Set[int]]:
    """Group discovered interfaces by distance from their route's end.

    The route end is the destination's measured distance when it responded,
    else the deepest responding hop.  Hop 1 is the interface immediately
    before the destination.
    """
    grouped: Dict[int, Set[int]] = {back: set() for back in range(1, max_back + 1)}
    for prefix, hops in result.routes.items():
        if not hops:
            continue
        end = result.dest_distance.get(prefix)
        if end is None:
            end = max(hops) + 1
        for ttl, responder in hops.items():
            back = end - ttl
            if 1 <= back <= max_back:
                grouped[back].add(responder)
    return grouped


def jaccard_by_hops_from_destination(hitlist_scan: ScanResult,
                                     random_scan: ScanResult,
                                     max_back: int = 10) -> Dict[int, float]:
    """Figure 8: Jaccard index per hop-distance from the destination."""
    hitlist_groups = interfaces_by_hops_from_destination(hitlist_scan, max_back)
    random_groups = interfaces_by_hops_from_destination(random_scan, max_back)
    return {back: jaccard(hitlist_groups[back], random_groups[back])
            for back in range(1, max_back + 1)}
