"""The Census-hitlist bias analysis (paper §5.1).

Runs the paper's battery of comparisons between an exhaustive scan of
hitlist representatives and an exhaustive scan of random representatives of
the same /24 prefixes:

* total interfaces discovered by each scan;
* per-prefix route-length asymmetry (routes to random targets tend to be
  longer);
* unique interfaces found on the extra tail of the longer routes;
* how many hitlist addresses appear as intermediate hops on routes to the
  random targets, and vice versa;
* the same length asymmetry restricted to prefixes where both targets
  responded (ruling out the unassigned-address explanation);
* prevalence of forwarding loops on routes to unresponsive random targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from ..core.results import ScanResult


@dataclass
class HitlistBiasReport:
    """All §5.1 quantities for one pair of scans."""

    hitlist_interfaces: int
    random_interfaces: int

    #: prefixes where the random-target route is longer / the hitlist-target
    #: route is longer (paper: 1,515,626 vs 1,349,814).
    random_longer: int
    hitlist_longer: int

    #: unique interfaces on the extra tail segments of the longer routes
    #: (paper: 57,532 more in the random scan, vs a 69,377 total gap).
    random_extra_tail_interfaces: int
    hitlist_extra_tail_interfaces: int

    #: hitlist addresses seen as intermediate hops of random-target routes,
    #: and random addresses seen on hitlist-target routes
    #: (paper: 27,203 vs 6,421).
    hitlist_on_random_routes: int
    random_on_hitlist_routes: int

    #: responsive target counts (paper: 1,273,230 hitlist vs 540,060 random).
    hitlist_responsive: int
    random_responsive: int

    #: both-responsive subset (paper: 294,123 prefixes; random longer in
    #: 64,279, hitlist longer in 34,057).
    both_responsive: int
    both_random_longer: int
    both_hitlist_longer: int

    #: loops on routes to unresponsive random targets (paper: 16,549 of
    #: 971,113, i.e. 1.7 %).
    unresponsive_random_with_responsive_hitlist: int
    looped_routes: int

    def interface_gap(self) -> int:
        return self.random_interfaces - self.hitlist_interfaces

    def loop_fraction(self) -> float:
        denominator = self.unresponsive_random_with_responsive_hitlist
        if denominator == 0:
            return 0.0
        return self.looped_routes / denominator


def _route_has_loop(hops: Dict[int, int]) -> bool:
    """A route loops if some interface appears at two or more TTLs."""
    seen: Set[int] = set()
    for _ttl, responder in sorted(hops.items()):
        if responder in seen:
            return True
        seen.add(responder)
    return False


def _tail_interfaces(longer: ScanResult, shorter: ScanResult,
                     prefix: int) -> Set[int]:
    """Interfaces on the part of ``longer``'s route past ``shorter``'s end."""
    short_end = shorter.route_length(prefix)
    if short_end is None:
        short_end = 0
    hops = longer.routes.get(prefix, {})
    return {responder for ttl, responder in hops.items() if ttl > short_end}


def analyze_hitlist_bias(hitlist_scan: ScanResult,
                         random_scan: ScanResult) -> HitlistBiasReport:
    """Compute the full §5.1 report from two exhaustive scans."""
    prefixes = set(hitlist_scan.targets) & set(random_scan.targets)

    random_longer = 0
    hitlist_longer = 0
    both_responsive = 0
    both_random_longer = 0
    both_hitlist_longer = 0
    unresponsive_random = 0
    looped = 0
    random_tail: Set[int] = set()
    hitlist_tail: Set[int] = set()

    for prefix in prefixes:
        random_len = random_scan.route_length(prefix)
        hitlist_len = hitlist_scan.route_length(prefix)
        if random_len is not None and hitlist_len is not None:
            if random_len > hitlist_len:
                random_longer += 1
                random_tail |= _tail_interfaces(random_scan, hitlist_scan,
                                                prefix)
            elif hitlist_len > random_len:
                hitlist_longer += 1
                hitlist_tail |= _tail_interfaces(hitlist_scan, random_scan,
                                                 prefix)

        hit_responded = prefix in hitlist_scan.dest_distance
        rand_responded = prefix in random_scan.dest_distance
        if hit_responded and rand_responded:
            both_responsive += 1
            rand_d = random_scan.dest_distance[prefix]
            hit_d = hitlist_scan.dest_distance[prefix]
            if rand_d > hit_d:
                both_random_longer += 1
            elif hit_d > rand_d:
                both_hitlist_longer += 1
        if hit_responded and not rand_responded:
            unresponsive_random += 1
            if _route_has_loop(random_scan.routes.get(prefix, {})):
                looped += 1

    hitlist_addresses = set(hitlist_scan.targets.values())
    random_addresses = set(random_scan.targets.values())
    random_route_hops: Set[int] = set()
    for hops in random_scan.routes.values():
        random_route_hops.update(hops.values())
    hitlist_route_hops: Set[int] = set()
    for hops in hitlist_scan.routes.values():
        hitlist_route_hops.update(hops.values())

    return HitlistBiasReport(
        hitlist_interfaces=hitlist_scan.interface_count(),
        random_interfaces=random_scan.interface_count(),
        random_longer=random_longer,
        hitlist_longer=hitlist_longer,
        random_extra_tail_interfaces=len(random_tail - hitlist_scan.interfaces()),
        hitlist_extra_tail_interfaces=len(hitlist_tail - random_scan.interfaces()),
        hitlist_on_random_routes=len(hitlist_addresses & random_route_hops),
        random_on_hitlist_routes=len(random_addresses & hitlist_route_hops),
        hitlist_responsive=len(hitlist_scan.dest_distance),
        random_responsive=len(random_scan.dest_distance),
        both_responsive=both_responsive,
        both_random_longer=both_random_longer,
        both_hitlist_longer=both_hitlist_longer,
        unresponsive_random_with_responsive_hitlist=unresponsive_random,
        looped_routes=looped,
    )
