"""Analysis layer: turns scan results into the paper's tables and figures."""

from .distances import (
    DifferenceDistribution,
    difference_distribution,
    full_prediction_coverage,
    measurement_accuracy,
    prediction_accuracy,
    prediction_neighbourhood_coverage,
)
from .hitlist_bias import HitlistBiasReport, analyze_hitlist_bias
from .intrusiveness import (
    OverprobingReport,
    TopologyMap,
    analyze_overprobing,
    count_route_holes,
    scaled_rate_limit,
)
from .jaccard import (
    interfaces_by_hops_from_destination,
    jaccard,
    jaccard_by_hops_from_destination,
)
from .metrics import (
    comparison_rows,
    coverage_against_topology,
    describe,
    interface_depth_histogram,
    missed_interfaces,
    route_length_distribution,
    speedup_summary,
    targets_probed_per_ttl,
)
from .report import (
    fraction_within,
    render_distribution,
    render_pdf_cdf,
    render_table,
    sparkline,
)

__all__ = [
    "DifferenceDistribution",
    "difference_distribution",
    "full_prediction_coverage",
    "measurement_accuracy",
    "prediction_accuracy",
    "prediction_neighbourhood_coverage",
    "HitlistBiasReport",
    "analyze_hitlist_bias",
    "OverprobingReport",
    "TopologyMap",
    "analyze_overprobing",
    "count_route_holes",
    "scaled_rate_limit",
    "interfaces_by_hops_from_destination",
    "jaccard",
    "jaccard_by_hops_from_destination",
    "comparison_rows",
    "coverage_against_topology",
    "describe",
    "interface_depth_histogram",
    "missed_interfaces",
    "route_length_distribution",
    "speedup_summary",
    "targets_probed_per_ttl",
    "fraction_within",
    "render_distribution",
    "render_pdf_cdf",
    "render_table",
    "sparkline",
]
