"""Scan-intrusiveness analysis (paper §4.2.2, Table 4).

The paper cannot observe real router rate limiting, so it replays the probe
timeline each tool produced at 100 Kpps against the topology discovered by a
slow (10 Kpps) Scamper scan: a probe (destination, TTL, send time) maps to
the interface Scamper saw at that TTL for that destination, and an interface
is *overprobed* in any one-second interval in which it is asked to generate
more ICMP responses than the 500/s limit.  ``Dropped probes`` counts the
excess requests over all bins.

We reproduce the same methodology over the simulator's probe logs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from ..core.results import ScanResult
from ..simnet.engine import ProbeLog


@dataclass
class OverprobingReport:
    """Table 4 row: overprobed interfaces and dropped probes for one tool."""

    tool: str
    overprobed_interfaces: int
    dropped_probes: int
    probes_mapped: int


class TopologyMap:
    """(destination /24, TTL) -> interface map built from a reference scan.

    The paper builds this from the Scamper topology; any
    :class:`ScanResult` works.
    """

    def __init__(self, reference: ScanResult) -> None:
        self._hops: Dict[Tuple[int, int], int] = {}
        for prefix, hops in reference.routes.items():
            for ttl, responder in hops.items():
                self._hops[(prefix, ttl)] = responder

    def __len__(self) -> int:
        return len(self._hops)

    def interface_for(self, dst: int, ttl: int) -> Optional[int]:
        return self._hops.get((dst >> 8, ttl))


def analyze_overprobing(tool: str, probe_log: Iterable[Tuple[float, int, int]],
                        topology_map: TopologyMap,
                        rate_limit: int = 500) -> OverprobingReport:
    """Replay a probe log against the reference topology (Table 4).

    ``probe_log`` yields (send_time, dst, ttl) triples —
    :class:`~repro.simnet.engine.ProbeLog` instances iterate exactly that.
    """
    if rate_limit <= 0:
        raise ValueError("rate_limit must be positive")
    per_bin: Counter = Counter()
    mapped = 0
    for send_time, dst, ttl in probe_log:
        interface = topology_map.interface_for(dst, ttl)
        if interface is None:
            continue
        mapped += 1
        per_bin[(interface, int(send_time))] += 1

    overprobed: Set[int] = set()
    dropped = 0
    for (interface, _second), count in per_bin.items():
        if count > rate_limit:
            overprobed.add(interface)
            dropped += count - rate_limit
    return OverprobingReport(tool=tool,
                             overprobed_interfaces=len(overprobed),
                             dropped_probes=dropped,
                             probes_mapped=mapped)


def count_route_holes(result: ScanResult,
                      probe_log: Iterable[Tuple[float, int, int]]) -> int:
    """Probed hops that never produced a recorded interface ("holes").

    The paper's §4.2.2 trade-off: FlashRoute-16 and FlashRoute-32 find the
    same interfaces, but FlashRoute-32 overprobes less, loses fewer
    responses, and therefore leaves fewer holes in its routes.  A hole is a
    (destination, TTL) pair that *was probed* but produced no recorded hop,
    counted only within the responsive span of the route (beyond the last
    response lies genuine silence, not a hole).
    """
    shift = 32 - result.granularity
    probed: Dict[int, Set[int]] = {}
    for _send_time, dst, ttl in probe_log:
        probed.setdefault(dst >> shift, set()).add(ttl)

    holes = 0
    for prefix, ttls in probed.items():
        hops = result.routes.get(prefix, {})
        end = result.route_length(prefix)
        if end is None:
            continue
        dest_distance = result.dest_distance.get(prefix)
        for ttl in ttls:
            if ttl >= end:
                continue
            if ttl in hops:
                continue
            if dest_distance is not None and ttl >= dest_distance:
                continue
            holes += 1
    return holes


def scaled_rate_limit(paper_limit: int, num_prefixes: int,
                      paper_prefixes: int = 2**24,
                      paper_rate: float = 100_000.0) -> int:
    """Scale the 500/s per-interface limit to a scaled-down scan.

    The probing rate scales with the scanned space (so scan durations match
    the paper); the ratio of offered load to the limit is what determines
    overprobing, so the limit scales the same way.  A floor of 1 keeps the
    one-second-bin semantics meaningful.
    """
    scaled = paper_limit * num_prefixes / paper_prefixes
    return max(1, round(scaled))
