"""The public entry point: engine/session API for every scan consumer.

Three layers of callers — the CLI, the experiment drivers, and the
:mod:`repro.service` daemon — used to build scanners by hand from a
sprawl of per-engine configs (``FlashRouteConfig``/``YarrpConfig``),
:class:`~repro.core.scanner.ScannerOptions` and ad-hoc kwargs.  This
module collapses that into one request/engine/session shape:

* :class:`ScanRequest` — a single **serializable** description of a whole
  scan (tool, topology, knobs, faults, resilience, shard decomposition).
  The CLI's checkpoint invocation record, the shard workers and the
  daemon's startup configuration all round-trip through this one schema.
* :class:`TraceRequest` — a single per-destination trace (the daemon's
  request unit): ``(destination, flow)`` plus walk bounds.
* :class:`Engine` — the shared **read-only core**: one warm
  :class:`~repro.simnet.topology.Topology` and
  :class:`~repro.simnet.network.SimulatedNetwork`, reused across any
  number of sessions.
* :class:`ScanSession` / :class:`TraceSession` — all per-request state
  (network session view, scanner instance, resilience trackers,
  telemetry), created by :meth:`Engine.open_session`.  Sessions are
  independent: interleaving them over one engine never perturbs their
  outcomes (see ``SimulatedNetwork.open_session``).

Convenience one-liners::

    from repro import api
    result = api.scan(api.ScanRequest(tool="flashroute-16", prefixes=256))

    engine = api.Engine.from_request(request)
    session = engine.open_session(request)
    result = session.run()

    for hop in engine.open_session(api.TraceRequest.parse(
            {"destination": "198.51.0.7", "flow": 3})).stream():
        print(hop)

Direct construction of the probing engines (``FlashRoute()``,
``Yarrp()``, …) is deprecated in favour of this facade or the scanner
registry; the sanctioned constructors (:func:`flashroute` etc.) remain
for callers that need a hand-built per-engine config.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional

from .core.resilience import ResilienceConfig
from .core.results import ScanResult
from .core.scanner import (
    ScannerOptions,
    create_scanner,
    sanctioned_construction,
    scanner_names,
)
from .net.addr import int_to_ip, ip_to_int
from .net.icmp import ResponseKind
from .simnet.config import TopologyConfig
from .simnet.engine import VirtualClock
from .simnet.faults import FaultModel
from .simnet.network import SimulatedNetwork
from .simnet.topology import Topology

__all__ = [
    "Engine",
    "ScanRequest",
    "ScanSession",
    "TraceRequest",
    "TraceSession",
    "flashroute",
    "open_session",
    "scamper",
    "scan",
    "serve",
    "traceroute_scanner",
    "yarrp",
]


# --------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ScanRequest:
    """One serializable description of a whole scan.

    This is the schema the CLI's flags, the checkpoint invocation record,
    the shard workers' plans and the daemon's startup configuration all
    share: :meth:`to_dict`/:meth:`from_dict` round-trip losslessly
    (pinned by tests), so a request written into a checkpoint today is
    the same object a resume or a shard worker rebuilds tomorrow.
    """

    tool: str = "flashroute-16"
    prefixes: int = 1024
    seed: int = 20201027
    split_ttl: Optional[int] = None
    gap_limit: Optional[int] = None
    preprobe: Optional[str] = None
    rate: Optional[float] = None
    loss: float = 0.0
    blackout: float = 0.0
    fault_seed: int = 0
    route_cache: bool = True
    retries: int = 0
    adaptive_rate: bool = False
    shards: Optional[int] = None
    shard_index: Optional[int] = None
    shard_slices: int = 16

    def __post_init__(self) -> None:
        if self.prefixes <= 0:
            raise ValueError(f"prefixes must be positive, got "
                             f"{self.prefixes}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.blackout < 1.0:
            raise ValueError(f"blackout must be in [0, 1), got "
                             f"{self.blackout}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict; the exact field set, nothing more."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object],
                  complete: bool = False) -> "ScanRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown keys always raise (a request schema mismatch must never
        pass silently); with ``complete=True`` missing keys raise too —
        the checkpoint-resume path uses this to reject invocation
        records written by an incompatible version.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"scan request must be a JSON object, got "
                             f"{type(payload).__name__}")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown scan request field(s): {', '.join(unknown)}")
        if complete:
            missing = sorted(known - set(payload))
            if missing:
                raise ValueError(
                    f"scan request record is missing field(s): "
                    f"{', '.join(missing)}")
        return cls(**payload)

    # -- CLI namespace bridging ------------------------------------------

    #: ``argparse`` destinations that map 1:1 onto request fields (the
    #: one exception, ``--no-route-cache``, inverts into ``route_cache``).
    _ARG_FIELDS = ("tool", "prefixes", "seed", "split_ttl", "gap_limit",
                   "preprobe", "rate", "loss", "blackout", "fault_seed",
                   "retries", "adaptive_rate", "shards", "shard_index",
                   "shard_slices")

    @classmethod
    def from_args(cls, args) -> "ScanRequest":
        """Build a request from the CLI's parsed ``scan`` namespace."""
        values = {name: getattr(args, name) for name in cls._ARG_FIELDS}
        values["route_cache"] = not args.no_route_cache
        return cls(**values)

    def apply_to_args(self, args) -> None:
        """Replay this request onto a parsed namespace (``--resume``:
        the checkpoint's invocation record overrides the scan flags so
        the identical topology, faults and scanner are rebuilt)."""
        for name in self._ARG_FIELDS:
            setattr(args, name, getattr(self, name))
        args.no_route_cache = not self.route_cache

    # -- derived builders ------------------------------------------------

    def topology_config(self) -> TopologyConfig:
        return TopologyConfig(num_prefixes=self.prefixes, seed=self.seed)

    def fault_model(self) -> FaultModel:
        return FaultModel(probe_loss=self.loss, response_loss=self.loss,
                          blackout_fraction=self.blackout,
                          seed=self.fault_seed)

    def scanner_options(self, telemetry=None,
                        resilience: Optional[ResilienceConfig] = None
                        ) -> ScannerOptions:
        """The per-tool construction knobs this request implies.

        ``resilience`` overrides the request's own retry/adaptive-rate
        fields (the CLI passes a fully built config carrying checkpoint
        paths and hooks, which are deliberately not serializable here).
        """
        if resilience is None:
            resilience = self.resilience_config()
        return ScannerOptions(
            probing_rate=self.rate, split_ttl=self.split_ttl,
            gap_limit=self.gap_limit, preprobe=self.preprobe,
            telemetry=telemetry, resilience=resilience)

    def resilience_config(self) -> Optional[ResilienceConfig]:
        if not (self.retries or self.adaptive_rate):
            return None
        return ResilienceConfig(retries=self.retries,
                                adaptive_rate=self.adaptive_rate)


#: Default walk bounds of a per-destination trace (the service unit).
TRACE_MAX_TTL = 32
TRACE_GAP_LIMIT = 5
#: Virtual seconds between a trace's probes (classic traceroute pacing).
TRACE_PROBE_GAP = 0.02
#: Source-port base of service traces; the flow id offsets it so
#: per-flow load balancers see distinct 5-tuples per requested flow.
_TRACE_PORT_BASE = 33434


@dataclass(frozen=True)
class TraceRequest:
    """One per-destination trace request — the daemon's request unit."""

    destination: int
    flow: int = 0
    max_ttl: int = TRACE_MAX_TTL
    gap_limit: int = TRACE_GAP_LIMIT
    probe_gap: float = TRACE_PROBE_GAP

    def __post_init__(self) -> None:
        if not 0 <= self.destination <= 0xFFFFFFFF:
            raise ValueError(f"destination {self.destination!r} is not an "
                             f"IPv4 address")
        if not 0 <= self.flow <= 0xFFFF:
            raise ValueError(f"flow must be in [0, 65535], got "
                             f"{self.flow}")
        if not 1 <= self.max_ttl <= 255:
            raise ValueError(f"max_ttl must be in [1, 255], got "
                             f"{self.max_ttl}")
        if self.gap_limit < 1:
            raise ValueError(f"gap_limit must be >= 1, got "
                             f"{self.gap_limit}")
        if self.probe_gap <= 0:
            raise ValueError("probe_gap must be positive")

    @property
    def key(self) -> tuple:
        """The coalescing/cache identity: one probe stream per key."""
        return (self.destination, self.flow)

    @classmethod
    def parse(cls, payload: Dict[str, object]) -> "TraceRequest":
        """Build a request from wire JSON (dotted-quad or int address).

        Raises ``ValueError`` with a client-presentable message on any
        malformed input; the daemon maps that to a structured error
        record instead of dropping the connection.
        """
        if not isinstance(payload, dict):
            raise ValueError("trace request must be a JSON object")
        known = {"destination", "flow", "max_ttl", "gap_limit"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown trace request field(s): {', '.join(unknown)}")
        if "destination" not in payload:
            raise ValueError("trace request needs a 'destination'")
        destination = payload["destination"]
        if isinstance(destination, str):
            try:
                destination = ip_to_int(destination)
            except ValueError:
                raise ValueError(
                    f"destination {payload['destination']!r} is not an "
                    f"IPv4 address")
        elif not isinstance(destination, int) \
                or isinstance(destination, bool):
            raise ValueError("destination must be a dotted quad or an "
                             "integer address")
        extra = {}
        for key in ("flow", "max_ttl", "gap_limit"):
            if key in payload:
                value = payload[key]
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValueError(f"{key} must be an integer")
                extra[key] = value
        return cls(destination=destination, **extra)


# --------------------------------------------------------------------- #
# Engine: the shared read-only core
# --------------------------------------------------------------------- #

class Engine:
    """A warm topology + network core that any number of sessions share.

    Building the topology is the expensive part of a scan; the engine
    does it once and every :meth:`open_session` call afterwards is
    cheap.  The engine itself is never probed — sessions probe their own
    :meth:`~repro.simnet.network.SimulatedNetwork.open_session` views —
    so concurrent sessions cannot perturb each other.
    """

    def __init__(self, topology_config: Optional[TopologyConfig] = None,
                 use_route_cache: bool = True,
                 topology: Optional[Topology] = None) -> None:
        if topology is None:
            topology = Topology(topology_config if topology_config
                                is not None else TopologyConfig())
        self.topology = topology
        #: The warm core network.  Its route cache persists across
        #: sessions (a pure function of the topology), so the daemon's
        #: later traces are served from tables earlier ones built.
        self.network = SimulatedNetwork(topology,
                                        use_route_cache=use_route_cache)

    @classmethod
    def from_request(cls, request: ScanRequest) -> "Engine":
        return cls(request.topology_config(),
                   use_route_cache=request.route_cache)

    # -- address space ---------------------------------------------------

    def contains(self, destination: int) -> bool:
        """Whether an address falls inside the simulated scanned space."""
        offset = (destination >> 8) - self.topology.base_prefix
        return 0 <= offset < self.topology.num_prefixes

    def address_space(self) -> str:
        first = self.topology.base_prefix << 8
        last = ((self.topology.base_prefix
                 + self.topology.num_prefixes) << 8) - 1
        return f"{int_to_ip(first)}..{int_to_ip(last)}"

    @property
    def flap_epoch_seconds(self) -> float:
        """Length of one route-dynamics epoch (the service cache's
        invalidation clock is keyed to this)."""
        return self.topology.config.flap_epoch_seconds

    def warmth(self) -> Dict[str, object]:
        """What the warm core is holding — the readiness picture the
        service ``health`` op reports (an engine only exists once the
        topology and network are built, so ``warm`` is definitionally
        true; the route-cache occupancy shows how warm)."""
        cache = self.network.stats()["route_cache"]
        return {
            "warm": True,
            "prefixes": self.topology.num_prefixes,
            "address_space": self.address_space(),
            "route_cache_entries": (cache["entries"]
                                    if cache is not None else None),
        }

    # -- sessions --------------------------------------------------------

    def open_session(self, request, telemetry=None,
                     resilience: Optional[ResilienceConfig] = None,
                     start_time: float = 0.0):
        """Create the per-request session for ``request``.

        A :class:`ScanRequest` yields a :class:`ScanSession`
        (``.run()``); a :class:`TraceRequest` yields a
        :class:`TraceSession` (``.stream()``/``.run()``).
        """
        if isinstance(request, TraceRequest):
            return TraceSession(self, request, start_time=start_time)
        if isinstance(request, ScanRequest):
            return ScanSession(self, request, telemetry=telemetry,
                               resilience=resilience)
        raise TypeError(f"expected ScanRequest or TraceRequest, got "
                        f"{type(request).__name__}")


# --------------------------------------------------------------------- #
# Sessions: all per-request state
# --------------------------------------------------------------------- #

class ScanSession:
    """One full scan over an engine: the per-request state bundle.

    Owns a private network session view (rate-limiter bins, fault
    injector, counters), a fresh scanner instance from the registry and
    the request's resilience trackers.  ``run()`` executes the scan;
    ``resume()`` continues a checkpointed one.
    """

    def __init__(self, engine: Engine, request: ScanRequest,
                 telemetry=None,
                 resilience: Optional[ResilienceConfig] = None) -> None:
        self.engine = engine
        self.request = request
        self.telemetry = telemetry
        #: The session's private network view; callers may wrap it
        #: (e.g. ``CapturingNetwork`` for ``--pcap``) before running.
        self.network = engine.network.open_session(
            faults=request.fault_model(),
            use_route_cache=request.route_cache)
        self.scanner = create_scanner(
            request.tool,
            request.scanner_options(telemetry=telemetry,
                                    resilience=resilience))

    def run(self, **scan_kwargs) -> ScanResult:
        """Run the scan to completion (``scan_kwargs`` pass through to
        the tool's ``scan()`` — targets, stop sets, start TTLs)."""
        return self.scanner.scan(self.network, **scan_kwargs)

    def resume(self, state: dict) -> ScanResult:
        """Continue a checkpointed scan from its ``state`` section."""
        resume = getattr(self.scanner, "resume", None)
        if resume is None:
            raise ValueError(
                f"tool {self.request.tool!r} does not support "
                f"checkpoint/resume")
        return resume(self.network, state)


class TraceSession:
    """One streamed per-destination traceroute over an engine.

    The walk is the classic sequential one (probe TTL 1, wait, probe
    TTL 2, …) on the session's own virtual clock, stopping at the
    destination or after ``gap_limit`` consecutive silent hops.  Hops
    stream as Manifold-schema records (see docs/service.md); sessions
    interleave freely over one engine.
    """

    def __init__(self, engine: Engine, request: TraceRequest,
                 start_time: float = 0.0,
                 faults: Optional[FaultModel] = None) -> None:
        if not engine.contains(request.destination):
            raise ValueError(
                f"destination {int_to_ip(request.destination)} is outside "
                f"the simulated space {engine.address_space()}")
        self.engine = engine
        self.request = request
        self.network = engine.network.open_session(faults=faults)
        self.clock = VirtualClock(start_time)
        self.start_time = start_time
        self.hops: List[Dict[str, object]] = []
        self.dest_reached = False
        self.dest_distance: Optional[int] = None
        self.done = False

    def _hop_record(self, ttl: int, responder: int,
                    rtt_ms: float) -> Dict[str, object]:
        # Manifold's hop schema (manifold-tdmi.h): KEY(source,
        # destination, ttl) with the probe id in `path`.
        return {
            "ip": int_to_ip(responder),
            "ttl": ttl,
            "hop_probecount": 0,
            "path": self.request.flow,
            "source": int_to_ip(self.engine.topology.vantage_addr),
            "destination": int_to_ip(self.request.destination),
            "rtt_ms": round(rtt_ms, 3),
        }

    def stream(self) -> Iterator[Dict[str, object]]:
        """Walk the path, yielding one hop record per responding TTL.

        The generator is resumable mid-flight (the daemon interleaves
        many of them); records accumulate on :attr:`hops` so late
        subscribers can replay the prefix already streamed.
        """
        request = self.request
        network = self.network
        clock = self.clock
        dst = request.destination
        src_port = _TRACE_PORT_BASE + request.flow
        silent = 0
        for ttl in range(1, request.max_ttl + 1):
            sent_at = clock.now
            response = network.send_probe(dst, ttl, sent_at, src_port,
                                          flow=request.flow)
            clock.advance(request.probe_gap)
            if response is None:
                silent += 1
                if silent >= request.gap_limit:
                    break
                continue
            silent = 0
            clock.advance_to(response.arrival_time)
            rtt_ms = (response.arrival_time - sent_at) * 1000.0
            if response.kind is ResponseKind.TTL_EXCEEDED:
                record = self._hop_record(ttl, response.responder, rtt_ms)
                self.hops.append(record)
                yield record
                continue
            # Unreachable family / TCP RST: the destination answered.
            record = self._hop_record(ttl, response.responder, rtt_ms)
            self.hops.append(record)
            self.dest_reached = True
            self.dest_distance = ttl
            yield record
            break
        self.done = True

    def run(self) -> Dict[str, object]:
        """Drain the walk and return the Manifold traceroute record."""
        if not self.done:
            for _ in self.stream():
                pass
        return self.result()

    def result(self) -> Dict[str, object]:
        """The Manifold-schema traceroute record for the finished walk."""
        return {
            "source": int_to_ip(self.engine.topology.vantage_addr),
            "destination": int_to_ip(self.request.destination),
            "flow": self.request.flow,
            "hops": list(self.hops),
            "hop_count": len(self.hops),
            "dest_reached": self.dest_reached,
            "dest_distance": self.dest_distance,
            "probes": self.network.probes_sent,
            "first": self.start_time,
            "last": self.clock.now,
            "ts": self.clock.now,
        }


# --------------------------------------------------------------------- #
# Module-level conveniences
# --------------------------------------------------------------------- #

def scan(request: Optional[ScanRequest] = None, telemetry=None,
         **overrides) -> ScanResult:
    """One-shot scan: build an engine for ``request`` and run it.

    ``overrides`` build a request when none is given::

        api.scan(tool="yarrp-32", prefixes=256, seed=7)

    A request with ``shards`` set runs through the sharded executor and
    returns the merged (worker-count-invariant) result.
    """
    if request is None:
        request = ScanRequest(**overrides)
    elif overrides:
        request = dataclasses.replace(request, **overrides)
    if request.shards is not None:
        from .core.sharding import ShardPlan, run_sharded_scan

        return run_sharded_scan(ShardPlan.from_request(request)).result
    engine = Engine.from_request(request)
    return engine.open_session(request, telemetry=telemetry).run()


def open_session(request, engine: Optional[Engine] = None,
                 telemetry=None):
    """Open a session for ``request``, building a fresh engine unless
    one is supplied (reuse an engine to amortize topology construction)."""
    if engine is None:
        if isinstance(request, TraceRequest):
            raise ValueError("trace sessions need an explicit engine "
                             "(the warm core the daemon holds)")
        engine = Engine.from_request(request)
    return engine.open_session(request, telemetry=telemetry)


def serve(*args, **kwargs):
    """Run the traceroute-as-a-service daemon (see :mod:`repro.service`).

    Lazy wrapper so importing :mod:`repro.api` never pulls in asyncio
    machinery; all arguments forward to
    :func:`repro.service.daemon.serve`.
    """
    from .service.daemon import serve as _serve

    return _serve(*args, **kwargs)


# -- sanctioned per-engine constructors -------------------------------- #
# For callers that need a hand-built per-engine config (the experiment
# drivers reproduce paper tables with knobs ScanRequest deliberately
# does not carry).  These are the blessed replacements for direct
# ``FlashRoute(...)``-style construction.

def flashroute(config=None, telemetry=None):
    """A :class:`~repro.core.prober.FlashRoute` from an explicit config."""
    from .core.prober import FlashRoute

    with sanctioned_construction():
        return FlashRoute(config, telemetry=telemetry)


def yarrp(config=None, telemetry=None):
    """A :class:`~repro.baselines.yarrp.Yarrp` from an explicit config."""
    from .baselines.yarrp import Yarrp

    with sanctioned_construction():
        return Yarrp(config, telemetry=telemetry)


def scamper(config=None, telemetry=None):
    """A :class:`~repro.baselines.scamper.Scamper` from an explicit
    config."""
    from .baselines.scamper import Scamper

    with sanctioned_construction():
        return Scamper(config, telemetry=telemetry)


def traceroute_scanner(telemetry=None, **kwargs):
    """A :class:`~repro.baselines.traceroute.TracerouteScanner`."""
    from .baselines.traceroute import TracerouteScanner

    with sanctioned_construction():
        return TracerouteScanner(telemetry=telemetry, **kwargs)


def tools() -> tuple:
    """Registered tool names (sorted) — the valid ``ScanRequest.tool``
    values."""
    return scanner_names()
