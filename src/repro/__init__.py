"""FlashRoute (IMC 2020) reproduction.

A production-quality Python library reproducing *FlashRoute: Efficient
Traceroute on a Massive Scale* (Huang, Rabinovich, Al-Dalky, IMC 2020) on a
simulated Internet.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured results.

Public entry points::

    from repro import (FlashRoute, FlashRouteConfig, Topology,
                       TopologyConfig, SimulatedNetwork)

    topology = Topology(TopologyConfig(num_prefixes=1024))
    scanner = FlashRoute(FlashRouteConfig(split_ttl=16))
    result = scanner.scan(SimulatedNetwork(topology))
    print(result.summary())
"""

__version__ = "1.0.0"

from .simnet import SimulatedNetwork, Topology, TopologyConfig, scaled_probing_rate

__all__ = [
    "__version__",
    "SimulatedNetwork",
    "Topology",
    "TopologyConfig",
    "scaled_probing_rate",
    "FlashRoute",
    "FlashRouteConfig",
    "ScanResult",
]


def __getattr__(name):  # lazy re-exports, filled in as subpackages land
    if name in ("FlashRoute", "FlashRouteConfig"):
        from . import core
        return getattr(core, name)
    if name == "ScanResult":
        from .core.results import ScanResult
        return ScanResult
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
