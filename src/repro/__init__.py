"""FlashRoute (IMC 2020) reproduction.

A production-quality Python library reproducing *FlashRoute: Efficient
Traceroute on a Massive Scale* (Huang, Rabinovich, Al-Dalky, IMC 2020) on a
simulated Internet.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured results.

Public entry point — the :mod:`repro.api` facade::

    from repro import api

    result = api.scan(tool="flashroute-16", prefixes=1024)
    print(result.summary())

    engine = api.Engine.from_request(api.ScanRequest(prefixes=1024))
    for hop in engine.open_session(api.TraceRequest.parse(
            {"destination": "20.0.0.7"})).stream():
        print(hop)

Constructing the probing engines directly (``FlashRoute(config)`` …)
still works but raises a :class:`DeprecationWarning`; go through
``api.scan()``/``api.open_session()`` or the scanner registry
(:func:`repro.core.scanner.create_scanner`) instead.
"""

__version__ = "1.0.0"

from .simnet import SimulatedNetwork, Topology, TopologyConfig, scaled_probing_rate

__all__ = [
    "__version__",
    "SimulatedNetwork",
    "Topology",
    "TopologyConfig",
    "scaled_probing_rate",
    "FlashRoute",
    "FlashRouteConfig",
    "ScanResult",
]


def __getattr__(name):  # lazy re-exports, filled in as subpackages land
    if name in ("FlashRoute", "FlashRouteConfig"):
        from . import core
        return getattr(core, name)
    if name == "ScanResult":
        from .core.results import ScanResult
        return ScanResult
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
