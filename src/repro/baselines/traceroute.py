"""Classic sequential traceroute.

The paper uses the conventional probe-every-TTL-and-wait approach as the
reference for validating the one-probe hop-distance measurement (§3.3.2):
probes with TTLs 1..32 are sent toward a destination and the first TTL that
elicits an ICMP port-unreachable — the *triggering TTL* — is the
traceroute-measured distance.  This module implements that reference tool,
one destination at a time, which is also the library's simplest example of
a probing engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.icmp import ResponseKind
from ..simnet.engine import VirtualClock
from ..simnet.network import SimulatedNetwork
from .. import core


@dataclass
class TracerouteResult:
    """Hops and destination info measured for one target."""

    dst: int
    #: ttl -> responder address for TTL-exceeded responses.
    hops: Dict[int, int] = field(default_factory=dict)
    #: First TTL that elicited port-unreachable, or None.
    triggering_ttl: Optional[int] = None
    #: Distance implied by the residual TTL of the unreachable response.
    residual_distance: Optional[int] = None
    probes: int = 0
    responses: int = 0
    #: Injected duplicate replies observed (counted inside ``responses``).
    duplicates: int = 0
    #: ttl -> probes sent at that hop (> 1 only when retries re-sent a
    #: silent probe).
    probes_per_ttl: Dict[int, int] = field(default_factory=dict)
    #: Silent probes that a retry answered / that stayed silent through
    #: the whole retry budget.
    retries_recovered: int = 0
    retries_exhausted: int = 0

    def max_responding_ttl(self) -> Optional[int]:
        candidates: List[int] = list(self.hops)
        if self.triggering_ttl is not None:
            candidates.append(self.triggering_ttl)
        return max(candidates) if candidates else None


class ClassicTraceroute:
    """Sequential per-hop traceroute over the simulated network.

    Unlike the massive-scan engines, this waits for each response before
    deciding the next step — the behaviour whose slowness motivated Yarrp
    and FlashRoute in the first place.
    """

    def __init__(self, network: SimulatedNetwork, max_ttl: int = 32,
                 inter_probe_gap: float = 0.02,
                 stop_at_unreachable: bool = True,
                 start_time: float = 0.0,
                 retries: int = 0,
                 registry=None, events=None) -> None:
        if max_ttl < 1:
            raise ValueError("max_ttl must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.network = network
        self.max_ttl = max_ttl
        self.inter_probe_gap = inter_probe_gap
        self.stop_at_unreachable = stop_at_unreachable
        #: Re-sends per silent hop before moving on (classic traceroute
        #: sends 3 probes per hop; 0 — the default — matches the paper's
        #: one-probe-per-hop comparison setup).
        self.retries = retries
        self.clock = VirtualClock(start_time)
        #: Optional observability sinks (a MetricsRegistry and an
        #: EventRecorder); ``None`` keeps the trace loop untouched.
        self.registry = registry
        self.events = events

    def trace(self, dst: int) -> TracerouteResult:
        """Probe ``dst`` at TTL 1..max_ttl, low to high, one at a time."""
        result = TracerouteResult(dst=dst)
        events = self.events
        reached = False
        for ttl in range(1, self.max_ttl + 1):
            response = None
            for attempt in range(self.retries + 1):
                send_vt = self.clock.now
                marking = core.encode_probe(dst, ttl, send_vt)
                # Classic traceroute is strictly synchronous, so the batch
                # entry point carries exactly one probe per decision.
                response = self.network.send_probes(
                    [(dst, ttl, send_vt, marking.src_port,
                      marking.ipid, marking.udp_length)])[0]
                result.probes += 1
                result.probes_per_ttl[ttl] = \
                    result.probes_per_ttl.get(ttl, 0) + 1
                if events is not None:
                    events.probe_sent(send_vt, dst >> 8, ttl, dst,
                                      marking.src_port,
                                      "trace" if attempt == 0 else "retry")
                    if attempt:
                        events.retry(send_vt, dst >> 8, ttl, attempt, dst)
                # Sequential semantics: wait out the round trip (or the
                # pacing gap, whichever is longer) before the next hop.
                if response is not None:
                    self.clock.advance_to(response.arrival_time)
                self.clock.advance(self.inter_probe_gap)
                if response is not None:
                    if attempt:
                        result.retries_recovered += 1
                    break
            if response is None:
                if self.retries:
                    result.retries_exhausted += 1
                continue
            result.responses += 1
            rtt = (response.arrival_time - send_vt) * 1000.0
            if self.registry is not None:
                self.registry.observe("scan.rtt_ms", rtt)
            if response.dup is not None:
                # Synchronous receive: the injected duplicate arrives while
                # waiting and is observed (and discarded) right here.
                result.responses += 1
                result.duplicates += 1
                if self.registry is not None:
                    self.registry.observe(
                        "scan.rtt_ms",
                        (response.dup.arrival_time - send_vt) * 1000.0)
                if events is not None:
                    events.response(
                        response.dup.arrival_time, dst >> 8, ttl,
                        response.dup.responder, response.dup.kind.value,
                        rtt=(response.dup.arrival_time - send_vt) * 1000.0,
                        dup=True)
            dist = None
            if response.kind is ResponseKind.TTL_EXCEEDED:
                result.hops[ttl] = response.responder
            elif response.kind.is_unreachable:
                if result.triggering_ttl is None:
                    result.triggering_ttl = ttl
                    from ..net.icmp import distance_from_unreachable
                    result.residual_distance = distance_from_unreachable(
                        response, ttl)
                    dist = result.residual_distance
                if self.stop_at_unreachable:
                    reached = True
            if events is not None:
                events.response(response.arrival_time, dst >> 8, ttl,
                                response.responder, response.kind.value,
                                rtt=rtt, dist=dist)
            if reached:
                break
        if events is not None:
            events.stop_decision(self.clock.now, dst >> 8,
                                 "dest_reached" if reached else "max_ttl",
                                 ttl if reached else self.max_ttl)
        return result

    def triggering_ttl(self, dst: int) -> Optional[int]:
        """Just the first TTL that triggers port-unreachable (Fig. 3)."""
        return self.trace(dst).triggering_ttl


class TracerouteScanner:
    """Classic traceroute dressed as a :class:`~repro.core.scanner.Scanner`.

    Traces every target sequentially on one continuous clock and folds the
    per-destination :class:`TracerouteResult`s into one
    :class:`~repro.core.results.ScanResult`, so the reference tool can sit
    in the same experiment tables as the massive scanners.  Orders of
    magnitude slower in virtual time, exactly as in reality.
    """

    def __init__(self, max_ttl: int = 32, inter_probe_gap: float = 0.02,
                 seed: int = 1, retries: int = 0, telemetry=None) -> None:
        core.scanner.warn_direct_construction("TracerouteScanner")
        self.max_ttl = max_ttl
        self.inter_probe_gap = inter_probe_gap
        self.seed = seed
        self.retries = retries
        self.telemetry = telemetry

    def scan(self, network: SimulatedNetwork,
             targets: Optional[Dict[int, int]] = None,
             tool_name: str = "Traceroute") -> "core.ScanResult":
        if targets is None:
            targets = core.random_targets(network.topology, self.seed)
        result = core.ScanResult(tool=tool_name, num_targets=len(targets))
        result.targets = dict(targets)
        telemetry = self.telemetry
        tracer = ClassicTraceroute(
            network, max_ttl=self.max_ttl,
            inter_probe_gap=self.inter_probe_gap,
            retries=self.retries,
            registry=telemetry.registry if telemetry is not None else None,
            events=telemetry.events if telemetry is not None else None)
        span_tracer = (telemetry.tracer if telemetry is not None
                       and telemetry.tracer.enabled else None)
        progress = telemetry.progress if telemetry is not None else None
        if span_tracer is not None:
            span_tracer.begin("scan", tool_name, tracer.clock.now,
                              targets=len(targets))
        retries_sent = retries_recovered = retries_exhausted = 0
        for prefix in sorted(targets):
            trace = tracer.trace(targets[prefix])
            result.probes_sent += trace.probes
            result.responses += trace.responses
            result.duplicate_responses += trace.duplicates
            retries_sent += trace.probes - len(trace.probes_per_ttl)
            retries_recovered += trace.retries_recovered
            retries_exhausted += trace.retries_exhausted
            for ttl, count in trace.probes_per_ttl.items():
                result.ttl_probe_histogram[ttl] += count
            for ttl, responder in trace.hops.items():
                result.add_hop(prefix, ttl, responder)
            if trace.residual_distance is not None:
                result.record_destination(prefix, trace.residual_distance)
            now = tracer.clock.now
            if progress is not None and progress.due(now):
                progress.report(now, {
                    "tool": tool_name,
                    "probes": result.probes_sent,
                    "responses": result.responses,
                    "pps": result.probes_sent / now if now > 0 else 0.0,
                    "interfaces": result.interface_count(),
                })
        result.duration = tracer.clock.now
        if span_tracer is not None:
            span_tracer.end("scan", tool_name, tracer.clock.now,
                            probes=result.probes_sent,
                            responses=result.responses,
                            interfaces=result.interface_count())
        if telemetry is not None and telemetry.registry is not None \
                and self.retries:
            telemetry.registry.inc("scan.retries.sent", retries_sent)
            telemetry.registry.inc("scan.retries.recovered",
                                   retries_recovered)
            telemetry.registry.inc("scan.retries.exhausted",
                                   retries_exhausted)
        if telemetry is not None:
            telemetry.record_result(result)
        return result


# --------------------------------------------------------------------- #
# Scanner registry entry (see repro.core.scanner)
# --------------------------------------------------------------------- #

from ..core.scanner import ScannerOptions, register_scanner  # noqa: E402


@register_scanner("traceroute")
def _build_traceroute(options: ScannerOptions) -> TracerouteScanner:
    overrides = {}
    if options.probing_rate is not None:
        # Classic traceroute has no global rate; the closest analogue is
        # the pacing gap between sequential probes.
        overrides["inter_probe_gap"] = 1.0 / options.probing_rate
    if options.seed is not None:
        overrides["seed"] = options.seed
    if options.resilience is not None:
        # Classic traceroute re-probes each silent hop synchronously;
        # there is no cross-trace state worth checkpointing.
        overrides["retries"] = options.resilience.retries
    return TracerouteScanner(telemetry=options.telemetry, **overrides)
