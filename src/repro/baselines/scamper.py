"""Scamper baseline (Luckie, IMC 2010), as configured in the paper.

Scamper is CAIDA's long-running traceroute engine: Paris-UDP probes, the
Doubletree optimization, first-TTL 16, gap limit 5, max TTL 32, at most
10 Kpps, one probe per hop (retries disabled to match FlashRoute/Yarrp).

The paper found (Fig. 7) that Scamper's backward probing does not implement
textbook Doubletree: it "starts removing redundancy one hop later, and then
preserves a certain level of probing redundancy until the TTL reduces to 6",
where it plunges back to full redundancy elimination.  We model that
empirical behaviour directly with two parameters:

* ``stop_lag``: after the first stop-set hit above the window, Scamper
  probes one more hop before terminating;
* ``no_stop_window``: a TTL interval (default (6, 14]) inside which
  stop-set hits do not terminate backward probing at all.

The net effect matches the paper's measurement: ~35 % more probes than
FlashRoute-16 and slightly more interfaces, found on the redundantly probed
middle hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..net.icmp import ResponseKind, distance_from_unreachable
from ..simnet.config import scaled_probing_rate
from ..simnet.engine import VirtualClock
from ..simnet.network import SimulatedNetwork
from ..core.encoding import encode_probe
from ..core.permutation import FeistelPermutation
from ..core.results import ScanResult
from ..core.scanner import warn_direct_construction
from ..core.targets import random_targets


@dataclass
class ScamperConfig:
    """Scamper's trace options as used in the paper (§4.2.1)."""

    first_ttl: int = 16
    max_ttl: int = 32
    gap_limit: int = 5

    #: Scamper caps its probing rate at 10 Kpps; ``None`` scales that cap to
    #: the simulated prefix count.
    probing_rate: Optional[float] = None

    #: Empirical backward-probing quirks (see module docstring / Fig. 7).
    stop_lag: int = 1
    no_stop_window: Tuple[int, int] = (6, 14)

    seed: int = 1

    #: Extra attempts per silent hop (real scamper's ``-q`` is attempts
    #: per hop; the paper runs it with retries disabled to match
    #: FlashRoute/Yarrp, which stays the default).  Each retry re-probes
    #: the same (dst, ttl) synchronously before the trace moves on.
    retries: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.first_ttl <= self.max_ttl <= 32:
            raise ValueError("need 1 <= first_ttl <= max_ttl <= 32")
        if self.gap_limit < 0:
            raise ValueError("gap_limit must be non-negative")
        low, high = self.no_stop_window
        if low > high:
            raise ValueError("no_stop_window must be (low, high) with low <= high")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")

    @classmethod
    def scamper_16(cls, **overrides) -> "ScamperConfig":
        """Scamper-16 (Table 3): first TTL 16, gap 5, max 32."""
        return cls(**overrides)


class Scamper:
    """The Scamper model: per-destination Doubletree at a bounded rate.

    Probing is synchronous per destination (Scamper waits for a response or
    timeout before the next hop of a trace), but the virtual clock charges
    the global rate cap, which is what determines total scan time — at
    10 Kpps the inter-probe gap dwarfs any RTT.
    """

    def __init__(self, config: Optional[ScamperConfig] = None,
                 telemetry=None) -> None:
        warn_direct_construction("Scamper")
        self.config = config if config is not None else ScamperConfig()
        self.telemetry = telemetry
        self._reg = telemetry.registry if telemetry is not None else None
        self._events = telemetry.events if telemetry is not None else None
        self._retries_sent = 0
        self._retries_recovered = 0
        self._retries_exhausted = 0

    def scan(self, network: SimulatedNetwork,
             targets: Optional[Dict[int, int]] = None,
             tool_name: str = "Scamper-16") -> ScanResult:
        config = self.config
        topology = network.topology
        if targets is None:
            targets = random_targets(topology, config.seed)
        rate = (config.probing_rate if config.probing_rate is not None
                else scaled_probing_rate(len(targets), paper_rate=10_000.0))
        send_gap = 1.0 / rate

        clock = VirtualClock()
        result = ScanResult(tool=tool_name, num_targets=len(targets))
        result.targets = dict(targets)
        stop_set: Set[int] = set()

        telemetry = self.telemetry
        tracer = (telemetry.tracer if telemetry is not None
                  and telemetry.tracer.enabled else None)
        progress = telemetry.progress if telemetry is not None else None
        self._reg = telemetry.registry if telemetry is not None else None
        self._events = telemetry.events if telemetry is not None else None
        self._retries_sent = 0
        self._retries_recovered = 0
        self._retries_exhausted = 0
        if tracer is not None:
            tracer.begin("scan", tool_name, clock.now,
                         targets=len(targets), rate_pps=rate)

        order = FeistelPermutation(len(targets), config.seed ^ 0x5CA9)
        prefixes = sorted(targets)
        for position in order:
            prefix = prefixes[position]
            self._trace_one(network, targets[prefix], prefix, clock,
                            send_gap, stop_set, result)
            if progress is not None and progress.due(clock.now):
                progress.report(clock.now, {
                    "tool": tool_name,
                    "probes": result.probes_sent,
                    "responses": result.responses,
                    "pps": (result.probes_sent / clock.now
                            if clock.now > 0 else 0.0),
                    "interfaces": result.interface_count(),
                })
        result.duration = clock.now
        if tracer is not None:
            tracer.end("scan", tool_name, clock.now,
                       probes=result.probes_sent,
                       responses=result.responses,
                       interfaces=result.interface_count())
        if self._reg is not None and self.config.retries:
            self._reg.inc("scan.retries.sent", self._retries_sent)
            self._reg.inc("scan.retries.recovered", self._retries_recovered)
            self._reg.inc("scan.retries.exhausted", self._retries_exhausted)
        if telemetry is not None:
            telemetry.record_result(result)
        return result

    # ------------------------------------------------------------------ #

    def _probe(self, network: SimulatedNetwork, dst: int, ttl: int,
               clock: VirtualClock, send_gap: float,
               result: ScanResult):
        """One hop's probing: a probe plus up to ``retries`` re-sends.

        Scamper waits synchronously per hop, so a silent probe is simply
        re-sent in place (real scamper's ``-q`` attempts) before the trace
        decides the hop is silent.  With the default budget of 0 this is
        exactly one :meth:`_probe_once` call — byte-identical to the
        retry-free engine.
        """
        response = self._probe_once(network, dst, ttl, clock, send_gap,
                                    result)
        if response is not None:
            return response
        events = self._events
        for attempt in range(1, self.config.retries + 1):
            self._retries_sent += 1
            if events is not None:
                events.retry(clock.now, dst >> 8, ttl, attempt, dst)
            response = self._probe_once(network, dst, ttl, clock, send_gap,
                                        result, phase="retry")
            if response is not None:
                self._retries_recovered += 1
                return response
        if self.config.retries:
            self._retries_exhausted += 1
        return None

    def _probe_once(self, network: SimulatedNetwork, dst: int, ttl: int,
                    clock: VirtualClock, send_gap: float,
                    result: ScanResult, phase: str = "trace"):
        """One paced probe with synchronous response (see class docstring).

        Scamper decides every next probe from the previous answer, so the
        batch entry point is used with single-probe bursts: same fast path,
        no reordering of the decision loop.
        """
        send_vt = clock.now
        marking = encode_probe(dst, ttl, send_vt)
        response = network.send_probes(
            [(dst, ttl, send_vt, marking.src_port, marking.ipid,
              marking.udp_length)])[0]
        result.probes_sent += 1
        result.ttl_probe_histogram[ttl] += 1
        events = self._events
        if events is not None:
            events.probe_sent(send_vt, dst >> 8, ttl, dst,
                              marking.src_port, phase)
        clock.advance(send_gap)
        if response is not None:
            result.responses += 1
            result.response_kinds[response.kind.value] += 1
            rtt = (response.arrival_time - send_vt) * 1000.0
            if self._reg is not None:
                self._reg.observe("scan.rtt_ms", rtt)
            if events is not None:
                dist = None
                if response.kind.is_unreachable \
                        and response.responder == dst:
                    dist = distance_from_unreachable(response, ttl)
                events.response(response.arrival_time, dst >> 8, ttl,
                                response.responder, response.kind.value,
                                rtt=rtt, dist=dist)
            dup = response.dup
            if dup is not None:
                # Synchronous receive loop: account the injected duplicate
                # here (there is no response queue to unroll it).
                result.responses += 1
                result.duplicate_responses += 1
                result.response_kinds[dup.kind.value] += 1
                if self._reg is not None:
                    self._reg.observe("scan.rtt_ms",
                                      (dup.arrival_time - send_vt) * 1000.0)
                if events is not None:
                    events.response(dup.arrival_time, dst >> 8, ttl,
                                    dup.responder, dup.kind.value,
                                    rtt=(dup.arrival_time - send_vt)
                                    * 1000.0, dup=True)
        return response

    def _trace_one(self, network: SimulatedNetwork, dst: int, prefix: int,
                   clock: VirtualClock, send_gap: float, stop_set: Set[int],
                   result: ScanResult) -> None:
        config = self.config

        # Forward from the split point toward the target.
        events = self._events
        silent_streak = 0
        reached = False
        ttl = config.first_ttl
        while ttl <= config.max_ttl and silent_streak < config.gap_limit:
            response = self._probe(network, dst, ttl, clock, send_gap, result)
            if response is None:
                silent_streak += 1
            elif response.kind is ResponseKind.TTL_EXCEEDED:
                silent_streak = 0
                result.add_hop(prefix, ttl, response.responder)
                stop_set.add(response.responder)
            elif response.kind.is_unreachable:
                if response.responder == dst:
                    distance = distance_from_unreachable(response, ttl)
                    if distance is not None:
                        result.record_destination(prefix, distance)
                reached = True
                break
            ttl += 1
        if events is not None:
            if reached:
                events.stop_decision(clock.now, prefix, "dest_reached", ttl)
            elif silent_streak >= config.gap_limit:
                events.stop_decision(clock.now, prefix, "gap_limit", ttl - 1)
            else:
                events.stop_decision(clock.now, prefix, "max_ttl",
                                     config.max_ttl)

        # Backward from the split point toward the vantage point, with
        # Scamper's empirically observed redundancy-elimination behaviour.
        low, high = config.no_stop_window
        lag_remaining: Optional[int] = None
        stopped_at: Optional[int] = None
        ttl = config.first_ttl - 1
        while ttl >= 1:
            if lag_remaining is not None:
                if lag_remaining == 0:
                    stopped_at = ttl
                    break
                lag_remaining -= 1
            response = self._probe(network, dst, ttl, clock, send_gap, result)
            if response is not None:
                if response.kind is ResponseKind.TTL_EXCEEDED:
                    hit = response.responder in stop_set
                    result.add_hop(prefix, ttl, response.responder)
                    stop_set.add(response.responder)
                    if hit:
                        if ttl <= low:
                            stopped_at = ttl
                            break
                        if ttl > high and lag_remaining is None:
                            lag_remaining = config.stop_lag
                elif response.kind.is_unreachable:
                    if response.responder == dst:
                        distance = distance_from_unreachable(response, ttl)
                        if distance is not None:
                            result.record_destination(prefix, distance)
            ttl -= 1
        if events is not None and config.first_ttl > 1:
            if stopped_at is not None:
                events.stop_decision(clock.now, prefix, "stop_set",
                                     stopped_at)
            else:
                events.stop_decision(clock.now, prefix, "ttl1", 1)


# --------------------------------------------------------------------- #
# Scanner registry entries (see repro.core.scanner)
# --------------------------------------------------------------------- #

from ..core.scanner import ScannerOptions, register_scanner  # noqa: E402


@register_scanner("scamper-16")
def _build_scamper_16(options: ScannerOptions) -> Scamper:
    overrides = {"probing_rate": options.probing_rate}
    if options.seed is not None:
        overrides["seed"] = options.seed
    if options.gap_limit is not None:
        overrides["gap_limit"] = options.gap_limit
    if options.split_ttl is not None:
        overrides["first_ttl"] = options.split_ttl
    if options.resilience is not None:
        # Scamper's synchronous model has no ring to checkpoint; it
        # honours the retry budget (real scamper's -q attempts).
        overrides["retries"] = options.resilience.retries
    return Scamper(ScamperConfig.scamper_16(**overrides),
                   telemetry=options.telemetry)
