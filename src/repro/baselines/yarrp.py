"""Yarrp baseline (Beverly, IMC 2016; Yarrp6, IMC 2018).

Yarrp is the stateless massive-traceroute tool FlashRoute is compared
against.  Faithfully modeled here:

* **Stateless bulk probing**: a ZMap-style multiplicative-cycle permutation
  over the (destination /24 x TTL) space; every pair gets exactly one probe,
  no feedback, maximal parallelism.
* **Probe types**: Paris-TCP-ACK by default (elapsed time in the TCP
  sequence number); UDP optional — the paper notes real Yarrp's UDP mode
  breaks because it encodes elapsed time into the packet-length field and
  outgrows the MTU, which we reproduce as a refusal when the elapsed time
  no longer fits (§4.2.1, footnote 2).
* **Fill mode** (Yarrp-16): bulk-probes TTLs 1..fill_start, and upon a
  TTL-exceeded response from the farthest probed hop issues one extra probe
  one hop farther, up to max_ttl.  The chain stops at the first silent hop —
  the inherent gap limit of 1 the paper blames for Yarrp-16's poor
  interface discovery.
* **Neighborhood protection**: stop probing TTLs <= radius once no new
  interface has been discovered there for 30 seconds (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.icmp import IcmpResponse, ResponseKind, distance_from_unreachable
from ..net.packets import PROTO_TCP, PROTO_UDP, UDP_HEADER_LEN
from ..simnet.config import scaled_probing_rate
from ..simnet.engine import ResponseQueue, VirtualClock
from ..simnet.network import SimulatedNetwork
from ..core.encoding import decode_response, encode_probe, rtt_ms
from ..core.output import result_from_dict, result_to_dict
from ..core.permutation import MultiplicativeCycle
from ..core.resilience import (AdaptiveRateController, CheckpointError,
                               ScanInterrupted, response_from_dict,
                               response_to_dict, write_checkpoint)
from ..core.results import ScanResult
from ..core.scanner import warn_direct_construction
from ..core.targets import random_targets

_SETTLE_SECONDS = 1.0

#: Probes emitted per ``send_probes`` burst in the stateless bulk phase.
_BULK_CHUNK = 64

#: Real Yarrp UDP encodes elapsed milliseconds in the packet length; the
#: system rejects datagrams beyond this size ("Message too long").
_MAX_UDP_LENGTH = 1472


class YarrpUdpEncodingError(RuntimeError):
    """Raised when Yarrp's UDP timestamp encoding outgrows the MTU,
    reproducing the failure reported in the paper's footnote 2."""


@dataclass
class YarrpConfig:
    """Configuration mirroring Yarrp's command line."""

    #: Highest TTL probed in the bulk phase.
    max_ttl: int = 32

    #: If set, bulk probing stops at this TTL and fill mode sequentially
    #: extends routes up to ``fill_limit`` (Yarrp-16: fill_start=16).
    fill_start: Optional[int] = None
    fill_limit: int = 32

    probe_type: str = "tcp_ack"  # or "udp"

    #: Neighborhood protection radius in hops (0 disables).
    neighborhood_radius: int = 0
    neighborhood_timeout: float = 30.0

    probing_rate: Optional[float] = None
    seed: int = 1

    #: Optional :class:`repro.core.resilience.ResilienceConfig`.  Yarrp
    #: honours the full config: unanswered (dst, ttl) pairs are re-probed
    #: in post-bulk retry passes, the adaptive controller re-paces the
    #: bulk stream, and the permutation cursor makes the scan
    #: checkpoint/resumable.  ``None`` keeps the scan byte-identical to
    #: seed behaviour.
    resilience: Optional[object] = None

    def __post_init__(self) -> None:
        if not 1 <= self.max_ttl <= 32:
            raise ValueError("max_ttl must be in [1, 32]")
        if self.fill_start is not None and not 1 <= self.fill_start <= self.max_ttl:
            raise ValueError("fill_start must be in [1, max_ttl]")
        if self.probe_type not in ("tcp_ack", "udp"):
            raise ValueError(f"unknown probe type {self.probe_type!r}")
        if self.neighborhood_radius < 0:
            raise ValueError("neighborhood_radius must be non-negative")

    @classmethod
    def yarrp_32(cls, **overrides) -> "YarrpConfig":
        """Yarrp-32: exhaustive TTL 1..32, Paris-TCP-ACK (Table 3)."""
        return cls(max_ttl=32, **overrides)

    @classmethod
    def yarrp_16(cls, **overrides) -> "YarrpConfig":
        """Yarrp-16: bulk to TTL 16 plus fill mode to 32 (Table 3)."""
        return cls(max_ttl=32, fill_start=16, **overrides)

    @property
    def bulk_ttl(self) -> int:
        return self.fill_start if self.fill_start is not None else self.max_ttl

    @property
    def label(self) -> str:
        base = f"Yarrp-{self.bulk_ttl}"
        if self.neighborhood_radius:
            base += f" {self.neighborhood_radius}-hop protection"
        if self.probe_type == "udp":
            base += " UDP"
        return base


class Yarrp:
    """The Yarrp scanner."""

    def __init__(self, config: Optional[YarrpConfig] = None,
                 telemetry=None) -> None:
        warn_direct_construction("Yarrp")
        self.config = config if config is not None else YarrpConfig.yarrp_32()
        #: Optional :class:`repro.obs.Telemetry`; ``None`` keeps the
        #: stateless bulk loop on its zero-overhead path.
        self.telemetry = telemetry

    def scan(self, network: SimulatedNetwork,
             targets: Optional[Dict[int, int]] = None,
             tool_name: Optional[str] = None) -> ScanResult:
        run = _YarrpRun(self.config, network, targets, tool_name,
                        telemetry=self.telemetry)
        return run.execute()

    def resume(self, network: SimulatedNetwork, state: dict) -> ScanResult:
        """Continue a checkpointed scan (see ``docs/robustness.md``).

        ``state`` is the ``"state"`` payload of a checkpoint written by
        this engine; the same config and an equivalent network must be
        supplied.  The resumed scan finishes with a :class:`ScanResult`
        byte-identical to an uninterrupted run (pinned by tests).
        """
        if state.get("engine") != "yarrp":
            raise CheckpointError(
                f"checkpoint engine {state.get('engine')!r} is not yarrp")
        partial = result_from_dict(state["result"])
        run = _YarrpRun(self.config, network, dict(partial.targets),
                        partial.tool, telemetry=self.telemetry)
        run.restore_state(state)
        return run.execute()


class _YarrpRun:
    def __init__(self, config: YarrpConfig, network: SimulatedNetwork,
                 targets: Optional[Dict[int, int]],
                 tool_name: Optional[str],
                 telemetry=None) -> None:
        self.config = config
        self.network = network
        self.telemetry = telemetry
        self._reg = telemetry.registry if telemetry is not None else None
        self._tracer = (telemetry.tracer if telemetry is not None
                        and telemetry.tracer.enabled else None)
        self._progress = (telemetry.progress if telemetry is not None
                          else None)
        self._events = telemetry.events if telemetry is not None else None
        topology = network.topology
        self.base_prefix = topology.base_prefix
        self.num_prefixes = topology.num_prefixes
        if targets is None:
            targets = random_targets(topology, config.seed)
        self.targets = targets
        self.offsets = sorted(prefix - self.base_prefix for prefix in targets)
        self.rate = (config.probing_rate if config.probing_rate is not None
                     else scaled_probing_rate(self.num_prefixes))
        self.send_gap = 1.0 / self.rate
        self.clock = VirtualClock()
        self.queue = ResponseQueue()
        self.result = ScanResult(
            tool=tool_name if tool_name is not None else config.label,
            num_targets=len(targets))
        self.result.targets = dict(targets)
        self.proto = PROTO_TCP if config.probe_type == "tcp_ack" else PROTO_UDP
        #: Fill-mode probes waiting to be sent (dst, ttl).
        self.fill_backlog: List[Tuple[int, int]] = []
        #: Neighborhood protection state: per protected TTL, the virtual
        #: time a new interface was last discovered there.
        self.last_new_iface_at: Dict[int, float] = {
            ttl: 0.0 for ttl in range(1, config.neighborhood_radius + 1)}
        self.skipped_by_protection = 0
        self._seen_ifaces: set = set()
        # ---- resilience (see repro.core.resilience) ----
        resil = config.resilience
        self._resil = resil
        budget = resil.retries if resil is not None else 0
        self._retry_budget = budget
        #: (dst, ttl) pairs probed / answered — only tracked when a retry
        #: budget exists, so the default path carries no per-probe cost.
        self._sent: Optional[set] = set() if budget > 0 else None
        self._answered: Optional[set] = set() if budget > 0 else None
        self._retried: set = set()
        self._retries_sent = 0
        self._controller = (AdaptiveRateController(self.rate, resil)
                            if resil is not None and resil.adaptive_rate
                            else None)
        self._ctrl_last = 0.0
        self._ctrl_probes = 0
        self._ctrl_responses = 0
        self._ctrl_drops = 0
        #: Multiplicative-cycle group steps consumed by the bulk phase —
        #: the resumable checkpoint cursor (see MultiplicativeCycle
        #: .iter_steps).
        self._steps_done = 0
        self._boundaries = 0
        self._ckpt_state: Optional[dict] = None
        self._since_ckpt = 0
        self._checkpoints_written = 0

    # ------------------------------------------------------------------ #

    def _udp_length_for(self, send_time: float) -> int:
        """Real Yarrp's UDP mode: elapsed ms goes into the packet length."""
        length = UDP_HEADER_LEN + int(send_time * 1000.0)
        if length > _MAX_UDP_LENGTH:
            raise YarrpUdpEncodingError(
                "Network API error: Message too long (Yarrp UDP encodes the "
                "elapsed time into the packet length field; see paper "
                "footnote 2)")
        return length

    def _protected(self, ttl: int) -> bool:
        config = self.config
        if ttl > config.neighborhood_radius:
            return False
        last_new = self.last_new_iface_at.get(ttl, 0.0)
        return (self.clock.now - last_new) > config.neighborhood_timeout

    def _send(self, dst: int, ttl: int, phase: str = "bulk") -> None:
        self._send_chunk([(dst, ttl)], phase=phase)

    def _send_chunk(self, items: List[Tuple[int, int]],
                    phase: str = "bulk", attempt: int = 0) -> None:
        """Emit ``(dst, ttl)`` probes back-to-back through ``send_probes``.

        Pacing, encodings and the UDP length-field failure are identical to
        sending one by one; the ``finally`` flushes probes already built
        when the UDP encoding outgrows the MTU mid-chunk, so the partial
        burst reaches the network exactly as the scalar path would have.
        """
        clock = self.clock
        gap = self.send_gap
        proto = self.proto
        udp = proto == PROTO_UDP
        histogram = self.result.ttl_probe_histogram
        events = self._events
        sent = self._sent
        probes: List[Tuple[int, int, float, int, int, int]] = []
        try:
            for dst, ttl in items:
                now = clock.now
                marking = encode_probe(dst, ttl, now)
                if udp:
                    udp_length = self._udp_length_for(now)
                else:
                    udp_length = marking.udp_length
                probes.append((dst, ttl, now, marking.src_port, marking.ipid,
                               udp_length))
                if sent is not None:
                    sent.add((dst, ttl))
                if events is not None:
                    events.probe_sent(now, dst >> 8, ttl, dst,
                                      marking.src_port, phase)
                    if attempt:
                        events.retry(now, dst >> 8, ttl, attempt, dst)
                histogram[ttl] += 1
                clock.advance(gap)
        finally:
            self.result.probes_sent += len(probes)
            self.queue.push_many(self.network.send_probes(probes, proto=proto))

    def _drain(self, until: float) -> None:
        for response in self.queue.pop_until(until):
            self._process(response)

    def _process(self, response: IcmpResponse) -> None:
        decoded = decode_response(response)
        offset = (decoded.dst >> 8) - self.base_prefix
        if not 0 <= offset < self.num_prefixes:
            return
        if self._answered is not None:
            self._answered.add((decoded.dst, decoded.initial_ttl))
        self.result.responses += 1
        if response.is_duplicate:
            self.result.duplicate_responses += 1
        self.result.response_kinds[response.kind.value] += 1
        rtt = rtt_ms(decoded, response.arrival_time)
        if self.proto == PROTO_UDP:
            # Real Yarrp TCP mode times via the external recorder, so
            # the result's RTT ledger stays UDP-only; the simulator's
            # quotations make the RTT computable either way, so the
            # histogram and events record it for both probe types.
            self.result.add_rtt(rtt)
        if self._reg is not None:
            self._reg.observe("scan.rtt_ms", rtt)
        prefix = self.base_prefix + offset
        if self._events is not None:
            dist = None
            if response.kind.is_unreachable \
                    and response.responder == decoded.dst:
                dist = distance_from_unreachable(response,
                                                 decoded.initial_ttl)
            self._events.response(
                response.arrival_time, prefix, decoded.initial_ttl,
                response.responder, response.kind.value, rtt=rtt,
                dist=dist, dup=response.is_duplicate)
        config = self.config

        if response.kind is ResponseKind.TTL_EXCEEDED:
            ttl = decoded.initial_ttl
            known = self.result.routes.get(prefix)
            is_new_iface = response.responder not in self._seen_ifaces
            self.result.add_hop(prefix, ttl, response.responder)
            if is_new_iface:
                self._seen_ifaces.add(response.responder)
                if ttl in self.last_new_iface_at:
                    self.last_new_iface_at[ttl] = response.arrival_time
            if (config.fill_start is not None
                    and ttl >= config.fill_start
                    and ttl < config.fill_limit
                    and (known is None or all(t <= ttl for t in known))):
                # Fill mode: extend the route one hop past the farthest
                # responding hop (inherent gap limit of 1).
                self.fill_backlog.append((decoded.dst, ttl + 1))
            return

        if response.kind.is_unreachable:
            if response.responder == decoded.dst:
                distance = distance_from_unreachable(response,
                                                     decoded.initial_ttl)
                if distance is not None:
                    self.result.record_destination(prefix, distance)

    def _report_progress(self) -> None:
        progress = self._progress
        if progress is None or not progress.due(self.clock.now):
            return
        now = self.clock.now
        result = self.result
        progress.report(now, {
            "tool": result.tool,
            "probes": result.probes_sent,
            "responses": result.responses,
            "pps": result.probes_sent / now if now > 0 else 0.0,
            "interfaces": result.interface_count(),
        })

    def _finalize(self) -> ScanResult:
        self.result.duration = self.clock.now
        self.result.skipped_probes = self.skipped_by_protection
        if self._tracer is not None:
            self._tracer.end("scan", self.result.tool, self.clock.now,
                             probes=self.result.probes_sent,
                             responses=self.result.responses,
                             interfaces=self.result.interface_count())
        self._fold_resilience_metrics()
        if self.telemetry is not None:
            self.telemetry.record_result(self.result)
        return self.result

    def _fold_resilience_metrics(self) -> None:
        reg = self._reg
        if reg is None:
            return
        if self._sent is not None:
            reg.inc("scan.retries.sent", self._retries_sent)
            reg.inc("scan.retries.recovered",
                    len(self._retried & self._answered))
            reg.inc("scan.retries.exhausted",
                    len(self._retried - self._answered))
        if self._controller is not None:
            reg.inc("scan.adaptive.backoffs", self._controller.backoffs)
            reg.inc("scan.adaptive.recoveries", self._controller.recoveries)
        if self._checkpoints_written:
            reg.inc("scan.checkpoints.written", self._checkpoints_written)

    # ------------------------------------------------------------------ #
    # Resilience: rate control, retry passes, checkpoint/resume
    # ------------------------------------------------------------------ #

    def _boundary(self) -> None:
        """One chunk boundary: the scan's analogue of FlashRoute's round
        boundary — rate-control observation window, checkpoint capture
        point, and interrupt hook site."""
        self._observe_rate()
        resil = self._resil
        if resil is None:
            return
        self._boundaries += 1
        if resil.checkpoint_path is not None:
            self._ckpt_state = self._capture_state()
            self._since_ckpt += 1
            if resil.checkpoint_every \
                    and self._since_ckpt >= resil.checkpoint_every:
                self._write_checkpoint()
                self._since_ckpt = 0
        if resil.round_hook is not None:
            resil.round_hook(self._boundaries)

    def _observe_rate(self) -> None:
        """Feed the adaptive controller one observation window.

        Yarrp has no rounds, so windows close at the first chunk boundary
        at least one virtual second after the previous window — long
        enough that in-flight responses (RTT ≪ 1 s) cannot masquerade as
        loss."""
        controller = self._controller
        if controller is None:
            return
        now = self.clock.now
        if now - self._ctrl_last < 1.0:
            return
        probes = self.result.probes_sent
        responses = self.result.responses
        drops = getattr(self.network, "drop_count", 0)
        decision = controller.observe_round(
            probes - self._ctrl_probes,
            responses - self._ctrl_responses,
            drops - self._ctrl_drops)
        self._ctrl_last = now
        self._ctrl_probes = probes
        self._ctrl_responses = responses
        self._ctrl_drops = drops
        if decision is not None:
            reason, new_rate = decision
            self.rate = new_rate
            self.send_gap = 1.0 / new_rate
            if self._events is not None:
                self._events.rate_change(now, new_rate, reason)

    def _run_retry_passes(self) -> None:
        """Re-probe unanswered (dst, ttl) pairs, up to the retry budget.

        Each pass re-sends every still-unanswered pair in sorted order
        (deterministic), settles, and flushes any fill chains the
        recovered hops opened.  Pairs answered after a retry count as
        recovered; pairs silent through every pass as exhausted."""
        if self._retry_budget == 0 or self._sent is None:
            return
        unanswered = sorted(self._sent - self._answered)
        if not unanswered:
            return
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("phase", "retry", self.clock.now)
        for attempt in range(1, self._retry_budget + 1):
            if not unanswered:
                break
            self._retried.update(unanswered)
            self._retries_sent += len(unanswered)
            for start in range(0, len(unanswered), _BULK_CHUNK):
                self._send_chunk(unanswered[start:start + _BULK_CHUNK],
                                 phase="retry", attempt=attempt)
                self._drain(self.clock.now)
            self.clock.advance(_SETTLE_SECONDS)
            self._drain(self.clock.now)
            while self.fill_backlog:
                while self.fill_backlog:
                    fill_dst, fill_ttl = self.fill_backlog.pop()
                    self._send(fill_dst, fill_ttl, phase="fill")
                self.clock.advance(_SETTLE_SECONDS)
                self._drain(self.clock.now)
            unanswered = sorted(self._sent - self._answered)
        if tracer is not None:
            tracer.end("phase", "retry", self.clock.now,
                       retries=self._retries_sent,
                       exhausted=len(unanswered))

    def _capture_state(self) -> dict:
        """Snapshot the bulk-phase scan state at a chunk boundary.

        Read-only — capturing never perturbs the scan.  The permutation
        itself is not stored: it is reconstructed from the seed, and
        ``steps_done`` is the resumable cursor into it."""
        now = self.clock.now
        state = {
            "engine": "yarrp",
            "bulk_ttl": self.config.bulk_ttl,
            "clock": now,
            "rate": self.rate,
            "steps_done": self._steps_done,
            "boundaries": self._boundaries,
            "result": result_to_dict(self.result),
            "queue": [response_to_dict(r) for r in self.queue.snapshot()],
            "sent": (sorted(self._sent)
                     if self._sent is not None else None),
            "answered": (sorted(self._answered)
                         if self._answered is not None else None),
            "fill_backlog": list(self.fill_backlog),
            "last_new_iface_at": sorted(self.last_new_iface_at.items()),
            "seen_ifaces": sorted(self._seen_ifaces),
            "skipped": self.skipped_by_protection,
            "adaptive": (self._controller.state_dict()
                         if self._controller is not None else None),
            "network": None,
        }
        export = getattr(self.network, "export_dynamic_state", None)
        if export is not None:
            state["network"] = export(now)
        return state

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`_capture_state` snapshot (resume path)."""
        if state.get("engine") != "yarrp":
            raise CheckpointError(
                f"checkpoint engine {state.get('engine')!r} is not yarrp")
        if state["bulk_ttl"] != self.config.bulk_ttl:
            raise CheckpointError(
                f"checkpoint bulk TTL {state['bulk_ttl']} does not match "
                f"this scan's {self.config.bulk_ttl}")
        self.clock.now = state["clock"]
        self.rate = state["rate"]
        self.send_gap = 1.0 / self.rate
        self.result = result_from_dict(state["result"])
        self._steps_done = state["steps_done"]
        self._boundaries = state["boundaries"]
        self.queue.load(response_from_dict(entry)
                        for entry in state["queue"])
        if state.get("sent") is not None and self._sent is not None:
            self._sent.update(tuple(pair) for pair in state["sent"])
        if state.get("answered") is not None and self._answered is not None:
            self._answered.update(tuple(pair)
                                  for pair in state["answered"])
        self.fill_backlog = [(dst, ttl)
                             for dst, ttl in state["fill_backlog"]]
        self.last_new_iface_at = {int(ttl): when for ttl, when
                                  in state["last_new_iface_at"]}
        self._seen_ifaces = set(state["seen_ifaces"])
        self.skipped_by_protection = state["skipped"]
        if state.get("adaptive") is not None \
                and self._controller is not None:
            self._controller.restore_state(state["adaptive"])
        if state.get("network") is not None:
            restore = getattr(self.network, "restore_dynamic_state", None)
            if restore is not None:
                restore(state["network"])

    def _write_checkpoint(self) -> str:
        resil = self._resil
        path = write_checkpoint(resil.checkpoint_path, "yarrp",
                                self._ckpt_state, resil.checkpoint_meta)
        self._checkpoints_written += 1
        if self._events is not None:
            self._events.checkpoint(self.clock.now,
                                    self._ckpt_state["boundaries"])
        return path

    def _interrupt_checkpoint(self) -> Optional[str]:
        resil = self._resil
        if resil is None or resil.checkpoint_path is None \
                or self._ckpt_state is None:
            return None
        return self._write_checkpoint()

    # ------------------------------------------------------------------ #

    def execute(self) -> ScanResult:
        config = self.config
        domain = len(self.offsets) * config.bulk_ttl
        cycle = MultiplicativeCycle(domain, config.seed ^ 0x59A44)
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("scan", self.result.tool, self.clock.now,
                         targets=self.result.num_targets, rate_pps=self.rate)
        try:
            if config.fill_start is None \
                    and config.neighborhood_radius == 0:
                self._run_bulk_stateless(cycle)
            else:
                self._run_bulk_stateful(cycle)
        except KeyboardInterrupt:
            path = self._interrupt_checkpoint()
            if path is not None:
                raise ScanInterrupted(path, self._boundaries) from None
            raise
        self._run_retry_passes()
        return self._finalize()

    def _run_bulk_stateful(self, cycle: MultiplicativeCycle) -> None:
        """Bulk probing with fill mode and/or neighborhood protection."""
        config = self.config
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("phase", "bulk+fill", self.clock.now)
        processed = 0
        for step, value in cycle.iter_steps(self._steps_done):
            self._drain(self.clock.now)
            while self.fill_backlog:
                fill_dst, fill_ttl = self.fill_backlog.pop()
                self._send(fill_dst, fill_ttl, phase="fill")
                self._drain(self.clock.now)
            index, ttl_index = divmod(value, config.bulk_ttl)
            ttl = ttl_index + 1
            if self._protected(ttl):
                self.skipped_by_protection += 1
            else:
                dst = self.targets[self.base_prefix + self.offsets[index]]
                self._send(dst, ttl)
                self._report_progress()
            self._steps_done = step + 1
            processed += 1
            if processed % _BULK_CHUNK == 0:
                self._boundary()
        # Let the tail of fill chains complete.
        while True:
            self.clock.advance(_SETTLE_SECONDS)
            self._drain(self.clock.now)
            if not self.fill_backlog:
                break
            while self.fill_backlog:
                fill_dst, fill_ttl = self.fill_backlog.pop()
                self._send(fill_dst, fill_ttl, phase="fill")
        if tracer is not None:
            tracer.end("phase", "bulk+fill", self.clock.now,
                       probes=self.result.probes_sent,
                       skipped=self.skipped_by_protection)

    def _run_bulk_stateless(self, cycle: MultiplicativeCycle) -> None:
        """The bulk phase with no fill mode and no neighborhood protection.

        Nothing a response does in this configuration feeds back into what
        gets sent (processing only records hops/counters), so probes can be
        emitted in chunks with one drain per chunk — same send times, same
        responses, same :class:`ScanResult`, far less per-probe overhead.
        """
        config = self.config
        bulk_ttl = config.bulk_ttl
        targets = self.targets
        base_prefix = self.base_prefix
        offsets = self.offsets
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("phase", "bulk", self.clock.now)
        chunk: List[Tuple[int, int]] = []
        for step, value in cycle.iter_steps(self._steps_done):
            index, ttl_index = divmod(value, bulk_ttl)
            chunk.append((targets[base_prefix + offsets[index]],
                          ttl_index + 1))
            if len(chunk) >= _BULK_CHUNK:
                self._send_chunk(chunk)
                self._drain(self.clock.now)
                chunk.clear()
                self._report_progress()
                self._steps_done = step + 1
                self._boundary()
        if chunk:
            self._send_chunk(chunk)
        self.clock.advance(_SETTLE_SECONDS)
        self._drain(self.clock.now)
        if tracer is not None:
            tracer.end("phase", "bulk", self.clock.now,
                       probes=self.result.probes_sent)


# --------------------------------------------------------------------- #
# Scanner registry entries (see repro.core.scanner)
# --------------------------------------------------------------------- #

from ..core.scanner import ScannerOptions, register_scanner  # noqa: E402


def _yarrp_factory(variant):
    def build(options: ScannerOptions) -> Yarrp:
        overrides = {"probing_rate": options.probing_rate}
        if options.seed is not None:
            overrides["seed"] = options.seed
        if options.resilience is not None:
            overrides["resilience"] = options.resilience
        return Yarrp(variant(**overrides), telemetry=options.telemetry)
    return build


register_scanner("yarrp-16", _yarrp_factory(YarrpConfig.yarrp_16))
register_scanner("yarrp-32", _yarrp_factory(YarrpConfig.yarrp_32))
