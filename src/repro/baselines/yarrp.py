"""Yarrp baseline (Beverly, IMC 2016; Yarrp6, IMC 2018).

Yarrp is the stateless massive-traceroute tool FlashRoute is compared
against.  Faithfully modeled here:

* **Stateless bulk probing**: a ZMap-style multiplicative-cycle permutation
  over the (destination /24 x TTL) space; every pair gets exactly one probe,
  no feedback, maximal parallelism.
* **Probe types**: Paris-TCP-ACK by default (elapsed time in the TCP
  sequence number); UDP optional — the paper notes real Yarrp's UDP mode
  breaks because it encodes elapsed time into the packet-length field and
  outgrows the MTU, which we reproduce as a refusal when the elapsed time
  no longer fits (§4.2.1, footnote 2).
* **Fill mode** (Yarrp-16): bulk-probes TTLs 1..fill_start, and upon a
  TTL-exceeded response from the farthest probed hop issues one extra probe
  one hop farther, up to max_ttl.  The chain stops at the first silent hop —
  the inherent gap limit of 1 the paper blames for Yarrp-16's poor
  interface discovery.
* **Neighborhood protection**: stop probing TTLs <= radius once no new
  interface has been discovered there for 30 seconds (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.icmp import IcmpResponse, ResponseKind, distance_from_unreachable
from ..net.packets import PROTO_TCP, PROTO_UDP, UDP_HEADER_LEN
from ..simnet.config import scaled_probing_rate
from ..simnet.engine import ResponseQueue, VirtualClock
from ..simnet.network import SimulatedNetwork
from ..core.encoding import decode_response, encode_probe, rtt_ms
from ..core.permutation import MultiplicativeCycle
from ..core.results import ScanResult
from ..core.targets import random_targets

_SETTLE_SECONDS = 1.0

#: Probes emitted per ``send_probes`` burst in the stateless bulk phase.
_BULK_CHUNK = 64

#: Real Yarrp UDP encodes elapsed milliseconds in the packet length; the
#: system rejects datagrams beyond this size ("Message too long").
_MAX_UDP_LENGTH = 1472


class YarrpUdpEncodingError(RuntimeError):
    """Raised when Yarrp's UDP timestamp encoding outgrows the MTU,
    reproducing the failure reported in the paper's footnote 2."""


@dataclass
class YarrpConfig:
    """Configuration mirroring Yarrp's command line."""

    #: Highest TTL probed in the bulk phase.
    max_ttl: int = 32

    #: If set, bulk probing stops at this TTL and fill mode sequentially
    #: extends routes up to ``fill_limit`` (Yarrp-16: fill_start=16).
    fill_start: Optional[int] = None
    fill_limit: int = 32

    probe_type: str = "tcp_ack"  # or "udp"

    #: Neighborhood protection radius in hops (0 disables).
    neighborhood_radius: int = 0
    neighborhood_timeout: float = 30.0

    probing_rate: Optional[float] = None
    seed: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.max_ttl <= 32:
            raise ValueError("max_ttl must be in [1, 32]")
        if self.fill_start is not None and not 1 <= self.fill_start <= self.max_ttl:
            raise ValueError("fill_start must be in [1, max_ttl]")
        if self.probe_type not in ("tcp_ack", "udp"):
            raise ValueError(f"unknown probe type {self.probe_type!r}")
        if self.neighborhood_radius < 0:
            raise ValueError("neighborhood_radius must be non-negative")

    @classmethod
    def yarrp_32(cls, **overrides) -> "YarrpConfig":
        """Yarrp-32: exhaustive TTL 1..32, Paris-TCP-ACK (Table 3)."""
        return cls(max_ttl=32, **overrides)

    @classmethod
    def yarrp_16(cls, **overrides) -> "YarrpConfig":
        """Yarrp-16: bulk to TTL 16 plus fill mode to 32 (Table 3)."""
        return cls(max_ttl=32, fill_start=16, **overrides)

    @property
    def bulk_ttl(self) -> int:
        return self.fill_start if self.fill_start is not None else self.max_ttl

    @property
    def label(self) -> str:
        base = f"Yarrp-{self.bulk_ttl}"
        if self.neighborhood_radius:
            base += f" {self.neighborhood_radius}-hop protection"
        if self.probe_type == "udp":
            base += " UDP"
        return base


class Yarrp:
    """The Yarrp scanner."""

    def __init__(self, config: Optional[YarrpConfig] = None,
                 telemetry=None) -> None:
        self.config = config if config is not None else YarrpConfig.yarrp_32()
        #: Optional :class:`repro.obs.Telemetry`; ``None`` keeps the
        #: stateless bulk loop on its zero-overhead path.
        self.telemetry = telemetry

    def scan(self, network: SimulatedNetwork,
             targets: Optional[Dict[int, int]] = None,
             tool_name: Optional[str] = None) -> ScanResult:
        run = _YarrpRun(self.config, network, targets, tool_name,
                        telemetry=self.telemetry)
        return run.execute()


class _YarrpRun:
    def __init__(self, config: YarrpConfig, network: SimulatedNetwork,
                 targets: Optional[Dict[int, int]],
                 tool_name: Optional[str],
                 telemetry=None) -> None:
        self.config = config
        self.network = network
        self.telemetry = telemetry
        self._reg = telemetry.registry if telemetry is not None else None
        self._tracer = (telemetry.tracer if telemetry is not None
                        and telemetry.tracer.enabled else None)
        self._progress = (telemetry.progress if telemetry is not None
                          else None)
        self._events = telemetry.events if telemetry is not None else None
        topology = network.topology
        self.base_prefix = topology.base_prefix
        self.num_prefixes = topology.num_prefixes
        if targets is None:
            targets = random_targets(topology, config.seed)
        self.targets = targets
        self.offsets = sorted(prefix - self.base_prefix for prefix in targets)
        self.rate = (config.probing_rate if config.probing_rate is not None
                     else scaled_probing_rate(self.num_prefixes))
        self.send_gap = 1.0 / self.rate
        self.clock = VirtualClock()
        self.queue = ResponseQueue()
        self.result = ScanResult(
            tool=tool_name if tool_name is not None else config.label,
            num_targets=len(targets))
        self.result.targets = dict(targets)
        self.proto = PROTO_TCP if config.probe_type == "tcp_ack" else PROTO_UDP
        #: Fill-mode probes waiting to be sent (dst, ttl).
        self.fill_backlog: List[Tuple[int, int]] = []
        #: Neighborhood protection state: per protected TTL, the virtual
        #: time a new interface was last discovered there.
        self.last_new_iface_at: Dict[int, float] = {
            ttl: 0.0 for ttl in range(1, config.neighborhood_radius + 1)}
        self.skipped_by_protection = 0
        self._seen_ifaces: set = set()

    # ------------------------------------------------------------------ #

    def _udp_length_for(self, send_time: float) -> int:
        """Real Yarrp's UDP mode: elapsed ms goes into the packet length."""
        length = UDP_HEADER_LEN + int(send_time * 1000.0)
        if length > _MAX_UDP_LENGTH:
            raise YarrpUdpEncodingError(
                "Network API error: Message too long (Yarrp UDP encodes the "
                "elapsed time into the packet length field; see paper "
                "footnote 2)")
        return length

    def _protected(self, ttl: int) -> bool:
        config = self.config
        if ttl > config.neighborhood_radius:
            return False
        last_new = self.last_new_iface_at.get(ttl, 0.0)
        return (self.clock.now - last_new) > config.neighborhood_timeout

    def _send(self, dst: int, ttl: int, phase: str = "bulk") -> None:
        self._send_chunk([(dst, ttl)], phase=phase)

    def _send_chunk(self, items: List[Tuple[int, int]],
                    phase: str = "bulk") -> None:
        """Emit ``(dst, ttl)`` probes back-to-back through ``send_probes``.

        Pacing, encodings and the UDP length-field failure are identical to
        sending one by one; the ``finally`` flushes probes already built
        when the UDP encoding outgrows the MTU mid-chunk, so the partial
        burst reaches the network exactly as the scalar path would have.
        """
        clock = self.clock
        gap = self.send_gap
        proto = self.proto
        udp = proto == PROTO_UDP
        histogram = self.result.ttl_probe_histogram
        events = self._events
        probes: List[Tuple[int, int, float, int, int, int]] = []
        try:
            for dst, ttl in items:
                now = clock.now
                marking = encode_probe(dst, ttl, now)
                if udp:
                    udp_length = self._udp_length_for(now)
                else:
                    udp_length = marking.udp_length
                probes.append((dst, ttl, now, marking.src_port, marking.ipid,
                               udp_length))
                if events is not None:
                    events.probe_sent(now, dst >> 8, ttl, dst,
                                      marking.src_port, phase)
                histogram[ttl] += 1
                clock.advance(gap)
        finally:
            self.result.probes_sent += len(probes)
            self.queue.push_many(self.network.send_probes(probes, proto=proto))

    def _drain(self, until: float) -> None:
        for response in self.queue.pop_until(until):
            self._process(response)

    def _process(self, response: IcmpResponse) -> None:
        decoded = decode_response(response)
        offset = (decoded.dst >> 8) - self.base_prefix
        if not 0 <= offset < self.num_prefixes:
            return
        self.result.responses += 1
        if response.is_duplicate:
            self.result.duplicate_responses += 1
        self.result.response_kinds[response.kind.value] += 1
        rtt = rtt_ms(decoded, response.arrival_time)
        if self.proto == PROTO_UDP:
            # Real Yarrp TCP mode times via the external recorder, so
            # the result's RTT ledger stays UDP-only; the simulator's
            # quotations make the RTT computable either way, so the
            # histogram and events record it for both probe types.
            self.result.add_rtt(rtt)
        if self._reg is not None:
            self._reg.observe("scan.rtt_ms", rtt)
        prefix = self.base_prefix + offset
        if self._events is not None:
            dist = None
            if response.kind.is_unreachable \
                    and response.responder == decoded.dst:
                dist = distance_from_unreachable(response,
                                                 decoded.initial_ttl)
            self._events.response(
                response.arrival_time, prefix, decoded.initial_ttl,
                response.responder, response.kind.value, rtt=rtt,
                dist=dist, dup=response.is_duplicate)
        config = self.config

        if response.kind is ResponseKind.TTL_EXCEEDED:
            ttl = decoded.initial_ttl
            known = self.result.routes.get(prefix)
            is_new_iface = response.responder not in self._seen_ifaces
            self.result.add_hop(prefix, ttl, response.responder)
            if is_new_iface:
                self._seen_ifaces.add(response.responder)
                if ttl in self.last_new_iface_at:
                    self.last_new_iface_at[ttl] = response.arrival_time
            if (config.fill_start is not None
                    and ttl >= config.fill_start
                    and ttl < config.fill_limit
                    and (known is None or all(t <= ttl for t in known))):
                # Fill mode: extend the route one hop past the farthest
                # responding hop (inherent gap limit of 1).
                self.fill_backlog.append((decoded.dst, ttl + 1))
            return

        if response.kind.is_unreachable:
            if response.responder == decoded.dst:
                distance = distance_from_unreachable(response,
                                                     decoded.initial_ttl)
                if distance is not None:
                    self.result.record_destination(prefix, distance)

    def _report_progress(self) -> None:
        progress = self._progress
        if progress is None or not progress.due(self.clock.now):
            return
        now = self.clock.now
        result = self.result
        progress.report(now, {
            "tool": result.tool,
            "probes": result.probes_sent,
            "pps": result.probes_sent / now if now > 0 else 0.0,
            "interfaces": result.interface_count(),
        })

    def _finalize(self) -> ScanResult:
        self.result.duration = self.clock.now
        self.result.skipped_probes = self.skipped_by_protection
        if self._tracer is not None:
            self._tracer.end("scan", self.result.tool, self.clock.now,
                             probes=self.result.probes_sent,
                             responses=self.result.responses,
                             interfaces=self.result.interface_count())
        if self.telemetry is not None:
            self.telemetry.record_result(self.result)
        return self.result

    # ------------------------------------------------------------------ #

    def execute(self) -> ScanResult:
        config = self.config
        domain = len(self.offsets) * config.bulk_ttl
        cycle = MultiplicativeCycle(domain, config.seed ^ 0x59A44)
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("scan", self.result.tool, self.clock.now,
                         targets=self.result.num_targets, rate_pps=self.rate)
        if config.fill_start is None and config.neighborhood_radius == 0:
            return self._execute_stateless(cycle)
        if tracer is not None:
            tracer.begin("phase", "bulk+fill", self.clock.now)
        for value in cycle:
            self._drain(self.clock.now)
            while self.fill_backlog:
                fill_dst, fill_ttl = self.fill_backlog.pop()
                self._send(fill_dst, fill_ttl, phase="fill")
                self._drain(self.clock.now)
            index, ttl_index = divmod(value, config.bulk_ttl)
            ttl = ttl_index + 1
            if self._protected(ttl):
                self.skipped_by_protection += 1
                continue
            dst = self.targets[self.base_prefix + self.offsets[index]]
            self._send(dst, ttl)
            self._report_progress()
        # Let the tail of fill chains complete.
        while True:
            self.clock.advance(_SETTLE_SECONDS)
            self._drain(self.clock.now)
            if not self.fill_backlog:
                break
            while self.fill_backlog:
                fill_dst, fill_ttl = self.fill_backlog.pop()
                self._send(fill_dst, fill_ttl, phase="fill")
        if tracer is not None:
            tracer.end("phase", "bulk+fill", self.clock.now,
                       probes=self.result.probes_sent,
                       skipped=self.skipped_by_protection)
        return self._finalize()

    def _execute_stateless(self, cycle: MultiplicativeCycle) -> ScanResult:
        """The bulk phase with no fill mode and no neighborhood protection.

        Nothing a response does in this configuration feeds back into what
        gets sent (processing only records hops/counters), so probes can be
        emitted in chunks with one drain per chunk — same send times, same
        responses, same :class:`ScanResult`, far less per-probe overhead.
        """
        config = self.config
        bulk_ttl = config.bulk_ttl
        targets = self.targets
        base_prefix = self.base_prefix
        offsets = self.offsets
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("phase", "bulk", self.clock.now)
        chunk: List[Tuple[int, int]] = []
        for value in cycle:
            index, ttl_index = divmod(value, bulk_ttl)
            chunk.append((targets[base_prefix + offsets[index]],
                          ttl_index + 1))
            if len(chunk) >= _BULK_CHUNK:
                self._send_chunk(chunk)
                self._drain(self.clock.now)
                chunk.clear()
                self._report_progress()
        if chunk:
            self._send_chunk(chunk)
        self.clock.advance(_SETTLE_SECONDS)
        self._drain(self.clock.now)
        if tracer is not None:
            tracer.end("phase", "bulk", self.clock.now,
                       probes=self.result.probes_sent)
        return self._finalize()


# --------------------------------------------------------------------- #
# Scanner registry entries (see repro.core.scanner)
# --------------------------------------------------------------------- #

from ..core.scanner import ScannerOptions, register_scanner  # noqa: E402


def _yarrp_factory(variant):
    def build(options: ScannerOptions) -> Yarrp:
        overrides = {"probing_rate": options.probing_rate}
        if options.seed is not None:
            overrides["seed"] = options.seed
        return Yarrp(variant(**overrides), telemetry=options.telemetry)
    return build


register_scanner("yarrp-16", _yarrp_factory(YarrpConfig.yarrp_16))
register_scanner("yarrp-32", _yarrp_factory(YarrpConfig.yarrp_32))
