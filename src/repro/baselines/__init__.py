"""Baseline tools the paper compares FlashRoute against.

* :class:`Yarrp` — the prior state of the art in massive traceroutes
  (Yarrp-32, Yarrp-16 fill mode, neighborhood protection, TCP-ACK/UDP).
* :class:`Scamper` — CAIDA's Doubletree engine at 10 Kpps, including its
  empirically observed backward-probing quirk (paper Fig. 7).
* :class:`ClassicTraceroute` — the conventional sequential tool, used as
  the reference for hop-distance validation (Fig. 3).
"""

from .scamper import Scamper, ScamperConfig
from .traceroute import ClassicTraceroute, TracerouteResult
from .yarrp import Yarrp, YarrpConfig, YarrpUdpEncodingError

__all__ = [
    "Scamper",
    "ScamperConfig",
    "ClassicTraceroute",
    "TracerouteResult",
    "Yarrp",
    "YarrpConfig",
    "YarrpUdpEncodingError",
]
