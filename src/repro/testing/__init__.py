"""Deterministic test harnesses that attack the system on purpose.

``repro.testing.chaos`` is the seeded chaos injector: it kills shard
workers at chosen slice boundaries (``scan --chaos-spec``) and floods
the daemon with hostile clients (``serve-bench --chaos``).  Everything
here is opt-in and deterministic — the production paths never import
this package unless a chaos knob is set.
"""

from .chaos import (
    ChaosError,
    ChaosKilled,
    ChaosSpec,
    kill_schedule,
    load_chaos_spec,
    maybe_kill_slice,
    should_kill,
)

__all__ = [
    "ChaosError",
    "ChaosKilled",
    "ChaosSpec",
    "kill_schedule",
    "load_chaos_spec",
    "maybe_kill_slice",
    "should_kill",
]
