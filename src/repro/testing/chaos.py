"""Seeded, deterministic chaos injection for the shard pool and daemon.

Two fault families, one spec:

* **Shard-worker kills.**  :func:`should_kill` decides, as a pure
  function of ``(seed, slice, attempt)``, whether a worker dies at the
  start of a slice attempt — either because the slice is explicitly
  listed in ``kill_slices`` or because its hash draw falls under
  ``kill_rate``.  The draw uses the same SplitMix64 avalanche as the
  simulator's :class:`~repro.simnet.faults.FaultInjector`, so the
  injected-fault *sequence* is identical for identical seeds (the
  ``tests/test_chaos.py`` matrix pins this).  ``kills_per_slice`` caps
  how many attempts of one slice die, so a retry budget of ``K`` can
  outlive ``kills_per_slice <= K`` kills.

* **Hostile daemon clients.**  :func:`run_daemon_chaos` fans out the
  spec's ``slow_loris`` / ``disconnects`` / ``resets`` / ``malformed``
  counts as concurrent misbehaving clients against a live daemon.
  Wall-clock scheduling of sockets is inherently racy, so determinism
  here means the *set* of injected behaviours (and every request
  payload) derives from the spec alone.

A spec travels as JSON — a file path or an inline object — via
``scan --chaos-spec`` / ``serve-bench --chaos``; see docs/robustness.md
for the format.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

_MASK64 = (1 << 64) - 1

#: Salt separating chaos kill draws from every other SplitMix64 stream
#: in the repo (fault injector, event sampling).
_KILL_SALT = 0xC4A0_5EED_0B57_ACE5


def _mix64(x: int) -> int:
    """SplitMix64 finalizer (same avalanche as repro.simnet.faults)."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


class ChaosError(ValueError):
    """A chaos spec could not be parsed or validated."""


class ChaosKilled(RuntimeError):
    """Raised inside a shard worker to simulate its death at a slice
    boundary.  Travels the existing worker-error path (the payload the
    parent turns into a :class:`~repro.core.sharding.ShardError` or a
    retry), so a chaos kill exercises exactly the machinery a real
    worker crash would."""


@dataclass(frozen=True)
class ChaosSpec:
    """One seeded chaos scenario (immutable, JSON round-trippable).

    Shard side: ``kill_slices`` always die (their first
    ``kills_per_slice`` attempts); additionally every (slice, attempt)
    draws against ``kill_rate``.  Daemon side: client counts per
    misbehaviour class.
    """

    seed: int = 0
    kill_slices: Tuple[int, ...] = ()
    kill_rate: float = 0.0
    kills_per_slice: int = 1
    slow_loris: int = 0
    disconnects: int = 0
    resets: int = 0
    malformed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kill_slices",
                           tuple(self.kill_slices))
        for index in self.kill_slices:
            if not isinstance(index, int) or isinstance(index, bool) \
                    or index < 0:
                raise ChaosError(
                    f"kill_slices must hold non-negative slice indexes, "
                    f"got {index!r}")
        if not 0.0 <= self.kill_rate <= 1.0:
            raise ChaosError(
                f"kill_rate must be in [0, 1], got {self.kill_rate}")
        if self.kills_per_slice < 0:
            raise ChaosError(
                f"kills_per_slice must be >= 0, got "
                f"{self.kills_per_slice}")
        for name in ("slow_loris", "disconnects", "resets", "malformed"):
            if getattr(self, name) < 0:
                raise ChaosError(
                    f"{name} must be >= 0, got {getattr(self, name)}")

    @property
    def kills_workers(self) -> bool:
        """Does this spec inject shard-worker deaths at all?"""
        return self.kills_per_slice > 0 \
            and (bool(self.kill_slices) or self.kill_rate > 0.0)

    @property
    def daemon_clients(self) -> int:
        """Total hostile clients the daemon side fans out."""
        return (self.slow_loris + self.disconnects + self.resets
                + self.malformed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "kill_slices": list(self.kill_slices),
            "kill_rate": self.kill_rate,
            "kills_per_slice": self.kills_per_slice,
            "slow_loris": self.slow_loris,
            "disconnects": self.disconnects,
            "resets": self.resets,
            "malformed": self.malformed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChaosSpec":
        if not isinstance(payload, dict):
            raise ChaosError(
                f"chaos spec must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ChaosError(
                f"unknown chaos spec field(s) {unknown} "
                f"(known: {sorted(known)})")
        kwargs = dict(payload)
        if "kill_slices" in kwargs:
            raw = kwargs["kill_slices"]
            if not isinstance(raw, (list, tuple)):
                raise ChaosError(
                    f"kill_slices must be a list, got "
                    f"{type(raw).__name__}")
            kwargs["kill_slices"] = tuple(raw)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ChaosError(f"bad chaos spec: {exc}") from exc


def load_chaos_spec(source: str) -> ChaosSpec:
    """Parse a chaos spec from a file path or an inline JSON object.

    ``scan --chaos-spec`` accepts both: anything that names an existing
    file is read from disk; otherwise the argument itself must be the
    JSON object (convenient in CI one-liners).
    """
    text = source
    if os.path.exists(source):
        with open(source, "r", encoding="utf-8") as stream:
            text = stream.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ChaosError(
            f"chaos spec is neither an existing file nor valid JSON: "
            f"{exc}") from exc
    return ChaosSpec.from_dict(payload)


# --------------------------------------------------------------------- #
# Shard-worker kills
# --------------------------------------------------------------------- #

def should_kill(spec: ChaosSpec, slice_index: int, attempt: int) -> bool:
    """Pure decision: does the worker die at this (slice, attempt)?

    The first ``kills_per_slice`` attempts of a targeted slice die;
    later attempts survive, which is what lets ``--slice-retries K``
    finish a scan under ``kills_per_slice <= K``.
    """
    if attempt >= spec.kills_per_slice:
        return False
    if slice_index in spec.kill_slices:
        return True
    if spec.kill_rate <= 0.0:
        return False
    draw = _mix64((spec.seed * 0x9E3779B97F4A7C15)
                  ^ (slice_index * 0xC2B2AE3D27D4EB4F)
                  ^ (attempt * 0x165667B19E3779F9)
                  ^ _KILL_SALT)
    return draw / 18446744073709551616.0 < spec.kill_rate


def kill_schedule(spec: ChaosSpec, slices: int,
                  max_attempts: int) -> List[Tuple[int, int]]:
    """Every (slice, attempt) pair the spec would kill, in scan order —
    the injected-fault sequence the determinism tests compare."""
    return [(index, attempt)
            for attempt in range(max_attempts)
            for index in range(slices)
            if should_kill(spec, index, attempt)]


def maybe_kill_slice(spec: Optional[ChaosSpec], slice_index: int,
                     attempt: int) -> None:
    """Worker-side hook: raise :class:`ChaosKilled` when the spec says
    this attempt dies.  ``None`` (no chaos) is always a no-op."""
    if spec is not None and should_kill(spec, slice_index, attempt):
        raise ChaosKilled(
            f"chaos: killed worker at slice {slice_index} boundary "
            f"(attempt {attempt}, seed {spec.seed})")


# --------------------------------------------------------------------- #
# Hostile daemon clients
# --------------------------------------------------------------------- #

#: Garbage lines the malformed flood cycles through: broken JSON, valid
#: JSON of the wrong shape, and an unparseable trace request.  Each must
#: draw exactly one structured ``error`` record without killing the
#: connection.
MALFORMED_LINES: Tuple[bytes, ...] = (
    b'{"destination": "20.0.0.7", "flow":',
    b'[1, 2, 3]',
    b'"just a string"',
    b'{"destination": "not-an-ip", "flow": 0}',
    b'{"destination": "20.0.0.7", "flow": 0, "bogus_field": 1}',
)


async def _open(host: Optional[str], port: Optional[int],
                socket_path: Optional[str]):
    if socket_path is not None:
        return await asyncio.open_unix_connection(socket_path)
    return await asyncio.open_connection(host, port)


async def slow_loris_client(host: Optional[str] = None,
                            port: Optional[int] = None,
                            socket_path: Optional[str] = None, *,
                            duration: float = 0.5,
                            drips: int = 8) -> Dict[str, object]:
    """Hold a connection open dribbling a never-finished request line.

    The daemon must neither block on the half-line (other clients keep
    being served) nor crash when the connection finally closes with the
    line incomplete.
    """
    reader, writer = await _open(host, port, socket_path)
    fragment = b'{"destination": "20.0.0.7", "flow": 0'  # no newline
    sent = 0
    try:
        step = max(1, len(fragment) // max(1, drips))
        for offset in range(0, len(fragment), step):
            writer.write(fragment[offset:offset + step])
            await writer.drain()
            sent += len(fragment[offset:offset + step])
            await asyncio.sleep(duration / max(1, drips))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return {"kind": "slow_loris", "bytes_sent": sent}


async def midstream_disconnect_client(payload: Dict[str, object],
                                      host: Optional[str] = None,
                                      port: Optional[int] = None,
                                      socket_path: Optional[str] = None,
                                      *, after_hops: int = 1
                                      ) -> Dict[str, object]:
    """Issue a real trace request, read a few hop records, vanish."""
    reader, writer = await _open(host, port, socket_path)
    seen = 0
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        while seen < after_hops:
            line = await reader.readline()
            if not line:
                break
            record = json.loads(line)
            if record.get("type") != "hop":
                break  # terminal arrived before the cutoff; fine
            seen += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return {"kind": "disconnect", "hops_seen": seen}


async def reset_client(payload: Dict[str, object],
                       host: Optional[str] = None,
                       port: Optional[int] = None,
                       socket_path: Optional[str] = None
                       ) -> Dict[str, object]:
    """Issue a request, then abort the transport without a clean FIN —
    the daemon-side write path must absorb the reset."""
    reader, writer = await _open(host, port, socket_path)
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        await reader.readline()  # let at least one record flow
    except (ConnectionError, OSError):
        pass
    finally:
        transport = writer.transport
        if transport is not None:
            transport.abort()
    return {"kind": "reset"}


async def malformed_flood_client(host: Optional[str] = None,
                                 port: Optional[int] = None,
                                 socket_path: Optional[str] = None, *,
                                 lines: int = len(MALFORMED_LINES)
                                 ) -> Dict[str, object]:
    """Send a burst of garbage lines; every one must come back as a
    structured ``error`` record on a still-open connection."""
    reader, writer = await _open(host, port, socket_path)
    errors = 0
    try:
        for index in range(lines):
            writer.write(MALFORMED_LINES[index % len(MALFORMED_LINES)]
                         + b"\n")
            await writer.drain()
            line = await reader.readline()
            if not line:
                break
            if json.loads(line).get("type") == "error":
                errors += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return {"kind": "malformed", "lines_sent": lines,
            "error_records": errors}


async def run_daemon_chaos(spec: ChaosSpec,
                           payloads: List[Dict[str, object]],
                           host: Optional[str] = None,
                           port: Optional[int] = None,
                           socket_path: Optional[str] = None
                           ) -> Dict[str, object]:
    """Fan out the spec's hostile clients concurrently; returns a
    summary (per-kind counts plus how many raised unexpectedly).

    ``payloads`` supplies real trace requests for the disconnect/reset
    clients (cycled deterministically), so their damage lands on the
    same key population the measured burst uses.
    """
    tasks = []
    for index in range(spec.slow_loris):
        tasks.append(slow_loris_client(host, port, socket_path))
    for index in range(spec.disconnects):
        payload = dict(payloads[index % len(payloads)]) if payloads \
            else {"destination": "20.0.0.7", "flow": 0}
        payload.pop("id", None)
        tasks.append(midstream_disconnect_client(
            payload, host, port, socket_path,
            after_hops=1 + index % 3))
    for index in range(spec.resets):
        payload = dict(payloads[(index * 7) % len(payloads)]) \
            if payloads else {"destination": "20.0.0.7", "flow": 1}
        payload.pop("id", None)
        tasks.append(reset_client(payload, host, port, socket_path))
    for index in range(spec.malformed):
        tasks.append(malformed_flood_client(host, port, socket_path))
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    summary: Dict[str, object] = {
        "clients": len(tasks),
        "slow_loris": spec.slow_loris,
        "disconnects": spec.disconnects,
        "resets": spec.resets,
        "malformed": spec.malformed,
        "client_failures": sum(
            1 for outcome in outcomes if isinstance(outcome, Exception)),
        "malformed_error_records": sum(
            outcome.get("error_records", 0) for outcome in outcomes
            if isinstance(outcome, dict)),
    }
    return summary
