"""IPv6 address handling (int-based, like the IPv4 layer).

The paper's §5.4 plans a FlashRoute extension to IPv6, noting the control
state must be redesigned because allocated IPv6 addresses are sparse [20] —
no 2^24-style array can index them.  This module supplies the address
plumbing for that extension (see ``repro.v6``): parsing/formatting with
RFC 5952 ``::`` compression, prefix math on 128-bit integers, and the
standard scanning-related constants.
"""

from __future__ import annotations

from typing import List, Tuple

MAX_IPV6 = 2**128 - 1

#: Conventional subnet size; one target per /64 is the Yarrp6-style
#: granularity the v6 extension scans at.
SUBNET_PREFIX_LEN = 64


class Address6Error(ValueError):
    """Raised for malformed IPv6 text or out-of-range integers."""


def ip6_to_int(text: str) -> int:
    """Parse an IPv6 address (with optional ``::`` compression).

    >>> hex(ip6_to_int("2001:db8::1"))
    '0x20010db8000000000000000000000001'
    """
    text = text.strip()
    if text.count("::") > 1:
        raise Address6Error(f"multiple '::' in {text!r}")
    if ":::" in text:
        raise Address6Error(f"':::' in {text!r}")

    def parse_groups(chunk: str) -> List[int]:
        if not chunk:
            return []
        groups = []
        for part in chunk.split(":"):
            if not 1 <= len(part) <= 4:
                raise Address6Error(f"bad group {part!r} in {text!r}")
            try:
                value = int(part, 16)
            except ValueError as exc:
                raise Address6Error(f"bad group {part!r} in {text!r}") from exc
            groups.append(value)
        return groups

    if "::" in text:
        head_text, tail_text = text.split("::")
        head = parse_groups(head_text)
        tail = parse_groups(tail_text)
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise Address6Error(f"'::' expands to nothing in {text!r}")
        groups = head + [0] * missing + tail
    else:
        groups = parse_groups(text)
        if len(groups) != 8:
            raise Address6Error(f"need 8 groups in {text!r}")

    value = 0
    for group in groups:
        value = (value << 16) | group
    return value


def int_to_ip6(value: int) -> str:
    """Format an integer as canonical (RFC 5952) IPv6 text.

    >>> int_to_ip6(0x20010db8000000000000000000000001)
    '2001:db8::1'
    """
    if not 0 <= value <= MAX_IPV6:
        raise Address6Error(f"address out of range: {value:#x}")
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]

    # Longest run of zero groups (length >= 2) becomes '::'.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{group:x}" for group in groups)
    head = ":".join(f"{group:x}" for group in groups[:best_start])
    tail = ":".join(f"{group:x}" for group in groups[best_start + best_len:])
    return f"{head}::{tail}"


def prefix6_of(addr: int, length: int) -> int:
    """Network part of ``addr`` under a /``length`` mask."""
    if not 0 <= addr <= MAX_IPV6:
        raise Address6Error(f"address out of range: {addr:#x}")
    if not 0 <= length <= 128:
        raise Address6Error(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    mask = (MAX_IPV6 << (128 - length)) & MAX_IPV6
    return addr & mask


def subnet64_of(addr: int) -> int:
    """The /64 subnet index (upper 64 bits) of an address."""
    if not 0 <= addr <= MAX_IPV6:
        raise Address6Error(f"address out of range: {addr:#x}")
    return addr >> 64


def addr_in_subnet64(subnet: int, interface_id: int) -> int:
    """Compose an address from a /64 index and a 64-bit interface id."""
    if not 0 <= subnet < 2**64:
        raise Address6Error(f"subnet index out of range: {subnet:#x}")
    if not 0 <= interface_id < 2**64:
        raise Address6Error(f"interface id out of range: {interface_id:#x}")
    return (subnet << 64) | interface_id


def cidr6_to_range(cidr: str) -> Tuple[int, int]:
    """Parse ``addr/len`` into an inclusive (first, last) pair."""
    try:
        base_text, length_text = cidr.split("/")
    except ValueError as exc:
        raise Address6Error(f"not CIDR notation: {cidr!r}") from exc
    length = int(length_text)
    if not 0 <= length <= 128:
        raise Address6Error(f"prefix length out of range in {cidr!r}")
    base = prefix6_of(ip6_to_int(base_text), length)
    span = 1 << (128 - length)
    return base, base + span - 1
