"""ICMP response messages and their probe quotations.

Stateless/high-parallelism traceroute hinges on one ICMP property: error
messages (TTL exceeded, destination unreachable) quote the offending packet's
IPv4 header plus at least the first 8 bytes of its transport header.  All of
FlashRoute's probe-encoded state comes back through that quotation.  This
module defines the response types the simulator emits and the byte-level
pack/unpack of ICMP error messages.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

from .checksum import internet_checksum
from .packets import IPV4_HEADER_LEN, IPv4Header, PacketError, ProbeHeader

ICMP_HEADER_LEN = 8

# ICMP types/codes used by traceroute.
ICMP_TIME_EXCEEDED = 11
ICMP_DEST_UNREACHABLE = 3
ICMP_ECHO_REPLY = 0

CODE_TTL_EXCEEDED = 0
CODE_NET_UNREACHABLE = 0
CODE_HOST_UNREACHABLE = 1
CODE_PROTO_UNREACHABLE = 2
CODE_PORT_UNREACHABLE = 3


class ResponseKind(enum.Enum):
    """Semantic classification of a probe response."""

    TTL_EXCEEDED = "ttl_exceeded"
    PORT_UNREACHABLE = "port_unreachable"
    HOST_UNREACHABLE = "host_unreachable"
    TCP_RST = "tcp_rst"
    ECHO_REPLY = "echo_reply"

    @property
    def is_unreachable(self) -> bool:
        """True for the "reached the end target" family of responses.

        The paper treats host/port/protocol unreachable (and a TCP RST for
        TCP-ACK probes) as the signal that forward probing hit the target.
        """
        return self in (ResponseKind.PORT_UNREACHABLE,
                        ResponseKind.HOST_UNREACHABLE,
                        ResponseKind.TCP_RST)


_KIND_TO_TYPE_CODE = {
    ResponseKind.TTL_EXCEEDED: (ICMP_TIME_EXCEEDED, CODE_TTL_EXCEEDED),
    ResponseKind.PORT_UNREACHABLE: (ICMP_DEST_UNREACHABLE, CODE_PORT_UNREACHABLE),
    ResponseKind.HOST_UNREACHABLE: (ICMP_DEST_UNREACHABLE, CODE_HOST_UNREACHABLE),
}

_TYPE_CODE_TO_KIND = {v: k for k, v in _KIND_TO_TYPE_CODE.items()}


@dataclass
class IcmpResponse:
    """A parsed ICMP (or RST) response to one probe.

    Attributes:
        kind: semantic response type.
        responder: address of the interface that sent the response.
        quoted: the probe headers recovered from the ICMP quotation.  For a
            TCP RST there is no quotation; the simulator reconstructs the
            fields it can (ports swapped, seq echoed) and ``quoted`` carries
            them so the receive path is uniform.
        arrival_time: virtual time (seconds) the response reached the
            vantage point.
        quoted_residual_ttl: the TTL the probe had *when it arrived* at the
            responder, as preserved in the quotation.  This is what the
            single-probe hop-distance measurement (paper §3.3.1) reads.

    Two extra slots carry fault-injection state
    (:mod:`repro.simnet.faults`); both default to the no-fault values:

    * ``is_duplicate`` — this response is an injected duplicate of
      another (engines count these in ``ScanResult.duplicate_responses``);
    * ``dup`` — the duplicate chained onto this response, delivered by
      :class:`~repro.simnet.engine.ResponseQueue` as its own arrival
      (``None`` when no duplicate was injected).
    """

    __slots__ = ("kind", "responder", "quoted", "arrival_time",
                 "quoted_residual_ttl", "is_duplicate", "dup")

    kind: ResponseKind
    responder: int
    quoted: ProbeHeader
    arrival_time: float
    quoted_residual_ttl: int

    def __post_init__(self) -> None:
        # Not dataclass fields: defaulted fields would create class
        # attributes that collide with the manual __slots__.
        self.is_duplicate = False
        self.dup: Optional[IcmpResponse] = None

    @property
    def probe_dst(self) -> int:
        """Destination address of the original probe (from the quotation)."""
        return self.quoted.dst


def pack_icmp_error(kind: ResponseKind, responder: int, vantage: int,
                    quoted_probe_bytes: bytes, response_ttl: int = 64) -> bytes:
    """Build the full wire bytes of an ICMP error carrying a quotation.

    ``quoted_probe_bytes`` must be the probe's IPv4 header plus >= 8 bytes of
    transport header, with the probe's *residual* TTL already written into the
    quoted IPv4 header (that is what a real router quotes).
    """
    if kind not in _KIND_TO_TYPE_CODE:
        raise PacketError(f"{kind} is not an ICMP error kind")
    icmp_type, icmp_code = _KIND_TO_TYPE_CODE[kind]
    if len(quoted_probe_bytes) < IPV4_HEADER_LEN + 8:
        raise PacketError("quotation must carry IPv4 header + 8 bytes")
    header = struct.pack("!BBHI", icmp_type, icmp_code, 0, 0)
    checksum = internet_checksum(header + quoted_probe_bytes)
    icmp = struct.pack("!BBHI", icmp_type, icmp_code, checksum, 0)
    body = icmp + quoted_probe_bytes
    outer = IPv4Header(src=responder, dst=vantage, proto=1, ttl=response_ttl,
                       total_length=IPV4_HEADER_LEN + len(body))
    return outer.pack() + body


def unpack_icmp_error(data: bytes, arrival_time: float = 0.0) -> IcmpResponse:
    """Parse wire bytes of an ICMP error back into an :class:`IcmpResponse`."""
    outer = IPv4Header.unpack(data)
    if outer.proto != 1:
        raise PacketError(f"not an ICMP packet (proto {outer.proto})")
    body = data[IPV4_HEADER_LEN:]
    if len(body) < ICMP_HEADER_LEN:
        raise PacketError("short ICMP header")
    icmp_type, icmp_code, _checksum, _unused = struct.unpack("!BBHI", body[:8])
    kind = _TYPE_CODE_TO_KIND.get((icmp_type, icmp_code))
    if kind is None:
        raise PacketError(f"unsupported ICMP type/code {icmp_type}/{icmp_code}")
    quotation = body[ICMP_HEADER_LEN:]
    quoted = ProbeHeader.unpack(quotation)
    return IcmpResponse(kind=kind, responder=outer.src, quoted=quoted,
                        arrival_time=arrival_time,
                        quoted_residual_ttl=quoted.ttl)


def distance_from_unreachable(response: IcmpResponse,
                              initial_ttl: int) -> Optional[int]:
    """Hop distance of the destination from a port-unreachable response.

    This is the paper's one-probe distance measurement (§3.3.1): a probe sent
    with ``initial_ttl`` arrives at a destination ``d`` hops away carrying
    residual TTL ``initial_ttl - (d - 1)`` (each of the ``d - 1`` intermediate
    routers decrements it once).  Therefore::

        d = initial_ttl - residual + 1

    Returns ``None`` when the arithmetic is impossible (malformed or
    middlebox-mangled residual TTL larger than the initial TTL).
    """
    residual = response.quoted_residual_ttl
    if residual > initial_ttl or residual < 1:
        return None
    return initial_ttl - residual + 1
