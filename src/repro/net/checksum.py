"""RFC 1071 Internet checksum.

FlashRoute uses the Internet checksum twice:

* over every IPv4/UDP/ICMP header it emits or parses, and
* over the 4 bytes of the destination address to derive the probe's UDP
  source port (the "Paris" flow identifier), which doubles as an integrity
  check against in-flight destination rewriting (paper §3.1, §5.3).
"""

from __future__ import annotations

import struct


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Returns the checksum as an integer in ``[0, 0xFFFF]``, ready to be stored
    in a header field.  Odd-length input is zero-padded per RFC 1071.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    # Sum 16-bit big-endian words; fold carries at the end.
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (with its checksum field in place) sums to zero."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


def addr_checksum(addr: int) -> int:
    """Checksum of the 4 bytes of an IPv4 address (FlashRoute's source port).

    This is the value FlashRoute writes into the UDP source port of every
    probe for a destination; a response whose quoted source port does not
    match the checksum of its quoted destination reveals that a middlebox
    rewrote the destination address in flight (paper §5.3).

    The result is folded into ``[1024, 65535]`` so probes never use a
    privileged source port.
    """
    checksum = internet_checksum(struct.pack("!I", addr & 0xFFFFFFFF))
    if checksum < 1024:
        checksum += 1024
    return checksum


def flow_source_port(addr: int, scan_offset: int = 0) -> int:
    """Source port for a probe to ``addr`` in extra scan ``scan_offset``.

    The discovery-optimized mode (paper §5.2) issues extra scans whose probes
    use source port ``P + i`` where ``P`` is the base checksum port; varying
    the port steers per-flow load balancers onto alternative branches.  The
    port is kept in ``[1024, 65535]`` by wrapping within that window.
    """
    port = addr_checksum(addr) + scan_offset
    window = 65536 - 1024
    return 1024 + (port - 1024) % window
