"""Wire-format substrate: IPv4 addresses, checksums, headers, ICMP errors.

This package is the byte-level ground truth for everything FlashRoute encodes
into its probes.  It has no dependencies on the simulator or the probing
engines and can be reused standalone.
"""

from .addr import (
    AddressError,
    MAX_IPV4,
    addr_in_prefix24,
    cidr_to_range,
    host_octet,
    int_to_ip,
    ip_to_int,
    is_reserved,
    iter_prefix24,
    prefix24_base,
    prefix24_of,
    prefix_of,
)
from .checksum import addr_checksum, flow_source_port, internet_checksum, verify_checksum
from .icmp import (
    IcmpResponse,
    ResponseKind,
    distance_from_unreachable,
    pack_icmp_error,
    unpack_icmp_error,
)
from .pcap import PcapError, PcapRecord, PcapWriter, load_pcap, read_pcap
from .packets import (
    IPV4_HEADER_LEN,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER_LEN,
    UDP_HEADER_LEN,
    IPv4Header,
    PacketError,
    ProbeHeader,
    TCPHeader,
    UDPHeader,
)

__all__ = [
    "AddressError",
    "MAX_IPV4",
    "addr_in_prefix24",
    "cidr_to_range",
    "host_octet",
    "int_to_ip",
    "ip_to_int",
    "is_reserved",
    "iter_prefix24",
    "prefix24_base",
    "prefix24_of",
    "prefix_of",
    "addr_checksum",
    "flow_source_port",
    "internet_checksum",
    "verify_checksum",
    "PcapError",
    "PcapRecord",
    "PcapWriter",
    "load_pcap",
    "read_pcap",
    "IcmpResponse",
    "ResponseKind",
    "distance_from_unreachable",
    "pack_icmp_error",
    "unpack_icmp_error",
    "IPV4_HEADER_LEN",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_HEADER_LEN",
    "UDP_HEADER_LEN",
    "IPv4Header",
    "PacketError",
    "ProbeHeader",
    "TCPHeader",
    "UDPHeader",
]
