"""IPv4 address and prefix arithmetic.

Every address in this library is a plain ``int`` in ``[0, 2**32)``.  Working
on integers instead of ``ipaddress.IPv4Address`` objects keeps the probing hot
paths allocation-free, matches how FlashRoute's C++ implementation treats
addresses, and makes prefix arithmetic (``addr >> 8`` for the /24 index)
trivial.  This module provides the conversions and the small amount of prefix
math the rest of the library needs.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple

MAX_IPV4 = 2**32 - 1

#: Number of host bits in the granularity FlashRoute scans at (one target
#: per /24 block).
SLASH24_HOST_BITS = 8

_DOTTED_QUAD_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Raised for malformed dotted quads or out-of-range integer addresses."""


def ip_to_int(dotted: str) -> int:
    """Parse a dotted-quad string into an integer address.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    match = _DOTTED_QUAD_RE.match(dotted)
    if match is None:
        raise AddressError(f"not a dotted quad: {dotted!r}")
    octets = [int(part) for part in match.groups()]
    if any(octet > 255 for octet in octets):
        raise AddressError(f"octet out of range in {dotted!r}")
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def int_to_ip(addr: int) -> str:
    """Format an integer address as a dotted quad.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    _check_addr(addr)
    return f"{(addr >> 24) & 0xFF}.{(addr >> 16) & 0xFF}.{(addr >> 8) & 0xFF}.{addr & 0xFF}"


def _check_addr(addr: int) -> None:
    if not 0 <= addr <= MAX_IPV4:
        raise AddressError(f"address out of range: {addr:#x}")


def prefix24_of(addr: int) -> int:
    """Return the /24 prefix index (upper 24 bits) of an address."""
    _check_addr(addr)
    return addr >> SLASH24_HOST_BITS


def prefix24_base(prefix_index: int) -> int:
    """Return the network (.0) address of a /24 prefix index."""
    if not 0 <= prefix_index < 2**24:
        raise AddressError(f"/24 prefix index out of range: {prefix_index}")
    return prefix_index << SLASH24_HOST_BITS


def addr_in_prefix24(prefix_index: int, host: int) -> int:
    """Compose an address from a /24 prefix index and a host octet."""
    if not 0 <= host <= 255:
        raise AddressError(f"host octet out of range: {host}")
    return prefix24_base(prefix_index) | host


def host_octet(addr: int) -> int:
    """Return the host (last) octet of an address."""
    _check_addr(addr)
    return addr & 0xFF


def prefix_of(addr: int, length: int) -> int:
    """Return the network address of ``addr`` under a ``/length`` mask."""
    _check_addr(addr)
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    mask = (MAX_IPV4 << (32 - length)) & MAX_IPV4
    return addr & mask


def cidr_to_range(cidr: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` into an inclusive ``(first, last)`` address pair."""
    try:
        base_text, length_text = cidr.split("/")
    except ValueError as exc:
        raise AddressError(f"not CIDR notation: {cidr!r}") from exc
    length = int(length_text)
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range in {cidr!r}")
    base = prefix_of(ip_to_int(base_text), length)
    span = 1 << (32 - length)
    return base, base + span - 1


def iter_prefix24(cidr: str) -> Iterator[int]:
    """Yield every /24 prefix index covered by a CIDR block (>= /24 only)."""
    first, last = cidr_to_range(cidr)
    if last - first + 1 < 256:
        raise AddressError(f"{cidr!r} is smaller than a /24")
    for prefix_index in range(first >> 8, (last >> 8) + 1):
        yield prefix_index


# Reserved address space that FlashRoute excludes from scans by default.
# These mirror the exclusions in the paper: private, multicast, reserved.
RESERVED_CIDRS: List[str] = [
    "0.0.0.0/8",        # "this network"
    "10.0.0.0/8",       # private
    "100.64.0.0/10",    # carrier-grade NAT
    "127.0.0.0/8",      # loopback
    "169.254.0.0/16",   # link local
    "172.16.0.0/12",    # private
    "192.0.2.0/24",     # TEST-NET-1
    "192.168.0.0/16",   # private
    "198.18.0.0/15",    # benchmarking
    "198.51.100.0/24",  # TEST-NET-2
    "203.0.113.0/24",   # TEST-NET-3
    "224.0.0.0/4",      # multicast
    "240.0.0.0/4",      # reserved / future use
]


def is_reserved(addr: int) -> bool:
    """True if the address falls into reserved/private/multicast space."""
    _check_addr(addr)
    for cidr in RESERVED_CIDRS:
        first, last = cidr_to_range(cidr)
        if first <= addr <= last:
            return True
    return False
