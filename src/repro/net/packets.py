"""Byte-exact IPv4, UDP and TCP header handling.

FlashRoute's probe encoding lives in real header fields — the IPv4
identification field, the UDP length field, the UDP source port — and comes
back quoted inside ICMP error payloads.  This module implements the packing
and parsing of those headers so the encoding can be exercised end-to-end at
the byte level.  The simulator's hot path passes the structured
:class:`ProbeHeader` form around for speed; ``pack``/``unpack`` are the
canonical definition of the wire format and are round-trip tested.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum

IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


class PacketError(ValueError):
    """Raised when a packet buffer cannot be parsed."""


@dataclass
class IPv4Header:
    """A minimal (option-less) IPv4 header."""

    src: int
    dst: int
    proto: int
    ttl: int
    ident: int = 0
    total_length: int = IPV4_HEADER_LEN
    flags_fragment: int = 0
    tos: int = 0

    def pack(self, fill_checksum: bool = True) -> bytes:
        """Serialize to 20 bytes; computes the header checksum by default."""
        if not 0 <= self.ttl <= 255:
            raise PacketError(f"TTL out of range: {self.ttl}")
        if not 0 <= self.ident <= 0xFFFF:
            raise PacketError(f"IPID out of range: {self.ident}")
        header = struct.pack(
            "!BBHHHBBHII",
            (4 << 4) | 5,          # version 4, IHL 5 words
            self.tos,
            self.total_length,
            self.ident,
            self.flags_fragment,
            self.ttl,
            self.proto,
            0,                     # checksum placeholder
            self.src,
            self.dst,
        )
        if not fill_checksum:
            return header
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        """Parse the first 20 bytes of ``data`` as an IPv4 header."""
        if len(data) < IPV4_HEADER_LEN:
            raise PacketError(f"short IPv4 header: {len(data)} bytes")
        (ver_ihl, tos, total_length, ident, flags_fragment,
         ttl, proto, _checksum, src, dst) = struct.unpack("!BBHHHBBHII", data[:20])
        if ver_ihl >> 4 != 4:
            raise PacketError(f"not IPv4 (version {ver_ihl >> 4})")
        if ver_ihl & 0xF != 5:
            raise PacketError("IPv4 options are not supported")
        return cls(src=src, dst=dst, proto=proto, ttl=ttl, ident=ident,
                   total_length=total_length, flags_fragment=flags_fragment,
                   tos=tos)


@dataclass
class UDPHeader:
    """A UDP header.  ``length`` covers the header plus payload."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN
    checksum: int = 0

    def pack(self) -> bytes:
        for name, value in (("src_port", self.src_port),
                            ("dst_port", self.dst_port),
                            ("length", self.length)):
            if not 0 <= value <= 0xFFFF:
                raise PacketError(f"UDP {name} out of range: {value}")
        return struct.pack("!HHHH", self.src_port, self.dst_port,
                           self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < UDP_HEADER_LEN:
            raise PacketError(f"short UDP header: {len(data)} bytes")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port=src_port, dst_port=dst_port, length=length,
                   checksum=checksum)


@dataclass
class TCPHeader:
    """A minimal TCP header; Yarrp's default probes are TCP ACKs whose
    sequence number carries the elapsed-time timestamp."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0x10  # ACK
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    def pack(self) -> bytes:
        if not 0 <= self.seq <= 0xFFFFFFFF:
            raise PacketError(f"TCP seq out of range: {self.seq}")
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            (5 << 4),              # data offset 5 words
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < TCP_HEADER_LEN:
            raise PacketError(f"short TCP header: {len(data)} bytes")
        (src_port, dst_port, seq, ack, _offset, flags,
         window, checksum, urgent) = struct.unpack("!HHIIBBHHH", data[:20])
        return cls(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                   flags=flags, window=window, checksum=checksum,
                   urgent=urgent)


class ProbeHeader:
    """The structured form of a probe's outer headers.

    This is what travels through the simulator: exactly the fields a real
    ICMP error quotation preserves (the full IPv4 header plus the first
    8 bytes of the transport header).  ``pack``/``unpack`` translate to and
    from real bytes.

    Hand-written rather than a dataclass: one instance is allocated per
    simulated response (10^5..10^6 per scan), and ``__slots__`` with field
    defaults needs a plain class on the Pythons we support.  Equality and
    repr match the previous dataclass (payload compared, not shown).
    """

    __slots__ = ("src", "dst", "ttl", "ipid", "proto", "src_port",
                 "dst_port", "udp_length", "tcp_seq", "payload")

    def __init__(self, src: int, dst: int, ttl: int, ipid: int,
                 proto: int = PROTO_UDP, src_port: int = 0,
                 dst_port: int = 33434, udp_length: int = UDP_HEADER_LEN,
                 tcp_seq: int = 0, payload: bytes = b"") -> None:
        self.src = src
        self.dst = dst
        self.ttl = ttl
        self.ipid = ipid
        self.proto = proto
        self.src_port = src_port
        self.dst_port = dst_port
        self.udp_length = udp_length
        self.tcp_seq = tcp_seq
        self.payload = payload

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not ProbeHeader:
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.ttl == other.ttl and self.ipid == other.ipid
                and self.proto == other.proto
                and self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.udp_length == other.udp_length
                and self.tcp_seq == other.tcp_seq
                and self.payload == other.payload)

    def __repr__(self) -> str:
        return (f"ProbeHeader(src={self.src!r}, dst={self.dst!r}, "
                f"ttl={self.ttl!r}, ipid={self.ipid!r}, "
                f"proto={self.proto!r}, src_port={self.src_port!r}, "
                f"dst_port={self.dst_port!r}, "
                f"udp_length={self.udp_length!r}, tcp_seq={self.tcp_seq!r})")

    def pack(self) -> bytes:
        """Serialize the probe to wire bytes (IPv4 + transport + payload)."""
        if self.proto == PROTO_UDP:
            transport = UDPHeader(self.src_port, self.dst_port,
                                  self.udp_length).pack()
            body_len = max(self.udp_length, UDP_HEADER_LEN)
            pad = b"\x00" * (body_len - UDP_HEADER_LEN - len(self.payload))
            body = transport + self.payload + pad
        elif self.proto == PROTO_TCP:
            transport = TCPHeader(self.src_port, self.dst_port,
                                  seq=self.tcp_seq).pack()
            body = transport + self.payload
        else:
            raise PacketError(f"unsupported probe protocol: {self.proto}")
        ip = IPv4Header(src=self.src, dst=self.dst, proto=self.proto,
                        ttl=self.ttl, ident=self.ipid,
                        total_length=IPV4_HEADER_LEN + len(body))
        return ip.pack() + body

    @classmethod
    def unpack(cls, data: bytes) -> "ProbeHeader":
        """Parse wire bytes back into a probe header.

        Only the first 8 transport bytes are required, mirroring what an
        ICMP quotation guarantees to carry.
        """
        ip = IPv4Header.unpack(data)
        body = data[IPV4_HEADER_LEN:]
        if ip.proto == PROTO_UDP:
            udp = UDPHeader.unpack(body)
            return cls(src=ip.src, dst=ip.dst, ttl=ip.ttl, ipid=ip.ident,
                       proto=PROTO_UDP, src_port=udp.src_port,
                       dst_port=udp.dst_port, udp_length=udp.length,
                       payload=bytes(body[UDP_HEADER_LEN:]))
        if ip.proto == PROTO_TCP:
            if len(body) < 8:
                raise PacketError("quotation too short for TCP ports+seq")
            src_port, dst_port, seq = struct.unpack("!HHI", body[:8])
            return cls(src=ip.src, dst=ip.dst, ttl=ip.ttl, ipid=ip.ident,
                       proto=PROTO_TCP, src_port=src_port, dst_port=dst_port,
                       tcp_seq=seq)
        raise PacketError(f"unsupported quoted protocol: {ip.proto}")

    def quotation(self) -> bytes:
        """The bytes an ICMP error is required to quote: the IPv4 header
        plus the first 8 bytes of the transport header."""
        return self.pack()[:IPV4_HEADER_LEN + 8]
