"""Minimal pcap (libpcap classic format) writer and reader.

FlashRoute offers an option to skip internal logging and leave response
capture to an external sniffer (paper §4.2.3).  This module provides that
sniffer-side artifact: probes and ICMP responses serialized as real pcap
files (``LINKTYPE_RAW``, IPv4 packets with no link-layer header) that any
standard tool — tcpdump, Wireshark, scapy — can open.

Only the classic 24-byte-global-header/16-byte-record format is
implemented; that is all the format a traceroute capture needs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List

_MAGIC = 0xA1B2C3D4
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
_LINKTYPE_RAW = 101  # raw IPv4/IPv6 packets
_SNAPLEN = 65535

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Raised on malformed pcap input."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: a timestamp and raw IPv4 bytes."""

    timestamp: float
    data: bytes


class PcapWriter:
    """Streams packets into a classic pcap file.

    Usage::

        with open(path, "wb") as handle:
            writer = PcapWriter(handle)
            writer.write(send_time, probe_bytes)
    """

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._count = 0
        stream.write(_GLOBAL_HEADER.pack(
            _MAGIC, _VERSION_MAJOR, _VERSION_MINOR,
            0,              # thiszone (GMT)
            0,              # sigfigs
            _SNAPLEN,
            _LINKTYPE_RAW))

    @property
    def count(self) -> int:
        return self._count

    def write(self, timestamp: float, data: bytes) -> None:
        if timestamp < 0:
            raise PcapError("negative capture timestamp")
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros == 1_000_000:
            seconds += 1
            micros = 0
        length = len(data)
        self._stream.write(_RECORD_HEADER.pack(seconds, micros,
                                               min(length, _SNAPLEN), length))
        self._stream.write(data[:_SNAPLEN])
        self._count += 1


def read_pcap(stream: BinaryIO) -> Iterator[PcapRecord]:
    """Yield the records of a classic little-endian pcap stream."""
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic, major, minor, _zone, _sigfigs, _snaplen, linktype = \
        _GLOBAL_HEADER.unpack(header)
    if magic != _MAGIC:
        raise PcapError(f"bad pcap magic: {magic:#x}")
    if (major, minor) != (_VERSION_MAJOR, _VERSION_MINOR):
        raise PcapError(f"unsupported pcap version {major}.{minor}")
    if linktype != _LINKTYPE_RAW:
        raise PcapError(f"unsupported linktype {linktype}")
    while True:
        record_header = stream.read(_RECORD_HEADER.size)
        if not record_header:
            return
        if len(record_header) < _RECORD_HEADER.size:
            raise PcapError("truncated pcap record header")
        seconds, micros, captured, _original = \
            _RECORD_HEADER.unpack(record_header)
        data = stream.read(captured)
        if len(data) < captured:
            raise PcapError("truncated pcap record body")
        yield PcapRecord(timestamp=seconds + micros / 1_000_000, data=data)


def load_pcap(path: str) -> List[PcapRecord]:
    with open(path, "rb") as handle:
        return list(read_pcap(handle))
