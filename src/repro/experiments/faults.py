"""Loss-sweep experiment: tool degradation under injected faults.

Yarrp motivates statelessness with loss tolerance, and FlashRoute's gap
limit of 5 exists to survive silent stretches (paper §4.2) — but none of
the paper's tables actually measure behaviour under loss.  This driver
does: it scans one topology under increasing symmetric loss rates with a
fixed fault seed (:mod:`repro.simnet.faults`) and reports interface
discovery, probe cost, and loss-induced route damage per tool, plus a
gap-limit comparison showing how FlashRoute's forward probing bounds the
route truncation a single lost reply would otherwise cause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis.report import render_table
from ..core.resilience import ResilienceConfig
from ..core.results import ScanResult
from ..core.scanner import ScannerOptions
from ..simnet.faults import FaultModel
from .common import ExperimentContext

#: Default sweep: no faults, light, moderate, heavy loss.
DEFAULT_LOSS_RATES = (0.0, 0.02, 0.05, 0.10)

DEFAULT_TOOLS = ("flashroute-16", "flashroute-32", "yarrp-16", "yarrp-32")

#: Seed of every injected fault sequence; fixed so the sweep is exactly
#: reproducible run to run.
DEFAULT_FAULT_SEED = 0x10552020


@dataclass
class LossSweepResult:
    """Tall table of (tool, loss rate) scans plus a gap-limit comparison."""

    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    #: (tool, loss) -> full scan result.
    scans: Dict[Tuple[str, float], ScanResult] = field(default_factory=dict)
    gap_headers: List[str] = field(default_factory=list)
    gap_rows: List[List[object]] = field(default_factory=list)

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows,
                              title="[Loss sweep: discovery vs loss rate]")]
        if self.gap_rows:
            parts.append("")
            parts.append(render_table(
                self.gap_headers, self.gap_rows,
                title="[Gap limit bounding route truncation under loss]"))
        return "\n".join(parts)


def _mean_route_length(scan: ScanResult) -> float:
    lengths = [length for prefix in scan.routes
               if (length := scan.route_length(prefix)) is not None]
    if not lengths:
        return 0.0
    return sum(lengths) / len(lengths)


def run_loss_sweep(context: ExperimentContext,
                   loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES,
                   tools: Tuple[str, ...] = DEFAULT_TOOLS,
                   fault_seed: int = DEFAULT_FAULT_SEED) -> LossSweepResult:
    """Scan under each loss rate with a fixed fault seed; deterministic."""
    result = LossSweepResult(
        headers=["Tool", "Loss", "Interfaces", "Probes/target", "Holes",
                 "Duplicates"])
    for tool in tools:
        for loss in loss_rates:
            model = FaultModel.symmetric_loss(loss, seed=fault_seed)
            scanner = context.tool_scanner(tool)
            scan = scanner.scan(context.network(faults=model),
                                targets=context.random_targets)
            result.scans[(tool, loss)] = scan
            result.rows.append([
                tool, f"{loss:.0%}", scan.interface_count(),
                f"{scan.probes_per_target():.1f}", scan.route_holes(),
                scan.duplicate_responses])

    # Gap-limit comparison (§4.2): under loss, a gap limit of 1 truncates
    # forward probing at the first lost/silent reply; the default 5 keeps
    # walking and recovers the hops behind it.
    result.gap_headers = ["Gap limit", "Loss", "Interfaces",
                          "Mean route length", "Holes"]
    gap_loss = max(loss_rates)
    for gap in (5, 1):
        model = FaultModel.symmetric_loss(gap_loss, seed=fault_seed)
        scanner = context.tool_scanner(
            "flashroute-16", ScannerOptions(gap_limit=gap))
        scan = scanner.scan(context.network(faults=model),
                            targets=context.random_targets)
        result.scans[(f"flashroute-16/gap-{gap}", gap_loss)] = scan
        result.gap_rows.append([
            gap, f"{gap_loss:.0%}", scan.interface_count(),
            f"{_mean_route_length(scan):.2f}", scan.route_holes()])
    return result


# --------------------------------------------------------------------- #
# Loss recovery: probe retransmission vs loss-induced route damage
# --------------------------------------------------------------------- #

@dataclass
class LossRecoveryResult:
    """Recovery table: per (tool, loss), how many of the route holes a
    retry budget repairs (see ``docs/robustness.md``)."""

    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    #: (tool, loss, retries) -> full scan result.
    scans: Dict[Tuple[str, float, int], ScanResult] = field(
        default_factory=dict)
    #: (tool, loss) -> fraction of loss-induced holes absent with
    #: retries (set-based; the machine-readable acceptance number).
    recovery: Dict[Tuple[str, float], float] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(
            self.headers, self.rows,
            title="[Loss recovery: retransmission vs route holes]")

    def to_json(self) -> Dict[str, object]:
        """The CI artifact: the table plus the raw recovery fractions."""
        return {
            "headers": self.headers,
            "rows": [[str(cell) for cell in row] for row in self.rows],
            "recovery": {f"{tool}@{loss}": fraction
                         for (tool, loss), fraction
                         in sorted(self.recovery.items())},
        }


def _hole_set(scan: ScanResult) -> set:
    """The (prefix, ttl) holes :meth:`ScanResult.route_holes` counts."""
    holes = set()
    for prefix, hops in scan.routes.items():
        if not hops:
            continue
        first = min(hops)
        length = scan.route_length(prefix)
        end = length if length is not None else max(hops)
        for ttl in range(first + 1, end):
            if ttl not in hops:
                holes.add((prefix, ttl))
    return holes


def run_loss_recovery(context: ExperimentContext,
                      loss_rates: Tuple[float, ...] = (0.02, 0.05),
                      tools: Tuple[str, ...] = DEFAULT_TOOLS,
                      retries: int = 2,
                      fault_seed: int = DEFAULT_FAULT_SEED
                      ) -> LossRecoveryResult:
    """Same scan, same faults, with and without a retry budget.

    For each (tool, loss): a clean reference fixes the tool's baseline
    holes, the retry-free faulted run measures the loss-induced damage,
    and the ``retries``-budget run shows how much of it deterministic
    retransmission repairs.  Recovery is set-based — the fraction of
    loss-induced (prefix, ttl) holes no longer holes with retries — so
    holes the lossy runs merely relocate cannot inflate it.
    """
    result = LossRecoveryResult(
        headers=["Tool", "Loss", "Holes clean", "Holes r0",
                 f"Holes r{retries}", "Induced", "Recovered", "Recovery",
                 "Probe cost"])
    for tool in tools:
        clean = context.tool_scanner(tool).scan(
            context.network(), targets=context.random_targets)
        clean_holes = _hole_set(clean)
        for loss in loss_rates:
            model = FaultModel.symmetric_loss(loss, seed=fault_seed)
            bare = context.tool_scanner(tool).scan(
                context.network(faults=model),
                targets=context.random_targets)
            retried = context.tool_scanner(tool, ScannerOptions(
                resilience=ResilienceConfig(retries=retries))).scan(
                context.network(faults=model),
                targets=context.random_targets)
            result.scans[(tool, loss, 0)] = bare
            result.scans[(tool, loss, retries)] = retried
            induced = _hole_set(bare) - clean_holes
            recovered = induced - _hole_set(retried)
            fraction = (len(recovered) / len(induced)) if induced else 1.0
            result.recovery[(tool, loss)] = fraction
            cost = (retried.probes_sent / bare.probes_sent
                    if bare.probes_sent else 1.0)
            result.rows.append([
                tool, f"{loss:.0%}", len(clean_holes),
                bare.route_holes(), retried.route_holes(), len(induced),
                len(recovered), f"{fraction:.1%}", f"{cost:.2f}x"])
    return result
