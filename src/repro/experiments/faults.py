"""Loss-sweep experiment: tool degradation under injected faults.

Yarrp motivates statelessness with loss tolerance, and FlashRoute's gap
limit of 5 exists to survive silent stretches (paper §4.2) — but none of
the paper's tables actually measure behaviour under loss.  This driver
does: it scans one topology under increasing symmetric loss rates with a
fixed fault seed (:mod:`repro.simnet.faults`) and reports interface
discovery, probe cost, and loss-induced route damage per tool, plus a
gap-limit comparison showing how FlashRoute's forward probing bounds the
route truncation a single lost reply would otherwise cause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis.report import render_table
from ..core.results import ScanResult
from ..core.scanner import ScannerOptions
from ..simnet.faults import FaultModel
from .common import ExperimentContext

#: Default sweep: no faults, light, moderate, heavy loss.
DEFAULT_LOSS_RATES = (0.0, 0.02, 0.05, 0.10)

DEFAULT_TOOLS = ("flashroute-16", "flashroute-32", "yarrp-16", "yarrp-32")

#: Seed of every injected fault sequence; fixed so the sweep is exactly
#: reproducible run to run.
DEFAULT_FAULT_SEED = 0x10552020


@dataclass
class LossSweepResult:
    """Tall table of (tool, loss rate) scans plus a gap-limit comparison."""

    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    #: (tool, loss) -> full scan result.
    scans: Dict[Tuple[str, float], ScanResult] = field(default_factory=dict)
    gap_headers: List[str] = field(default_factory=list)
    gap_rows: List[List[object]] = field(default_factory=list)

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows,
                              title="[Loss sweep: discovery vs loss rate]")]
        if self.gap_rows:
            parts.append("")
            parts.append(render_table(
                self.gap_headers, self.gap_rows,
                title="[Gap limit bounding route truncation under loss]"))
        return "\n".join(parts)


def _mean_route_length(scan: ScanResult) -> float:
    lengths = [length for prefix in scan.routes
               if (length := scan.route_length(prefix)) is not None]
    if not lengths:
        return 0.0
    return sum(lengths) / len(lengths)


def run_loss_sweep(context: ExperimentContext,
                   loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES,
                   tools: Tuple[str, ...] = DEFAULT_TOOLS,
                   fault_seed: int = DEFAULT_FAULT_SEED) -> LossSweepResult:
    """Scan under each loss rate with a fixed fault seed; deterministic."""
    result = LossSweepResult(
        headers=["Tool", "Loss", "Interfaces", "Probes/target", "Holes",
                 "Duplicates"])
    for tool in tools:
        for loss in loss_rates:
            model = FaultModel.symmetric_loss(loss, seed=fault_seed)
            scanner = context.tool_scanner(tool)
            scan = scanner.scan(context.network(faults=model),
                                targets=context.random_targets)
            result.scans[(tool, loss)] = scan
            result.rows.append([
                tool, f"{loss:.0%}", scan.interface_count(),
                f"{scan.probes_per_target():.1f}", scan.route_holes(),
                scan.duplicate_responses])

    # Gap-limit comparison (§4.2): under loss, a gap limit of 1 truncates
    # forward probing at the first lost/silent reply; the default 5 keeps
    # walking and recovers the hops behind it.
    result.gap_headers = ["Gap limit", "Loss", "Interfaces",
                          "Mean route length", "Holes"]
    gap_loss = max(loss_rates)
    for gap in (5, 1):
        model = FaultModel.symmetric_loss(gap_loss, seed=fault_seed)
        scanner = context.tool_scanner(
            "flashroute-16", ScannerOptions(gap_limit=gap))
        scan = scanner.scan(context.network(faults=model),
                            targets=context.random_targets)
        result.scans[(f"flashroute-16/gap-{gap}", gap_loss)] = scan
        result.gap_rows.append([
            gap, f"{gap_loss:.0%}", scan.interface_count(),
            f"{_mean_route_length(scan):.2f}", scan.route_holes()])
    return result
