"""Drivers for Table 5, §5.2 (discovery-optimized mode), §5.3 (address
rewriting) and the ablations DESIGN.md §5 calls out."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from .. import api
from ..analysis.report import render_table
from ..baselines.yarrp import YarrpConfig
from ..core.config import FlashRouteConfig
from ..core.discovery import DiscoveryOptimizedResult, run_discovery_optimized
from ..core.results import ScanResult, format_scan_time
from ..obs.timing import Stopwatch
from .common import ExperimentContext
from .figures import one_probe_distances
from ..core.preprobe import predict_distances


# --------------------------------------------------------------------- #
# Table 5: non-throttled scan speed
# --------------------------------------------------------------------- #

@dataclass
class ThroughputRow:
    """One tool's measured Python-implementation throughput."""

    tool: str
    probes: int
    wall_seconds: float

    @property
    def rate_pps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.probes / self.wall_seconds


@dataclass
class ThroughputResult:
    """Table 5: unthrottled send rates plus estimated full-scan times.

    The paper measures each tool's maximum achievable probing rate and
    estimates the full-scan time as (probes from Table 3) / rate.  Here the
    "hardware" is this Python implementation, so absolute rates are
    Python-bound; the FlashRoute-vs-Yarrp ordering and the estimation method
    are the reproduction targets.
    """

    rows: List[ThroughputRow] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["Tool", "Scan Speed (probes/s)", "Estimated Scan Time"],
            [[row.tool, round(row.rate_pps),
              format_scan_time(row.probes / row.rate_pps)
              if row.rate_pps else "-"]
             for row in self.rows],
            title="[Table 5] non-throttled scan speed "
                  "(this Python implementation)")


def run_table5(context: ExperimentContext) -> ThroughputResult:
    """Wall-clock throughput of each engine over one full scan."""
    result = ThroughputResult()

    def measure(tool: str, runner: Callable[[], ScanResult]) -> None:
        with Stopwatch() as watch:
            scan = runner()
        result.rows.append(ThroughputRow(tool=tool, probes=scan.probes_sent,
                                         wall_seconds=watch.elapsed))

    measure("FlashRoute-32",
            lambda: api.flashroute(FlashRouteConfig.flashroute_32()).scan(
                context.network(), targets=context.random_targets))
    measure("FlashRoute-16",
            lambda: api.flashroute(FlashRouteConfig.flashroute_16()).scan(
                context.network(), targets=context.random_targets))
    measure("Yarrp-32",
            lambda: api.yarrp(YarrpConfig.yarrp_32()).scan(
                context.network(), targets=context.random_targets))
    measure("Yarrp-16",
            lambda: api.yarrp(YarrpConfig.yarrp_16()).scan(
                context.network(), targets=context.random_targets))
    return result


# --------------------------------------------------------------------- #
# §5.2: discovery-optimized mode
# --------------------------------------------------------------------- #

@dataclass
class DiscoveryExperimentResult:
    """Discovery-optimized mode vs the exhaustive Yarrp-UDP simulation."""

    discovery: DiscoveryOptimizedResult
    yarrp_udp_sim: ScanResult

    def extra_interfaces(self) -> int:
        return (len(self.discovery.interfaces())
                - self.yarrp_udp_sim.interface_count())

    def render(self) -> str:
        rows = [[scan.tool, scan.interface_count(), scan.probes_sent,
                 format_scan_time(scan.duration)]
                for scan in self.discovery.all_scans()]
        rows.append(["(union)", len(self.discovery.interfaces()),
                     self.discovery.total_probes(),
                     format_scan_time(self.discovery.total_duration())])
        rows.append([self.yarrp_udp_sim.tool,
                     self.yarrp_udp_sim.interface_count(),
                     self.yarrp_udp_sim.probes_sent,
                     format_scan_time(self.yarrp_udp_sim.duration)])
        table = render_table(["Scan", "Interfaces", "Probes", "Time"], rows,
                             title="[§5.2] discovery-optimized mode")
        return (f"{table}\n  extra interfaces over Yarrp-32-UDP: "
                f"{self.extra_interfaces():+d}")


def run_discovery_experiment(context: ExperimentContext,
                             extra_scans: int = 3,
                             length_guided: bool = False
                             ) -> DiscoveryExperimentResult:
    discovery = run_discovery_optimized(
        context.network(), extra_scans=extra_scans,
        targets=context.random_targets, length_guided=length_guided)
    yarrp_sim = api.flashroute(FlashRouteConfig.yarrp32_udp_simulation()).scan(
        context.network(), targets=context.random_targets,
        tool_name="Yarrp-32-UDP (Simulation)")
    return DiscoveryExperimentResult(discovery=discovery,
                                     yarrp_udp_sim=yarrp_sim)


# --------------------------------------------------------------------- #
# §5.3: in-flight destination rewriting
# --------------------------------------------------------------------- #

@dataclass
class RewriteDetectionResult:
    """Checksum-mismatch rates per scan (paper: 0.007%–0.054%)."""

    rows: List[Tuple[str, int, int, float]] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["Scan", "Responses", "Mismatched quotes", "Rate"],
            [[tool, responses, mismatches, f"{rate * 100:.4f}%"]
             for tool, responses, mismatches, rate in self.rows],
            title="[§5.3] in-flight destination modification")


def run_rewrite_detection(context: ExperimentContext,
                          seeds: Tuple[int, ...] = (1, 2, 3)
                          ) -> RewriteDetectionResult:
    """Run several scans with different target draws and collect the
    fraction of responses dropped for checksum/port mismatches."""
    from ..core.targets import random_targets

    result = RewriteDetectionResult()
    for seed in seeds:
        targets = random_targets(context.topology, seed)
        scan = api.flashroute(FlashRouteConfig.flashroute_16(seed=seed)).scan(
            context.network(), targets=targets,
            tool_name=f"FlashRoute-16 (seed {seed})")
        total = scan.responses + scan.mismatched_quotes
        rate = scan.mismatched_quotes / total if total else 0.0
        result.rows.append((scan.tool, scan.responses,
                            scan.mismatched_quotes, rate))
    return result


# --------------------------------------------------------------------- #
# §4.2.2: route completeness (holes)
# --------------------------------------------------------------------- #

@dataclass
class RouteHolesResult:
    """FlashRoute-16 vs FlashRoute-32 route completeness.

    The paper's trade-off: both configurations find the same interfaces,
    but FlashRoute-32 loses fewer responses, so "the routes discovered by
    FlashRoute-32 will have fewer holes".
    """

    rows: List[Tuple[str, int, int, int]] = field(default_factory=list)

    def holes(self, tool: str) -> int:
        for row_tool, holes, _interfaces, _probes in self.rows:
            if row_tool == tool:
                return holes
        raise KeyError(tool)

    def render(self) -> str:
        return render_table(
            ["Tool", "Route holes", "Interfaces", "Probes"],
            [list(row) for row in self.rows],
            title="[§4.2.2] route completeness")


def run_route_holes(context: ExperimentContext,
                    probing_rate: float = 100_000.0) -> RouteHolesResult:
    from ..analysis.intrusiveness import count_route_holes

    result = RouteHolesResult()
    for label, config in (
            ("FlashRoute-16",
             FlashRouteConfig.flashroute_16(probing_rate=probing_rate)),
            ("FlashRoute-32",
             FlashRouteConfig.flashroute_32(probing_rate=probing_rate))):
        network = context.network(log_probes=True)
        scan = api.flashroute(config).scan(network,
                                       targets=context.random_targets,
                                       tool_name=label)
        holes = count_route_holes(scan, network.probe_log)
        result.rows.append((label, holes, scan.interface_count(),
                            scan.probes_sent))
    return result


# --------------------------------------------------------------------- #
# Ablations (DESIGN.md §5)
# --------------------------------------------------------------------- #

@dataclass
class AblationResult:
    """Generic sweep result: label -> metrics rows."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)


def run_proximity_span_ablation(context: ExperimentContext,
                                spans: Tuple[int, ...] = (0, 1, 2, 3, 5, 8, 13)
                                ) -> AblationResult:
    """§5.4 future work: how the proximity span trades coverage for error.

    Reports, per span: distance coverage, prediction exactness, and the
    probes a FlashRoute-16 scan needs when using that span.
    """
    from ..analysis.distances import prediction_accuracy

    measured = one_probe_distances(context.network(), context.hitlist)
    num_prefixes = context.topology.num_prefixes
    result = AblationResult(
        title="[ablation] proximity span",
        headers=["Span", "Coverage", "Exact predictions", "Probes"])
    for span in spans:
        predicted = predict_distances(measured, num_prefixes, span)
        coverage = (len(measured) + len(predicted)) / num_prefixes
        accuracy = prediction_accuracy(measured, span, num_prefixes)
        scan = api.flashroute(FlashRouteConfig.flashroute_16(
            proximity_span=span)).scan(
            context.network(), targets=context.random_targets,
            tool_name=f"span-{span}")
        result.rows.append([span, f"{coverage * 100:.1f}%",
                            f"{accuracy.fraction_exact() * 100:.1f}%"
                            if accuracy.samples else "-",
                            scan.probes_sent])
    return result


def run_round_pacing_ablation(context: ExperimentContext,
                              round_seconds: Tuple[float, ...] = (0.0, 0.5,
                                                                  1.0, 2.0)
                              ) -> AblationResult:
    """The >= 1 s round pacing (§3.2): responses must arrive in time to
    stop probing; pacing below the response latency wastes probes."""
    result = AblationResult(
        title="[ablation] round pacing",
        headers=["Round seconds", "Probes", "Interfaces", "Scan time"])
    for seconds in round_seconds:
        config = FlashRouteConfig.flashroute_16(round_seconds=seconds)
        scan = api.flashroute(config).scan(context.network(),
                                       targets=context.random_targets,
                                       tool_name=f"pacing-{seconds}")
        result.rows.append([seconds, scan.probes_sent,
                            scan.interface_count(),
                            format_scan_time(scan.duration)])
    return result


def run_granularity_future_work(context: ExperimentContext,
                                fine_granularity: int = 26,
                                extra_scans: int = 3) -> AblationResult:
    """Answer the paper's §5.4 open question in simulation.

    The paper proposes two ways to find the distinct internal paths hiding
    inside a /24 — scan at finer granularity (one target per /28, paying
    an exponentially larger DCB array) or run the discovery-optimized mode
    with *varying destination addresses* — and leaves "which approach is
    more productive" to future work.  This experiment runs both (plus the
    /24 baseline) over the same topology and compares interfaces found per
    probe spent.
    """
    from ..core.dcb import projected_scan_memory

    result = AblationResult(
        title="[§5.4 future work] fine granularity vs dst-varying discovery",
        headers=["Approach", "Interfaces", "Probes", "Interfaces/Kprobe",
                 "Full-scan DCB memory"])

    def add(label, interfaces, probes, granularity):
        memory = projected_scan_memory(granularity)
        result.rows.append([
            label, interfaces, probes,
            round(interfaces / max(probes / 1000.0, 0.001), 1),
            f"{memory / 2**30:.1f} GiB"])

    baseline = api.flashroute(FlashRouteConfig.flashroute_32()).scan(
        context.network(), targets=context.random_targets,
        tool_name="baseline /24")
    add("baseline one-per-/24", baseline.interface_count(),
        baseline.probes_sent, 24)

    fine = api.flashroute(FlashRouteConfig.flashroute_32(
        granularity=fine_granularity)).scan(
        context.network(), tool_name=f"fine /{fine_granularity}")
    add(f"one-per-/{fine_granularity}", fine.interface_count(),
        fine.probes_sent, fine_granularity)

    varied = run_discovery_experiment_for_ablation(context, extra_scans)
    add(f"discovery + varying dst ({extra_scans} extras)",
        len(varied.interfaces()), varied.total_probes(), 24)
    return result


def run_discovery_experiment_for_ablation(context: ExperimentContext,
                                          extra_scans: int):
    from ..core.discovery import run_discovery_optimized

    return run_discovery_optimized(context.network(),
                                   extra_scans=extra_scans,
                                   targets=context.random_targets,
                                   vary_destination=True)


def run_discovery_start_ablation(context: ExperimentContext,
                                 extra_scans: int = 3) -> AblationResult:
    """§5.4: uniform-random vs length-guided extra-scan starting TTLs."""
    result = AblationResult(
        title="[ablation] discovery-optimized starting TTL policy",
        headers=["Policy", "Union interfaces", "Extra-scan probes"])
    for label, guided in (("uniform [1,32]", False),
                          ("length-guided", True)):
        experiment = run_discovery_experiment(context,
                                              extra_scans=extra_scans,
                                              length_guided=guided)
        extra_probes = sum(scan.probes_sent
                           for scan in experiment.discovery.extras)
        result.rows.append([label, len(experiment.discovery.interfaces()),
                            extra_probes])
    return result
