"""Drivers for the paper's Tables 1–4.

Each ``run_*`` function executes the scans a table needs and returns a
:class:`TableResult` with structured rows and a paper-style text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .. import api
from ..analysis.intrusiveness import TopologyMap, analyze_overprobing
from ..analysis.report import render_table
from ..baselines.yarrp import YarrpConfig
from ..core.config import FlashRouteConfig, PreprobeMode
from ..core.results import ScanResult, format_scan_time
from .common import PAPER_RATE_LIMIT, ExperimentContext


@dataclass
class TableResult:
    """Structured rows plus rendering for one reproduced table."""

    table_id: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    scans: Dict[str, ScanResult] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(self.headers, self.rows,
                            title=f"[{self.table_id}]")

    def row_by_label(self, label: str) -> List[object]:
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(label)


# --------------------------------------------------------------------- #
# Table 1: impact of redundancy elimination during backward probing
# --------------------------------------------------------------------- #

def run_table1(context: ExperimentContext) -> TableResult:
    """Full scans with/without convergence termination, split 16 and 32."""
    result = TableResult(
        table_id="Table 1: impact of redundancy elimination",
        headers=["Split-TTL", "Redundancy removal", "Interfaces", "Probes",
                 "Scan time"])
    for split in (32, 16):
        for removal in (True, False):
            config = FlashRouteConfig(split_ttl=split, gap_limit=5,
                                      preprobe=PreprobeMode.RANDOM,
                                      redundancy_removal=removal)
            label = f"{split}/{'On' if removal else 'Off'}"
            scan = api.flashroute(config).scan(
                context.network(), targets=context.random_targets,
                tool_name=label)
            result.scans[label] = scan
            result.rows.append([split, "On" if removal else "Off",
                                scan.interface_count(), scan.probes_sent,
                                format_scan_time(scan.duration)])
    return result


# --------------------------------------------------------------------- #
# Table 2: effect of preprobing
# --------------------------------------------------------------------- #

def run_table2(context: ExperimentContext) -> TableResult:
    """Six scans: split {32, 16} x preprobing {hitlist, random, none}."""
    result = TableResult(
        table_id="Table 2: effect of preprobing",
        headers=["Configuration", "Interfaces", "Probes", "Scan Time"])
    modes = [(PreprobeMode.HITLIST, "hitlist preprobing"),
             (PreprobeMode.RANDOM, "random preprobing"),
             (PreprobeMode.NONE, "no preprobing")]
    for split in (32, 16):
        for mode, mode_label in modes:
            label = f"{split}/{mode_label}"
            config = FlashRouteConfig(split_ttl=split, preprobe=mode)
            scan = api.flashroute(config).scan(
                context.network(), targets=context.random_targets,
                tool_name=label)
            result.scans[label] = scan
            result.rows.append([label, scan.interface_count(),
                                scan.probes_sent,
                                format_scan_time(scan.duration)])
    return result


# --------------------------------------------------------------------- #
# Table 3: tool comparison
# --------------------------------------------------------------------- #

def run_table3(context: ExperimentContext,
               include_scamper: bool = True) -> TableResult:
    """FlashRoute-16/32, Yarrp-16/32, Scamper-16, Yarrp-32-UDP simulation.

    Tools are resolved through the scanner registry
    (:mod:`repro.core.scanner`) with default options — the exact
    configurations their registrations encode, which are the paper's
    Table 3 configurations.
    """
    result = TableResult(
        table_id="Table 3: full /24 traceroute scan comparison",
        headers=["Tool", "Interfaces", "Probes", "Scan Time"])

    def add(label: str, tool: str) -> None:
        scan = context.tool_scanner(tool).scan(
            context.network(), targets=context.random_targets,
            tool_name=label)
        result.scans[label] = scan
        result.rows.append([label, scan.interface_count(), scan.probes_sent,
                            format_scan_time(scan.duration)])

    add("FlashRoute-16", "flashroute-16")
    add("FlashRoute-32", "flashroute-32")
    add("Yarrp-16", "yarrp-16")
    add("Yarrp-32", "yarrp-32")
    if include_scamper:
        add("Scamper-16", "scamper-16")
    add("Yarrp-32-UDP (Simulation)", "yarrp-32-udp-sim")
    return result


def run_neighborhood_protection(context: ExperimentContext) -> TableResult:
    """The §4.2.1 side experiment: Yarrp-32 with 3- and 6-hop protection."""
    result = TableResult(
        table_id="Yarrp neighborhood protection (§4.2.1)",
        headers=["Configuration", "Interfaces", "Probes", "Scan Time",
                 "Skipped probes"])
    for radius in (0, 3, 6):
        config = YarrpConfig.yarrp_32(neighborhood_radius=radius)
        label = config.label
        scanner = api.yarrp(config)
        scan = scanner.scan(context.network(), targets=context.random_targets,
                            tool_name=label)
        result.scans[label] = scan
        result.rows.append([label, scan.interface_count(), scan.probes_sent,
                            format_scan_time(scan.duration),
                            scan.skipped_probes])
    return result


# --------------------------------------------------------------------- #
# Table 4: interface overprobing
# --------------------------------------------------------------------- #

def run_table4(context: ExperimentContext,
               rate_limit: int = PAPER_RATE_LIMIT,
               probing_rate: float = 100_000.0) -> TableResult:
    """Replay each tool's probe timeline against a reference topology.

    Following the paper, the scans run at the full 100 Kpps (the virtual
    clock makes that free) and probes are mapped to "the hop discovered by
    Scamper for the same destination address at the same TTL distance".
    That phrasing presumes *complete* per-destination routes: Doubletree's
    premise is that the segment below a convergence point was already
    discovered, so Scamper's output determines hops even at TTLs it skipped
    for a given destination.  Our Scamper model records only the hops it
    probed, so the completed map is built from an exhaustive reference scan
    at Scamper's 10x-lower rate — the same per-destination hop truth the
    paper's completed Scamper topology provides.
    """
    # The reference network runs without rate limiting: the map stands for
    # ground-truth routes, and the slow reference scan's own ICMP throttling
    # (an artifact of its synchronized per-TTL rounds) must not blind the
    # replay to exactly the shared interfaces being studied.
    reference = api.flashroute(FlashRouteConfig.yarrp32_udp_simulation(
        probing_rate=probing_rate / 10.0)).scan(
        context.network(rate_limit=2**31), targets=context.random_targets,
        tool_name="reference (complete routes @10% rate)")
    topology_map = TopologyMap(reference)

    result = TableResult(
        table_id="Table 4: interface overprobing",
        headers=["Tool and Configuration", "Overprobed Interfaces",
                 "Dropped Probes"])
    result.scans["scamper-reference"] = reference

    runs = [
        ("FlashRoute-16",
         lambda net: api.flashroute(FlashRouteConfig.flashroute_16(
             probing_rate=probing_rate)).scan(
             net, targets=context.random_targets, tool_name="FlashRoute-16")),
        ("FlashRoute-32",
         lambda net: api.flashroute(FlashRouteConfig.flashroute_32(
             probing_rate=probing_rate)).scan(
             net, targets=context.random_targets, tool_name="FlashRoute-32")),
        ("Yarrp-32",
         lambda net: api.yarrp(YarrpConfig.yarrp_32(
             probing_rate=probing_rate)).scan(
             net, targets=context.random_targets, tool_name="Yarrp-32")),
        ("Yarrp-32 3-hop protection",
         lambda net: api.yarrp(YarrpConfig.yarrp_32(
             probing_rate=probing_rate, neighborhood_radius=3)).scan(
             net, targets=context.random_targets,
             tool_name="Yarrp-32 3-hop protection")),
        ("Yarrp-32 6-hop protection",
         lambda net: api.yarrp(YarrpConfig.yarrp_32(
             probing_rate=probing_rate, neighborhood_radius=6)).scan(
             net, targets=context.random_targets,
             tool_name="Yarrp-32 6-hop protection")),
    ]
    for label, runner in runs:
        network = context.network(log_probes=True)
        scan = runner(network)
        report = analyze_overprobing(label, network.probe_log, topology_map,
                                     rate_limit=rate_limit)
        result.scans[label] = scan
        result.rows.append([label, report.overprobed_interfaces,
                            report.dropped_probes])
    return result
