"""Drivers for the paper's Figures 3, 4, 6, 7 and 8.

Each ``run_*`` function produces a small result object carrying the series
the figure plots plus a text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.distances import (
    DifferenceDistribution,
    measurement_accuracy,
    prediction_accuracy,
    prediction_neighbourhood_coverage,
)
from ..analysis.hitlist_bias import HitlistBiasReport, analyze_hitlist_bias
from ..analysis.jaccard import jaccard_by_hops_from_destination
from ..analysis.metrics import targets_probed_per_ttl
from ..analysis.report import render_distribution, render_pdf_cdf, render_table
from .. import api
from ..baselines.scamper import ScamperConfig
from ..baselines.traceroute import ClassicTraceroute
from ..core.config import FlashRouteConfig, PreprobeMode
from ..core.encoding import decode_response, encode_probe
from ..core.results import ScanResult, format_scan_time
from ..net.icmp import ResponseKind, distance_from_unreachable
from ..simnet.network import SimulatedNetwork
from .common import ExperimentContext

_PREPROBE_TTL = 32


def one_probe_distances(network: SimulatedNetwork,
                        targets: Dict[int, int],
                        send_rate: float = 1000.0) -> Dict[int, int]:
    """FlashRoute's one-probe hop-distance measurement for each target.

    Returns prefix-offset -> measured distance for the targets that
    answered with port-unreachable (paper §3.3.1).
    """
    measured: Dict[int, int] = {}
    base_prefix = network.topology.base_prefix
    gap = 1.0 / send_rate
    now = 0.0
    for prefix in sorted(targets):
        dst = targets[prefix]
        marking = encode_probe(dst, _PREPROBE_TTL, now, is_preprobe=True)
        response = network.send_probe(dst, _PREPROBE_TTL, now,
                                      marking.src_port, ipid=marking.ipid,
                                      udp_length=marking.udp_length)
        now += gap
        if response is None:
            continue
        if response.kind is not ResponseKind.PORT_UNREACHABLE:
            continue
        if response.responder != decode_response(response).dst:
            continue
        distance = distance_from_unreachable(response, _PREPROBE_TTL)
        if distance is not None:
            measured[prefix - base_prefix] = distance
    return measured


# --------------------------------------------------------------------- #
# Figures 3 and 4: distance measurement and prediction accuracy
# --------------------------------------------------------------------- #

@dataclass
class DistanceAccuracyResult:
    """Figure 3 (and the Fig. 4 inputs): measured vs traceroute distances."""

    measured: Dict[int, int]
    triggering: Dict[int, int]
    distribution: DifferenceDistribution

    def render(self) -> str:
        header = ("[Figure 3] triggering TTL minus one-probe distance "
                  f"({self.distribution.samples} destinations)")
        return render_pdf_cdf(self.distribution.pdf, header)


def run_fig3(context: ExperimentContext,
             traceroute_start_time: Optional[float] = None
             ) -> DistanceAccuracyResult:
    """One-probe measurement vs the classic-traceroute triggering TTL.

    The traceroute pass starts one route-dynamics epoch later, so the
    churn the paper blames for most of the ±1 discrepancies can act
    between the two measurements.
    """
    if traceroute_start_time is None:
        epoch = context.topology.config.flap_epoch_seconds
        traceroute_start_time = epoch * 1.05
    measured = one_probe_distances(context.network(), context.hitlist)
    tracer = ClassicTraceroute(context.network(),
                               start_time=traceroute_start_time)
    base_prefix = context.topology.base_prefix
    triggering: Dict[int, int] = {}
    for offset in measured:
        dst = context.hitlist[base_prefix + offset]
        ttl = tracer.triggering_ttl(dst)
        if ttl is not None:
            triggering[offset] = ttl
    distribution = measurement_accuracy(measured, triggering)
    return DistanceAccuracyResult(measured=measured, triggering=triggering,
                                  distribution=distribution)


@dataclass
class PredictionAccuracyResult:
    """Figure 4: proximity-span prediction vs measured/traceroute distance."""

    distribution: DifferenceDistribution
    neighbourhood_coverage: float
    proximity_span: int

    def render(self) -> str:
        header = (f"[Figure 4] predicted minus reference distance "
                  f"(span {self.proximity_span}, "
                  f"{self.distribution.samples} predictable targets, "
                  f"{self.neighbourhood_coverage * 100:.1f}% of measured "
                  f"blocks have a measured neighbour)")
        return render_pdf_cdf(self.distribution.pdf, header)


def run_fig4(context: ExperimentContext, proximity_span: int = 5,
             fig3: Optional[DistanceAccuracyResult] = None
             ) -> PredictionAccuracyResult:
    """Leave-one-out prediction error against the traceroute reference."""
    if fig3 is None:
        fig3 = run_fig3(context)
    distribution = prediction_accuracy(
        fig3.measured, proximity_span, context.topology.num_prefixes,
        reference=fig3.triggering)
    coverage = prediction_neighbourhood_coverage(fig3.measured,
                                                 proximity_span)
    return PredictionAccuracyResult(distribution=distribution,
                                    neighbourhood_coverage=coverage,
                                    proximity_span=proximity_span)


# --------------------------------------------------------------------- #
# Figure 6: gap limit sweep
# --------------------------------------------------------------------- #

@dataclass
class GapLimitSweepResult:
    """Figure 6: discovered interfaces and scan time per gap limit."""

    rows: List[Tuple[int, int, float]] = field(default_factory=list)

    def interfaces_series(self) -> Dict[int, int]:
        return {gap: interfaces for gap, interfaces, _time in self.rows}

    def time_series(self) -> Dict[int, float]:
        return {gap: duration for gap, _interfaces, duration in self.rows}

    def render(self) -> str:
        return render_table(
            ["GapLimit", "Interfaces", "Scan time"],
            [[gap, interfaces, format_scan_time(duration)]
             for gap, interfaces, duration in self.rows],
            title="[Figure 6] gap-limit sweep (split 16, random preprobing)")


def run_fig6(context: ExperimentContext,
             gap_limits: Tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7, 8)
             ) -> GapLimitSweepResult:
    """Sweep GapLimit with the paper's §4.1.2 configuration."""
    result = GapLimitSweepResult()
    for gap in gap_limits:
        config = FlashRouteConfig(split_ttl=16, gap_limit=gap,
                                  preprobe=PreprobeMode.RANDOM)
        scan = api.flashroute(config).scan(context.network(),
                                       targets=context.random_targets,
                                       tool_name=f"FlashRoute-16/gap{gap}")
        result.rows.append((gap, scan.interface_count(), scan.duration))
    return result


# --------------------------------------------------------------------- #
# Figure 7: targets probed per TTL
# --------------------------------------------------------------------- #

@dataclass
class ProbedTtlResult:
    """Figure 7: per-TTL probing histograms of FlashRoute-16 and Scamper."""

    flashroute: Dict[int, int]
    scamper: Dict[int, int]

    def render(self) -> str:
        ttls = sorted(set(self.flashroute) | set(self.scamper))
        rows = [[ttl, self.flashroute.get(ttl, 0), self.scamper.get(ttl, 0)]
                for ttl in ttls]
        return render_table(["TTL", "FlashRoute-16", "Scamper"], rows,
                            title="[Figure 7] targets with routes probed "
                                  "at a given TTL")


def run_fig7(context: ExperimentContext) -> ProbedTtlResult:
    flashroute = api.flashroute(FlashRouteConfig.flashroute_16()).scan(
        context.network(), targets=context.random_targets,
        tool_name="FlashRoute-16")
    scamper = api.scamper(ScamperConfig.scamper_16()).scan(
        context.network(), targets=context.random_targets)
    return ProbedTtlResult(
        flashroute=targets_probed_per_ttl(flashroute),
        scamper=targets_probed_per_ttl(scamper))


# --------------------------------------------------------------------- #
# Figure 8 and §5.1: hitlist bias
# --------------------------------------------------------------------- #

@dataclass
class HitlistBiasResult:
    """Figure 8 plus the §5.1 report."""

    jaccard_by_hop: Dict[int, float]
    report: HitlistBiasReport
    hitlist_scan: ScanResult
    random_scan: ScanResult

    def render(self) -> str:
        figure = render_distribution(
            self.jaccard_by_hop,
            "[Figure 8] Jaccard index of interface sets by hop-distance "
            "from destination", x_label="hops-back", y_label="jaccard")
        report = self.report
        table = render_table(
            ["Quantity", "Hitlist scan", "Random scan"],
            [["interfaces", report.hitlist_interfaces,
              report.random_interfaces],
             ["responsive targets", report.hitlist_responsive,
              report.random_responsive],
             ["longer routes (vs other)", report.hitlist_longer,
              report.random_longer],
             ["extra tail interfaces", report.hitlist_extra_tail_interfaces,
              report.random_extra_tail_interfaces],
             ["targets on other scan's routes",
              report.hitlist_on_random_routes,
              report.random_on_hitlist_routes]],
            title="[§5.1] hitlist-bias quantities")
        loops = (f"loops on routes to unresponsive random targets: "
                 f"{report.looped_routes} / "
                 f"{report.unresponsive_random_with_responsive_hitlist} "
                 f"({report.loop_fraction() * 100:.1f}%)")
        return "\n".join([figure, table, loops])


def run_fig8(context: ExperimentContext) -> HitlistBiasResult:
    """Exhaustive (TTL 1..32) scans of hitlist vs random representatives."""
    exhaustive = FlashRouteConfig.yarrp32_udp_simulation()
    hitlist_scan = api.flashroute(exhaustive).scan(
        context.network(), targets=context.hitlist,
        tool_name="exhaustive-hitlist")
    random_scan = api.flashroute(exhaustive).scan(
        context.network(), targets=context.random_targets,
        tool_name="exhaustive-random")
    return HitlistBiasResult(
        jaccard_by_hop=jaccard_by_hops_from_destination(hitlist_scan,
                                                        random_scan),
        report=analyze_hitlist_bias(hitlist_scan, random_scan),
        hitlist_scan=hitlist_scan,
        random_scan=random_scan)
