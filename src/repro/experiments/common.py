"""Shared scaffolding for the experiment drivers.

Every experiment runs against a seeded topology sized by the
``REPRO_BENCH_PREFIXES`` environment variable (default 4096) so the whole
benchmark suite can be scaled up or down without touching code.  Targets
are drawn once per topology (seed 1) so every tool traces the same
representatives, as in the paper's methodology.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional

from ..core.scanner import Scanner, ScannerOptions, create_scanner
from ..core.targets import hitlist_targets, random_targets
from ..simnet.config import TopologyConfig
from ..simnet.faults import FaultModel
from ..simnet.network import SimulatedNetwork
from ..simnet.topology import Topology

#: The paper's probing rates.
PAPER_FLASHROUTE_RATE = 100_000.0
PAPER_SCAMPER_RATE = 10_000.0
PAPER_RATE_LIMIT = 500

DEFAULT_BENCH_PREFIXES = 4096
_ENV_PREFIXES = "REPRO_BENCH_PREFIXES"
_ENV_SEED = "REPRO_BENCH_SEED"


def bench_prefix_count() -> int:
    """Scanned-space size for benchmarks, from the environment."""
    value = os.environ.get(_ENV_PREFIXES)
    if value is None:
        return DEFAULT_BENCH_PREFIXES
    count = int(value)
    if count <= 0:
        raise ValueError(f"{_ENV_PREFIXES} must be positive, got {value!r}")
    return count


def bench_seed() -> int:
    return int(os.environ.get(_ENV_SEED, "20201027"))


@lru_cache(maxsize=4)
def _cached_topology(num_prefixes: int, seed: int) -> Topology:
    return Topology(TopologyConfig(num_prefixes=num_prefixes, seed=seed))


def bench_topology(num_prefixes: Optional[int] = None,
                   seed: Optional[int] = None) -> Topology:
    """The (cached) benchmark topology; one instance per size+seed."""
    return _cached_topology(
        num_prefixes if num_prefixes is not None else bench_prefix_count(),
        seed if seed is not None else bench_seed())


@dataclass
class ExperimentContext:
    """A topology plus the shared target draws every tool traces."""

    topology: Topology
    target_seed: int = 1
    random_targets: Dict[int, int] = field(default_factory=dict)
    hitlist: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.random_targets:
            self.random_targets = random_targets(self.topology,
                                                 self.target_seed)
        if not self.hitlist:
            self.hitlist = hitlist_targets(self.topology)

    def network(self, log_probes: bool = False,
                rate_limit: Optional[int] = None,
                faults: Optional[FaultModel] = None) -> SimulatedNetwork:
        """A fresh per-scan network (clean rate-limit bins and counters)."""
        return SimulatedNetwork(self.topology, log_probes=log_probes,
                                rate_limit=rate_limit, faults=faults)

    def tool_scanner(self, name: str,
                     options: Optional[ScannerOptions] = None) -> Scanner:
        """A fresh scanner by registry name (see ``repro.core.scanner``)."""
        return create_scanner(name, options)

    @classmethod
    def for_bench(cls, num_prefixes: Optional[int] = None) -> "ExperimentContext":
        return cls(topology=bench_topology(num_prefixes))
