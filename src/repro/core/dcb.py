"""The destination control state (paper §3.4, Listing 1 and Figure 5).

One *destination control block* (DCB) per /24 prefix tracks the probing
progress toward that prefix's representative address.  The blocks live in a
flat array indexed by prefix, so the receive path locates the DCB of any
response in O(1) from the quoted destination address; a circular doubly
linked list is overlaid on the array in random-permutation order, so the
send path walks destinations in shuffled order and unlinks finished ones in
O(1).

The C++ original stores five scalars per DCB plus two link pointers; we
store the same fields in parallel ``bytearray``/``array`` columns (struct-of-
arrays) — the Python-idiomatic equivalent of its compact 900 MB layout, and
several times smaller and faster than one object per destination.

Thread-safety note: the paper guards each DCB with a mutex because separate
send/receive threads touch ``nextBackwardHop`` and ``forwardHorizon``.  Our
engines interleave sending and receiving deterministically on a virtual
clock (see DESIGN.md §6), so the columns need no locking; the same
information-flow races are modeled by only draining responses that arrived
before the virtual send time.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

FLAG_DEST_REACHED = 0x01
FLAG_REMOVED = 0x02
FLAG_DISTANCE_MEASURED = 0x04
FLAG_DISTANCE_PREDICTED = 0x08
FLAG_PREPROBE_FOLDED = 0x10

_NO_LINK = -1


@dataclass
class DCBView:
    """A readable snapshot of one DCB, for tests and debugging."""

    index: int
    destination: int
    split_ttl: int
    next_backward: int
    next_forward: int
    forward_horizon: int
    dest_reached: bool
    removed: bool
    distance_measured: bool
    distance_predicted: bool


class DCBArray:
    """Array of destination control blocks plus the overlaid ring."""

    def __init__(self, destinations: List[int], split_ttl: int,
                 gap_limit: int) -> None:
        if not destinations:
            raise ValueError("need at least one destination")
        if not 1 <= split_ttl <= 255:
            raise ValueError("split_ttl out of byte range")
        size = len(destinations)
        self.size = size
        self.destination = list(destinations)
        self.split = bytearray([split_ttl] * size)
        self.next_backward = bytearray([split_ttl] * size)
        self.next_forward = bytearray([min(split_ttl + 1, 255)] * size)
        self.forward_horizon = bytearray(
            [min(split_ttl + gap_limit, 255)] * size)
        self.flags = bytearray(size)
        self.next_index = array("i", [_NO_LINK] * size)
        self.prev_index = array("i", [_NO_LINK] * size)
        self._head = _NO_LINK
        self._live = 0

    # ------------------------------------------------------------------ #
    # Ring construction and maintenance
    # ------------------------------------------------------------------ #

    def link_ring(self, order: Iterable[int]) -> None:
        """Thread the circular list through the array in ``order``.

        ``order`` is the random permutation of array indexes; indexes absent
        from it (excluded prefixes) keep their slots but are marked removed,
        mirroring the paper's handling of reserved/excluded space.
        """
        sequence = list(order)
        if not sequence:
            raise ValueError("permutation order is empty")
        for flag_index in range(self.size):
            self.flags[flag_index] |= FLAG_REMOVED
        previous = sequence[-1]
        for index in sequence:
            if not 0 <= index < self.size:
                raise IndexError(index)
            self.prev_index[index] = previous
            self.next_index[previous] = index
            self.flags[index] &= ~FLAG_REMOVED & 0xFF
            previous = index
        self._head = sequence[0]
        self._live = len(sequence)

    def __len__(self) -> int:
        return self._live

    @property
    def head(self) -> int:
        """Current entry point of the ring, or -1 when empty."""
        return self._head

    def remove(self, index: int) -> None:
        """Unlink a finished destination from the ring in O(1)."""
        if self.flags[index] & FLAG_REMOVED:
            return
        nxt = self.next_index[index]
        prv = self.prev_index[index]
        if nxt == index:  # last element
            self._head = _NO_LINK
        else:
            self.next_index[prv] = nxt
            self.prev_index[nxt] = prv
            if self._head == index:
                self._head = nxt
        self.flags[index] |= FLAG_REMOVED
        self._live -= 1

    def iter_ring(self) -> Iterator[int]:
        """One full trip around the ring as it currently stands.

        Safe against removal of the yielded element (the successor is read
        before control returns to the caller), which is exactly the sender's
        walk-and-unlink pattern.
        """
        count = self._live
        index = self._head
        while count > 0 and index != _NO_LINK:
            nxt = self.next_index[index]
            yield index
            index = nxt
            count -= 1

    # ------------------------------------------------------------------ #
    # Flag helpers
    # ------------------------------------------------------------------ #

    def is_removed(self, index: int) -> bool:
        return bool(self.flags[index] & FLAG_REMOVED)

    def mark_dest_reached(self, index: int) -> None:
        self.flags[index] |= FLAG_DEST_REACHED

    def dest_reached(self, index: int) -> bool:
        return bool(self.flags[index] & FLAG_DEST_REACHED)

    def set_distance(self, index: int, distance: int,
                     predicted: bool) -> None:
        """Install a measured/predicted hop distance as the split point."""
        self.flags[index] |= (FLAG_DISTANCE_PREDICTED if predicted
                              else FLAG_DISTANCE_MEASURED)
        self.split[index] = distance
        self.next_backward[index] = distance
        self.next_forward[index] = min(distance + 1, 255)

    def view(self, index: int) -> DCBView:
        """A snapshot of one block (tests, debugging, docs examples)."""
        flags = self.flags[index]
        return DCBView(
            index=index,
            destination=self.destination[index],
            split_ttl=self.split[index],
            next_backward=self.next_backward[index],
            next_forward=self.next_forward[index],
            forward_horizon=self.forward_horizon[index],
            dest_reached=bool(flags & FLAG_DEST_REACHED),
            removed=bool(flags & FLAG_REMOVED),
            distance_measured=bool(flags & FLAG_DISTANCE_MEASURED),
            distance_predicted=bool(flags & FLAG_DISTANCE_PREDICTED),
        )

    # ------------------------------------------------------------------ #
    # Checkpoint serialization
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the full control state, including
        the ring links, for checkpoint/resume.  Byte columns travel as hex
        strings; the link arrays as plain int lists."""
        return {
            "size": self.size,
            "destination": list(self.destination),
            "split": self.split.hex(),
            "next_backward": self.next_backward.hex(),
            "next_forward": self.next_forward.hex(),
            "forward_horizon": self.forward_horizon.hex(),
            "flags": self.flags.hex(),
            "next_index": list(self.next_index),
            "prev_index": list(self.prev_index),
            "head": self._head,
            "live": self._live,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        if state["size"] != self.size:
            raise ValueError(
                f"checkpointed DCB array has {state['size']} slots, "
                f"this scan has {self.size}")
        self.destination = list(state["destination"])
        self.split = bytearray.fromhex(state["split"])
        self.next_backward = bytearray.fromhex(state["next_backward"])
        self.next_forward = bytearray.fromhex(state["next_forward"])
        self.forward_horizon = bytearray.fromhex(state["forward_horizon"])
        self.flags = bytearray.fromhex(state["flags"])
        self.next_index = array("i", state["next_index"])
        self.prev_index = array("i", state["prev_index"])
        self._head = state["head"]
        self._live = state["live"]

    def memory_footprint(self) -> int:
        """Approximate bytes used by the control state (paper: ~900 MB for
        the full 2^24-slot array; ours scales with the scanned space)."""
        import sys
        total = sys.getsizeof(self.destination)
        total += sum(sys.getsizeof(column) for column in (
            self.split, self.next_backward, self.next_forward,
            self.forward_horizon, self.flags))
        total += self.next_index.itemsize * len(self.next_index)
        total += self.prev_index.itemsize * len(self.prev_index)
        return total


#: Bytes one DCB occupies in the C++ original (Listing 1's fields, the two
#: 32-bit links, a mutex, and allocator overhead): the paper reports
#: ~900 MB for the 2^24-slot /24 array, i.e. ~56 bytes per slot.
PAPER_BYTES_PER_DCB = 56


def projected_scan_memory(prefix_length: int = 24,
                          bytes_per_dcb: int = PAPER_BYTES_PER_DCB) -> int:
    """Memory the control state would need at one target per ``/prefix_length``.

    Reproduces the paper's §5.4 scaling argument: the array grows
    exponentially with the prefix length — ~900 MB at /24, under 15 GB at
    /28 (still feasible), ~230 GB at /32 (impractical).
    """
    if not 0 <= prefix_length <= 32:
        raise ValueError("prefix_length must be within [0, 32]")
    if bytes_per_dcb <= 0:
        raise ValueError("bytes_per_dcb must be positive")
    return (1 << prefix_length) * bytes_per_dcb


def initial_order(size: int, seed: int,
                  excluded: Optional[Iterable[int]] = None) -> List[int]:
    """The shuffled DCB order: a Feistel permutation of the array indexes,
    with excluded slots dropped (they stay in the array but outside the
    ring, as in the paper's initialization §3.4)."""
    from .permutation import FeistelPermutation

    banned = frozenset(excluded) if excluded is not None else frozenset()
    permutation = FeistelPermutation(size, seed)
    return [value for value in permutation if value not in banned]
