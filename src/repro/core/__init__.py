"""FlashRoute core: the paper's primary contribution.

Probe encoding, on-the-fly permutations, destination control blocks, the
preprobing distance measurement, the round-based backward/forward prober,
and the discovery-optimized mode.
"""

from .config import FlashRouteConfig, PreprobeMode
from .dcb import DCBArray, DCBView, PAPER_BYTES_PER_DCB, initial_order, projected_scan_memory
from .discovery import DiscoveryOptimizedResult, run_discovery_optimized
from .output import (
    format_route,
    format_scan_report,
    hops_csv_text,
    load_json,
    read_json,
    result_from_dict,
    result_to_dict,
    save_json,
    write_hops_csv,
    write_json,
)
from .encoding import (
    DecodedProbe,
    EncodingError,
    ProbeMarking,
    decode_response,
    destination_intact,
    encode_probe,
    rtt_ms,
    yarrp_elapsed_from_seq,
    yarrp_tcp_seq,
)
from .permutation import FeistelPermutation, MultiplicativeCycle, PermutationError
from .preprobe import PreprobeOutcome, clamp_distance, predict_distances
from .prober import FlashRoute
from .results import ScanResult, format_scan_time, union_interfaces
from .scanner import (
    Scanner,
    ScannerOptions,
    create_scanner,
    register_scanner,
    scanner_names,
    unregister_scanner,
)
from .targets import hitlist_targets, random_targets, targets_from_file

__all__ = [
    "FlashRouteConfig",
    "PreprobeMode",
    "DCBArray",
    "DCBView",
    "PAPER_BYTES_PER_DCB",
    "initial_order",
    "projected_scan_memory",
    "DiscoveryOptimizedResult",
    "run_discovery_optimized",
    "format_route",
    "format_scan_report",
    "hops_csv_text",
    "load_json",
    "read_json",
    "result_from_dict",
    "result_to_dict",
    "save_json",
    "write_hops_csv",
    "write_json",
    "DecodedProbe",
    "EncodingError",
    "ProbeMarking",
    "decode_response",
    "destination_intact",
    "encode_probe",
    "rtt_ms",
    "yarrp_elapsed_from_seq",
    "yarrp_tcp_seq",
    "FeistelPermutation",
    "MultiplicativeCycle",
    "PermutationError",
    "PreprobeOutcome",
    "clamp_distance",
    "predict_distances",
    "FlashRoute",
    "ScanResult",
    "format_scan_time",
    "union_interfaces",
    "Scanner",
    "ScannerOptions",
    "create_scanner",
    "register_scanner",
    "scanner_names",
    "unregister_scanner",
    "hitlist_targets",
    "random_targets",
    "targets_from_file",
]
