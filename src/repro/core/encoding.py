"""FlashRoute's probe encoding (paper §3.1).

All state needed to interpret a response is carried in the probe itself and
returned inside the ICMP quotation:

* **IPID, bits 15..11** — the probe's initial TTL minus one (5 bits, TTLs
  1..32).
* **IPID, bit 10** — set on preprobing-phase probes, so a late preprobe
  response cannot be confused with a main-phase response.
* **IPID, bits 9..0** — the high 10 bits of a 16-bit millisecond timestamp.
* **UDP length, low 6 bits above the 8-byte header** — the low 6 bits of the
  timestamp.  16 bits at millisecond granularity wrap in ~65.5 s, "less than
  the official maximum segment lifetime but more than enough to derive the
  round-trip time".
* **UDP source port** — the Internet checksum of the destination address:
  the constant per-destination flow id Paris traceroute requires, and an
  integrity check against in-flight destination rewriting (§5.3).

Yarrp's TCP-ACK probes instead place the elapsed time into the TCP sequence
number; both encodings are implemented here (the baselines reuse this
module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.checksum import flow_source_port
from ..net.icmp import IcmpResponse
from ..net.packets import UDP_HEADER_LEN

TIMESTAMP_WRAP_MS = 1 << 16  # 16-bit millisecond timestamp
_TTL_SHIFT = 11
_PREPROBE_BIT = 1 << 10
_TS_HIGH_MASK = 0x3FF
_TS_LOW_MASK = 0x3F

MAX_ENCODABLE_TTL = 32


class EncodingError(ValueError):
    """Raised when header fields cannot carry the requested values."""


@dataclass(frozen=True)
class ProbeMarking:
    """The header field values encoding one probe's state."""

    ipid: int
    udp_length: int
    src_port: int


@dataclass(frozen=True)
class DecodedProbe:
    """State recovered from a response's quoted probe headers."""

    initial_ttl: int
    is_preprobe: bool
    timestamp_ms: int
    dst: int
    src_port: int


def encode_probe(dst: int, initial_ttl: int, send_time: float,
                 is_preprobe: bool = False,
                 scan_offset: int = 0) -> ProbeMarking:
    """Compute the header fields for a probe sent at ``send_time`` seconds.

    ``scan_offset`` shifts the checksum-derived source port for
    discovery-optimized extra scans (§5.2).
    """
    if not 1 <= initial_ttl <= MAX_ENCODABLE_TTL:
        raise EncodingError(
            f"initial TTL {initial_ttl} does not fit in 5 bits (1..32)")
    timestamp = int(send_time * 1000.0) % TIMESTAMP_WRAP_MS
    ipid = ((initial_ttl - 1) << _TTL_SHIFT)
    if is_preprobe:
        ipid |= _PREPROBE_BIT
    ipid |= (timestamp >> 6) & _TS_HIGH_MASK
    udp_length = UDP_HEADER_LEN + (timestamp & _TS_LOW_MASK)
    return ProbeMarking(ipid=ipid, udp_length=udp_length,
                        src_port=flow_source_port(dst, scan_offset))


def decode_response(response: IcmpResponse) -> DecodedProbe:
    """Recover the encoded probe state from a response's quotation."""
    quoted = response.quoted
    ipid = quoted.ipid
    initial_ttl = (ipid >> _TTL_SHIFT) + 1
    timestamp = (((ipid & _TS_HIGH_MASK) << 6)
                 | ((quoted.udp_length - UDP_HEADER_LEN) & _TS_LOW_MASK))
    return DecodedProbe(
        initial_ttl=initial_ttl,
        is_preprobe=bool(ipid & _PREPROBE_BIT),
        timestamp_ms=timestamp,
        dst=quoted.dst,
        src_port=quoted.src_port,
    )


def destination_intact(decoded: DecodedProbe, scan_offset: int = 0) -> bool:
    """True if the quoted destination still matches its checksum port.

    A mismatch means a middlebox rewrote the destination address in flight;
    FlashRoute drops such responses and counts them (§5.3).
    """
    return flow_source_port(decoded.dst, scan_offset) == decoded.src_port


def rtt_ms(decoded: DecodedProbe, receive_time: float) -> float:
    """Round-trip time implied by the probe timestamp, in milliseconds.

    Handles the 16-bit wrap: any RTT below ~65.5 s is recovered exactly.
    """
    now_ms = int(receive_time * 1000.0)
    return float((now_ms - decoded.timestamp_ms) % TIMESTAMP_WRAP_MS)


def yarrp_tcp_seq(send_time: float, scan_start: float = 0.0) -> int:
    """Yarrp's TCP-ACK encoding: elapsed milliseconds in the sequence number."""
    elapsed = int((send_time - scan_start) * 1000.0)
    if elapsed < 0:
        raise EncodingError("send_time precedes scan start")
    return elapsed & 0xFFFFFFFF


def yarrp_elapsed_from_seq(seq: int, receive_time: float,
                           scan_start: float = 0.0) -> Optional[float]:
    """RTT in ms from a quoted Yarrp TCP sequence number, if plausible."""
    now = int((receive_time - scan_start) * 1000.0)
    rtt = now - seq
    if rtt < 0:
        return None
    return float(rtt)
