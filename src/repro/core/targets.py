"""Target selection: one representative address per /24 block.

FlashRoute (like Yarrp and CAIDA's scans) traces a single address per /24.
By default that address is drawn uniformly at random from the block; the
tool can also load representatives from an external list, which is how the
hitlist is plugged in for preprobing (paper §4.1.3 — and *only* for
preprobing, to avoid the hitlist bias of §5.1 in the discovered topology).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from ..simnet.hitlist import hitlist_addresses
from ..simnet.topology import Topology


def random_targets(topology: Topology, seed: int,
                   excluded: Optional[Iterable[int]] = None,
                   granularity: int = 24) -> Dict[int, int]:
    """One uniformly random host address per scanned block.

    At the default granularity of 24 this is one target per /24, host
    octets drawn from 1..254 (network and broadcast addresses skipped).
    Finer granularities (the paper's §5.4 proposal) draw one target per
    /``granularity`` block; keys are block indexes (``addr >>
    (32 - granularity)``).  Deterministic in ``seed``.
    """
    if not 24 <= granularity <= 30:
        raise ValueError("granularity must be within [24, 30]")
    rng = random.Random(seed)
    banned = frozenset(excluded) if excluded is not None else frozenset()
    host_bits = 32 - granularity
    span = 1 << host_bits
    blocks_per_24 = 1 << (granularity - 24)
    targets: Dict[int, int] = {}
    for prefix in topology.scanned_prefixes():
        for sub in range(blocks_per_24):
            block = (prefix << (granularity - 24)) | sub
            if block in banned:
                continue
            base = block << host_bits
            # Redraw until the address avoids the /24's network and
            # broadcast octets.
            while True:
                addr = base + rng.randrange(span)
                if 1 <= addr & 0xFF <= 254:
                    break
            targets[block] = addr
    return targets


def hitlist_targets(topology: Topology,
                    excluded: Optional[Iterable[int]] = None,
                    granularity: int = 24) -> Dict[int, int]:
    """The synthesized ISI-hitlist representative of every scanned block.

    The census lists one address per /24; at finer granularities every
    sub-block inherits its /24's hitlist address — the distance hint it
    provides applies to the whole /24.
    """
    if not 24 <= granularity <= 30:
        raise ValueError("granularity must be within [24, 30]")
    banned = frozenset(excluded) if excluded is not None else frozenset()
    blocks_per_24 = 1 << (granularity - 24)
    targets: Dict[int, int] = {}
    for prefix, addr in hitlist_addresses(topology).items():
        for sub in range(blocks_per_24):
            block = (prefix << (granularity - 24)) | sub
            if block not in banned:
                targets[block] = addr
    return targets


def targets_from_file(path: str) -> Dict[int, int]:
    """Load representatives from a file of dotted quads, one per line.

    Mirrors FlashRoute's exterior-file option; only one address per /24 is
    kept (the last one wins, matching the tool's overwrite semantics).
    """
    from ..net.addr import ip_to_int

    targets: Dict[int, int] = {}
    with open(path, encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            addr = ip_to_int(line)
            targets[addr >> 8] = addr
    return targets
