"""FlashRoute configuration.

Field names follow the paper's terminology: *split TTL* (§3.2), *GapLimit*
(§3.2), *preprobing* mode and *proximity span* (§3.3), *redundancy removal*
(§4.1.1).  The named constructors at the bottom give the exact
configurations evaluated in the paper's tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional


class PreprobeMode(enum.Enum):
    """Where preprobing targets come from (paper §4.1.3)."""

    NONE = "none"
    #: Preprobe the same randomly drawn per-/24 representative the main
    #: phase will trace; enables the fold-into-first-round optimization
    #: when the default split TTL is 32 (§3.3.5).
    RANDOM = "random"
    #: Preprobe the ISI-hitlist address of each /24 but trace a random
    #: representative, avoiding the hitlist bias in discovered topology
    #: (§4.1.3, §5.1).
    HITLIST = "hitlist"


@dataclass
class FlashRouteConfig:
    """All knobs of a FlashRoute scan."""

    #: Default split TTL: where backward+forward exploration starts when no
    #: measured/predicted distance is available.
    split_ttl: int = 16

    #: Forward probing stops after this many consecutive silent hops.
    gap_limit: int = 5

    #: Maximum TTL ever probed (Yarrp's bound; very few paths exceed it).
    max_ttl: int = 32

    #: Preprobing mode.
    preprobe: PreprobeMode = PreprobeMode.HITLIST

    #: Measured distances predict the distances of this many /24 blocks on
    #: each side (§3.3.3).
    proximity_span: int = 5

    #: Terminate backward probing at previously discovered interfaces
    #: (Doubletree redundancy elimination; ablated in Table 1).
    redundancy_removal: bool = True

    #: Probes per second.  ``None`` scales the paper's 100 Kpps to the
    #: simulated prefix count (see ``repro.simnet.scaled_probing_rate``).
    probing_rate: Optional[float] = None

    #: Minimum duration of one probing round, seconds (§3.2).
    round_seconds: float = 1.0

    #: Seed for target selection and the DCB-ring permutation.
    seed: int = 1

    #: Source-port offset for discovery-optimized extra scans (§5.2).
    scan_offset: int = 0

    #: Scanning granularity in prefix bits: 24 traces one address per /24
    #: (the paper's default); up to 30 traces one per /30, the paper's
    #: §5.4 proposal for discovering distinct internal paths inside a /24
    #: at the cost of an exponentially larger control-state array.
    granularity: int = 24

    #: Safety valve: abort scans that somehow exceed this many rounds.
    max_rounds: int = 4096

    #: Serve probes from the simulator's flat route cache (the default fast
    #: path).  ``False`` forces the original per-probe resolution for the
    #: whole scan — an A/B and debugging escape hatch; results are
    #: identical either way (see ``docs/simulator.md``).
    route_cache: bool = True

    #: Optional :class:`repro.core.resilience.ResilienceConfig` enabling
    #: probe retransmission, adaptive rate backoff and checkpoint/resume
    #: (see ``docs/robustness.md``).  ``None`` — or an inert config with
    #: the default knobs — keeps the scan byte-identical to the seed
    #: behaviour.  Typed loosely to keep this module import-light.
    resilience: Optional[object] = None

    def __post_init__(self) -> None:
        if not 1 <= self.split_ttl <= self.max_ttl:
            raise ValueError("split_ttl must be within [1, max_ttl]")
        if self.gap_limit < 0:
            raise ValueError("gap_limit must be non-negative")
        if not 1 <= self.max_ttl <= 32:
            raise ValueError("max_ttl must be within [1, 32] (5-bit encoding)")
        if self.proximity_span < 0:
            raise ValueError("proximity_span must be non-negative")
        if self.probing_rate is not None and self.probing_rate <= 0:
            raise ValueError("probing_rate must be positive")
        if self.round_seconds < 0:
            raise ValueError("round_seconds must be non-negative")
        if not 24 <= self.granularity <= 30:
            raise ValueError("granularity must be within [24, 30]")
        if isinstance(self.preprobe, str):
            self.preprobe = PreprobeMode(self.preprobe)

    # ------------------------------------------------------------------ #
    # Paper configurations
    # ------------------------------------------------------------------ #

    @classmethod
    def flashroute_16(cls, **overrides) -> "FlashRouteConfig":
        """FlashRoute-16 (Table 3): split 16, gap 5, hitlist preprobing."""
        return replace(cls(split_ttl=16, preprobe=PreprobeMode.HITLIST),
                       **overrides)

    @classmethod
    def flashroute_32(cls, **overrides) -> "FlashRouteConfig":
        """FlashRoute-32 (Table 3): split 32, otherwise as FlashRoute-16."""
        return replace(cls(split_ttl=32, preprobe=PreprobeMode.HITLIST),
                       **overrides)

    @classmethod
    def yarrp32_udp_simulation(cls, **overrides) -> "FlashRouteConfig":
        """The paper's Yarrp-32-UDP simulation (§4.2.1): no preprobing, no
        forward probing, no convergence termination — one probe to every hop
        1..32 for every destination."""
        return replace(cls(split_ttl=32, gap_limit=0,
                           preprobe=PreprobeMode.NONE,
                           redundancy_removal=False), **overrides)
