"""Scan result serialization: JSON, CSV, and traceroute-style text.

Real FlashRoute writes its measurements to an output file (or defers to an
external sniffer).  This module gives :class:`~repro.core.results.ScanResult`
durable formats:

* **JSON** — full fidelity round-trip (used by ``flashroute-sim --output``);
* **CSV** — one row per (prefix, ttl, interface) hop, for spreadsheets and
  ad-hoc analysis;
* **text** — human traceroute-style dumps.
"""

from __future__ import annotations

import csv
import io
import json
from collections import Counter
from typing import Dict, Optional, TextIO

from ..net.addr import int_to_ip, ip_to_int
from .results import ScanResult, format_scan_time

_FORMAT_VERSION = 1


def result_to_dict(result: ScanResult) -> Dict[str, object]:
    """Serialize a scan result to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "tool": result.tool,
        "num_targets": result.num_targets,
        "granularity": result.granularity,
        "probes_sent": result.probes_sent,
        "preprobe_probes": result.preprobe_probes,
        "responses": result.responses,
        "duplicate_responses": result.duplicate_responses,
        "mismatched_quotes": result.mismatched_quotes,
        "skipped_probes": result.skipped_probes,
        "duration": result.duration,
        "rounds": result.rounds,
        "aborted": result.aborted,
        "rtt_sum_ms": result.rtt_sum_ms,
        "rtt_count": result.rtt_count,
        # JSON objects key by string; prefixes/ttls are ints.
        "targets": {str(prefix): int_to_ip(addr)
                    for prefix, addr in result.targets.items()},
        "dest_distance": {str(prefix): distance
                          for prefix, distance in result.dest_distance.items()},
        "routes": {str(prefix): {str(ttl): int_to_ip(responder)
                                 for ttl, responder in hops.items()}
                   for prefix, hops in result.routes.items()},
        "ttl_probe_histogram": {str(ttl): count for ttl, count
                                in result.ttl_probe_histogram.items()},
        "response_kinds": dict(result.response_kinds),
    }


def result_from_dict(payload: Dict[str, object]) -> ScanResult:
    """Rebuild a scan result from :func:`result_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported scan format version: {version!r}")
    result = ScanResult(tool=str(payload["tool"]),
                        num_targets=int(payload["num_targets"]),
                        granularity=int(payload.get("granularity", 24)))
    result.probes_sent = int(payload["probes_sent"])
    result.preprobe_probes = int(payload["preprobe_probes"])
    result.responses = int(payload["responses"])
    result.duplicate_responses = int(payload.get("duplicate_responses", 0))
    result.mismatched_quotes = int(payload["mismatched_quotes"])
    result.skipped_probes = int(payload.get("skipped_probes", 0))
    result.duration = float(payload["duration"])
    result.rounds = int(payload["rounds"])
    result.aborted = bool(payload["aborted"])
    result.rtt_sum_ms = float(payload["rtt_sum_ms"])
    result.rtt_count = int(payload["rtt_count"])
    result.targets = {int(prefix): ip_to_int(addr)
                      for prefix, addr in payload["targets"].items()}
    result.dest_distance = {int(prefix): int(distance) for prefix, distance
                            in payload["dest_distance"].items()}
    result.routes = {
        int(prefix): {int(ttl): ip_to_int(responder)
                      for ttl, responder in hops.items()}
        for prefix, hops in payload["routes"].items()}
    result.ttl_probe_histogram = Counter(
        {int(ttl): int(count) for ttl, count
         in payload["ttl_probe_histogram"].items()})
    result.response_kinds = Counter(payload["response_kinds"])
    return result


def write_json(result: ScanResult, stream: TextIO, indent: int = 2) -> None:
    json.dump(result_to_dict(result), stream, indent=indent, sort_keys=True)
    stream.write("\n")


def read_json(stream: TextIO) -> ScanResult:
    return result_from_dict(json.load(stream))


def save_json(result: ScanResult, path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        write_json(result, stream)


def load_json(path: str) -> ScanResult:
    with open(path, encoding="utf-8") as stream:
        return read_json(stream)


# --------------------------------------------------------------------- #
# CSV
# --------------------------------------------------------------------- #

CSV_FIELDS = ("prefix", "target", "ttl", "interface", "is_destination")


def write_hops_csv(result: ScanResult, stream: TextIO) -> int:
    """One row per discovered hop (plus destination rows); returns the
    number of rows written."""
    writer = csv.writer(stream)
    writer.writerow(CSV_FIELDS)
    rows = 0
    shift = 32 - result.granularity
    for prefix in sorted(result.routes.keys() | result.dest_distance.keys()):
        target = result.targets.get(prefix)
        target_text = int_to_ip(target) if target is not None else ""
        prefix_text = f"{int_to_ip(prefix << shift)}/{result.granularity}"
        for ttl, responder in sorted(result.routes.get(prefix, {}).items()):
            writer.writerow([prefix_text, target_text, ttl,
                             int_to_ip(responder), 0])
            rows += 1
        distance = result.dest_distance.get(prefix)
        if distance is not None and target is not None:
            writer.writerow([prefix_text, target_text, distance,
                             target_text, 1])
            rows += 1
    return rows


def hops_csv_text(result: ScanResult) -> str:
    buffer = io.StringIO()
    write_hops_csv(result, buffer)
    return buffer.getvalue()


# --------------------------------------------------------------------- #
# Traceroute-style text
# --------------------------------------------------------------------- #

def format_route(result: ScanResult, prefix: int,
                 show_missing: bool = True) -> str:
    """One route as classic traceroute output (``*`` for silent hops)."""
    target = result.targets.get(prefix)
    hops = result.routes.get(prefix, {})
    distance = result.dest_distance.get(prefix)
    end = distance if distance is not None else (max(hops) if hops else 0)
    shift = 32 - result.granularity
    header = (f"traceroute to "
              f"{int_to_ip(target) if target is not None else '?'} "
              f"({int_to_ip(prefix << shift)}/{result.granularity})")
    lines = [header]
    for ttl in range(1, end + 1):
        responder = hops.get(ttl)
        if ttl == distance and target is not None:
            lines.append(f"  {ttl:2d}  {int_to_ip(target)}  "
                         f"[destination]")
        elif responder is not None:
            lines.append(f"  {ttl:2d}  {int_to_ip(responder)}")
        elif show_missing:
            lines.append(f"  {ttl:2d}  *")
    return "\n".join(lines)


def format_scan_report(result: ScanResult,
                       max_routes: Optional[int] = 5) -> str:
    """Summary plus a few sample routes, for terminals and logs."""
    lines = [result.summary(),
             f"  rounds={result.rounds} responses={result.responses:,} "
             f"mismatched={result.mismatched_quotes:,} "
             f"duration={format_scan_time(result.duration)}"]
    shown = 0
    for prefix in sorted(result.dest_distance):
        if max_routes is not None and shown >= max_routes:
            break
        lines.append("")
        lines.append(format_route(result, prefix))
        shown += 1
    return "\n".join(lines)
