"""Hop-distance prediction from preprobing measurements (paper §3.3.3).

Preprobing measures, with a single TTL-32 probe, the hop distance of every
destination that answers with ICMP port-unreachable.  Most random targets do
not answer, so FlashRoute exploits spatial locality: stub networks advertise
blocks larger than /24, hence adjacent /24s usually share their transit path
and sit at (nearly) the same distance.  A measured distance therefore
predicts the distances of up to ``proximity_span`` blocks on each side.

This module is pure logic (no I/O, no clock) so the prediction rule can be
property-tested and reused by the accuracy analysis for Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class PreprobeOutcome:
    """What the preprobing phase produced for one scan."""

    #: prefix offset -> distance measured directly from a response.
    measured: Dict[int, int] = field(default_factory=dict)

    #: prefix offset -> distance predicted from a measured neighbour.
    predicted: Dict[int, int] = field(default_factory=dict)

    probes: int = 0
    duration: float = 0.0

    def coverage(self, num_prefixes: int) -> float:
        """Fraction of targets with a measured or predicted distance
        (paper: ~23 % with random targets, ~38 % with the hitlist)."""
        if num_prefixes <= 0:
            return 0.0
        return (len(self.measured) + len(self.predicted)) / num_prefixes

    def distance_for(self, offset: int) -> Optional[int]:
        value = self.measured.get(offset)
        if value is not None:
            return value
        return self.predicted.get(offset)


def predict_distances(measured: Dict[int, int], num_prefixes: int,
                      proximity_span: int) -> Dict[int, int]:
    """Predict distances of unmeasured prefixes from measured neighbours.

    For each unmeasured prefix the *nearest* measured prefix within
    ``proximity_span`` blocks (ties broken toward the preceding block, which
    shares the stub more often under left-to-right allocation) donates its
    distance.  Runs in O(num_prefixes * span) worst case but short-circuits
    on the nearest hit.
    """
    if proximity_span <= 0 or not measured:
        return {}
    predicted: Dict[int, int] = {}
    for offset in range(num_prefixes):
        if offset in measured:
            continue
        for delta in range(1, proximity_span + 1):
            left = measured.get(offset - delta)
            if left is not None:
                predicted[offset] = left
                break
            right = measured.get(offset + delta)
            if right is not None:
                predicted[offset] = right
                break
    return predicted


def clamp_distance(distance: int, max_ttl: int) -> Optional[int]:
    """Sanitize a measured distance for use as a split point."""
    if distance < 1:
        return None
    return min(distance, max_ttl)
