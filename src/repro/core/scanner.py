"""The Scanner protocol and tool registry.

Every probing engine in this library — FlashRoute, Yarrp, Scamper's
Doubletree tracer, the classic traceroute baseline — exposes the same
surface: construct it from a handful of shared knobs, call ``scan``
against a simulated network, get a :class:`~repro.core.results.ScanResult`
back.  Before this module each consumer (the CLI, the experiment drivers)
re-spelled that construction in its own if/elif chain; now tools register
themselves under their CLI names and consumers resolve them by lookup.
Adding a tool is one :func:`register_scanner` decorator in its module.

The registry stores *factories*, not instances: scanners hold per-scan
state, so every :func:`create_scanner` call builds a fresh one from a
:class:`ScannerOptions`.  Options a tool has no counterpart for are
ignored by its factory (e.g. ``gap_limit`` for traceroute), mirroring how
the real tools' command lines differ.
"""

from __future__ import annotations

import contextlib
import importlib
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from .results import ScanResult


@runtime_checkable
class Scanner(Protocol):
    """What every registered probing engine provides."""

    def scan(self, network, targets=None, **kwargs) -> ScanResult:
        """Run one scan against ``network`` and return its result."""
        ...


@dataclass(frozen=True)
class ScannerOptions:
    """Tool-independent construction knobs, all optional.

    ``None`` means "the tool's own default"; factories map each option
    onto their config's field when one exists and ignore it otherwise.
    """

    #: Probes per second.
    probing_rate: Optional[float] = None

    #: Initial forward-probing TTL (FlashRoute's split TTL).
    split_ttl: Optional[int] = None

    #: Consecutive silent hops tolerated during forward probing.
    gap_limit: Optional[int] = None

    #: Preprobe mode name for tools that preprobe ("hitlist", "random",
    #: "fixed", "none").
    preprobe: Optional[str] = None

    #: Per-scan randomization seed (probing order, port draws).
    seed: Optional[int] = None

    #: Optional :class:`repro.obs.Telemetry` bundle (metrics registry,
    #: tracer, progress reporter).  Factories hand it to their engine;
    #: ``None`` (the default) keeps every tool on its zero-overhead path.
    #: Typed loosely to keep this module import-light.
    telemetry: Optional[object] = None

    #: Optional :class:`repro.core.resilience.ResilienceConfig` (probe
    #: retries, adaptive rate backoff, checkpoint/resume).  Factories map
    #: what their tool supports: FlashRoute and Yarrp take the full
    #: config, Scamper and traceroute honour the retry budget only.
    #: ``None`` (the default) keeps every tool byte-identical to seed.
    resilience: Optional[object] = None


ScannerFactory = Callable[[ScannerOptions], Scanner]

# --------------------------------------------------------------------- #
# Construction sanctioning (the repro.api deprecation contract)
# --------------------------------------------------------------------- #

#: Non-zero while construction flows through a sanctioned entry point
#: (:func:`create_scanner` or the ``repro.api`` facade).  Plain int, not a
#: thread-local: sanctioning only spans the synchronous factory call.
_SANCTIONED_DEPTH = 0


@contextlib.contextmanager
def sanctioned_construction():
    """Mark engine constructions inside the block as facade-sanctioned,
    suppressing the direct-construction :class:`DeprecationWarning`."""
    global _SANCTIONED_DEPTH
    _SANCTIONED_DEPTH += 1
    try:
        yield
    finally:
        _SANCTIONED_DEPTH -= 1


def warn_direct_construction(class_name: str) -> None:
    """Emit the deprecation warning for a direct engine construction.

    Engines call this from ``__init__``; constructions routed through
    :func:`create_scanner` or ``repro.api`` are sanctioned and stay
    silent.  Direct construction keeps working — the public entry points
    are ``repro.api.scan()``/``open_session()`` and the registry, which
    keep per-scan state explicit and will absorb future constructor
    changes (see docs/service.md).
    """
    if _SANCTIONED_DEPTH == 0:
        warnings.warn(
            f"constructing {class_name} directly is deprecated; use "
            f"repro.api (scan()/open_session()/serve()) or "
            f"repro.core.scanner.create_scanner() instead",
            DeprecationWarning, stacklevel=3)

_REGISTRY: Dict[str, ScannerFactory] = {}
_DEFAULTS_LOADED = False

#: Modules whose import registers the built-in tools.  Loaded lazily on
#: first lookup so this module stays import-light and free of cycles.
_DEFAULT_MODULES = (
    "repro.core.prober",
    "repro.baselines.yarrp",
    "repro.baselines.scamper",
    "repro.baselines.traceroute",
)


def register_scanner(name: str, factory: Optional[ScannerFactory] = None):
    """Register ``factory`` under ``name``; usable as a decorator.

    ::

        @register_scanner("mytool")
        def _build(options: ScannerOptions) -> Scanner:
            return MyTool(...)

    Registering an already-taken name raises — shadowing a tool silently
    would corrupt experiment comparisons.
    """
    def _register(fn: ScannerFactory) -> ScannerFactory:
        if name in _REGISTRY:
            raise ValueError(f"scanner {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def unregister_scanner(name: str) -> None:
    """Remove a registration (tests use this to clean up)."""
    _REGISTRY.pop(name, None)


def _load_defaults() -> None:
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True
    for module in _DEFAULT_MODULES:
        importlib.import_module(module)


def scanner_names() -> Tuple[str, ...]:
    """Sorted names of every registered tool."""
    _load_defaults()
    return tuple(sorted(_REGISTRY))


def create_scanner(name: str,
                   options: Optional[ScannerOptions] = None) -> Scanner:
    """Build a fresh scanner registered under ``name``."""
    _load_defaults()
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scanner {name!r} (known: {known})")
    with sanctioned_construction():
        return factory(options if options is not None else ScannerOptions())
