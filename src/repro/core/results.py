"""Scan results: discovered routes, interfaces, probe/time accounting.

A :class:`ScanResult` is produced by every probing engine in this library
(FlashRoute and the baselines), so the analysis layer can compare tools
uniformly.  Routes are stored per /24 prefix as ``{ttl: responder}``
mappings; the interface set, per-TTL probing histogram (Fig. 7), and the
table-style summary all derive from it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


def format_scan_time(seconds: float) -> str:
    """Render a duration the way the paper's tables do (``17:16.94`` or
    ``1:00:15.21``)."""
    if seconds < 0:
        raise ValueError("negative duration")
    hours = int(seconds // 3600)
    minutes = int((seconds % 3600) // 60)
    rest = seconds % 60
    if hours:
        return f"{hours}:{minutes:02d}:{rest:05.2f}"
    return f"{minutes}:{rest:05.2f}"


@dataclass
class ScanResult:
    """Everything one scan discovered and what it cost."""

    tool: str
    num_targets: int = 0

    #: Prefix bits of one scanned block (24 = one target per /24; the keys
    #: of ``routes``/``targets``/``dest_distance`` are ``addr >> (32 -
    #: granularity)``).
    granularity: int = 24

    #: prefix index -> {ttl -> responder address} for TTL-exceeded hops.
    routes: Dict[int, Dict[int, int]] = field(default_factory=dict)

    #: prefix index -> measured hop distance of the destination (from
    #: "unreachable"-family responses).
    dest_distance: Dict[int, int] = field(default_factory=dict)

    #: prefix index -> the representative address that was traced.
    targets: Dict[int, int] = field(default_factory=dict)

    probes_sent: int = 0
    preprobe_probes: int = 0
    responses: int = 0
    #: Responses that were injected duplicates of an earlier reply
    #: (:mod:`repro.simnet.faults`); counted inside ``responses`` too.
    duplicate_responses: int = 0
    mismatched_quotes: int = 0
    #: Probes withheld by optimizations (Yarrp's neighborhood protection).
    skipped_probes: int = 0
    duration: float = 0.0
    rounds: int = 0
    aborted: bool = False

    #: probes issued per TTL (Fig. 7's "targets with routes probed at a
    #: given TTL"; each engine probes a (target, TTL) pair at most once).
    ttl_probe_histogram: Counter = field(default_factory=Counter)

    #: responses per semantic kind (ttl_exceeded, port_unreachable, ...).
    response_kinds: Counter = field(default_factory=Counter)

    rtt_sum_ms: float = 0.0
    rtt_count: int = 0

    #: Simulator-side telemetry (``SimulatedNetwork.stats()``) attached
    #: after the scan, so fault/cache counters travel with the result —
    #: ``--loss`` runs surface them in :meth:`as_row` and the human CLI
    #: output without needing a separate metrics file.  ``None`` (the
    #: default) leaves :meth:`as_row` byte-identical to its pre-telemetry
    #: output.
    simnet_stats: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    # Recording (engines call these)
    # ------------------------------------------------------------------ #

    def add_hop(self, prefix: int, ttl: int, responder: int) -> None:
        """Record a TTL-exceeded response: ``responder`` sits at ``ttl`` on
        the route toward ``prefix``'s representative."""
        hops = self.routes.get(prefix)
        if hops is None:
            hops = {}
            self.routes[prefix] = hops
        hops[ttl] = responder

    def record_destination(self, prefix: int, distance: int) -> None:
        """Record that the representative answered from ``distance`` hops."""
        known = self.dest_distance.get(prefix)
        if known is None or distance < known:
            self.dest_distance[prefix] = distance

    def add_rtt(self, rtt_ms: float) -> None:
        self.rtt_sum_ms += rtt_ms
        self.rtt_count += 1

    def attach_simnet_stats(self, stats: Dict[str, object]) -> None:
        """Attach ``SimulatedNetwork.stats()`` output (route cache, rate
        limiter, fault injector counters) to this result."""
        self.simnet_stats = stats

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def interfaces(self) -> Set[int]:
        """Unique router interface addresses revealed by the scan."""
        found: Set[int] = set()
        for hops in self.routes.values():
            found.update(hops.values())
        return found

    def interface_count(self) -> int:
        return len(self.interfaces())

    def route(self, prefix: int) -> List[Tuple[int, int]]:
        """Sorted ``(ttl, responder)`` pairs for one prefix."""
        return sorted(self.routes.get(prefix, {}).items())

    def route_length(self, prefix: int) -> Optional[int]:
        """Measured route length: the destination's distance if it answered,
        else the deepest responding hop, else ``None``."""
        distance = self.dest_distance.get(prefix)
        if distance is not None:
            return distance
        hops = self.routes.get(prefix)
        if hops:
            return max(hops)
        return None

    def mean_rtt_ms(self) -> Optional[float]:
        if self.rtt_count == 0:
            return None
        return self.rtt_sum_ms / self.rtt_count

    def route_holes(self) -> int:
        """Unanswered TTLs *inside* discovered routes.

        For each prefix, counts the TTLs strictly between the shallowest
        recorded hop and the route's end (the destination's distance when
        measured, else the deepest recorded hop) that have no responder.
        Loss and blackouts turn previously answered hops silent, so this
        is the per-scan observable of loss-induced route damage; a
        loss-free scan of a fully responsive path reports 0.
        """
        holes = 0
        for prefix, hops in self.routes.items():
            if not hops:
                continue
            first = min(hops)
            distance = self.dest_distance.get(prefix)
            last = max(hops) if distance is None else distance
            holes += sum(1 for ttl in range(first + 1, last)
                         if ttl not in hops)
        return holes

    def probes_per_target(self) -> float:
        if self.num_targets == 0:
            return 0.0
        return self.probes_sent / self.num_targets

    def fingerprint(self) -> str:
        """sha256 of the canonical JSON serialization of this result.

        Two scans are byte-identical exactly when their fingerprints
        match; the resilience property tests and the checkpoint/resume
        acceptance criteria compare scans through this digest.
        """
        import hashlib
        import json

        from .output import result_to_dict

        canonical = json.dumps(result_to_dict(self), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """One table row in the paper's format."""
        return (f"{self.tool}: interfaces={self.interface_count():,} "
                f"probes={self.probes_sent:,} "
                f"time={format_scan_time(self.duration)}")

    def as_row(self) -> Dict[str, object]:
        """Structured row used by the experiment drivers.

        The original keys (``tool``, ``interfaces``, ``probes``,
        ``scan_time``, ``scan_time_text``) are stable; the derived and
        fault-accounting columns were added so drivers stop recomputing
        them ad hoc.
        """
        row: Dict[str, object] = {
            "tool": self.tool,
            "interfaces": self.interface_count(),
            "probes": self.probes_sent,
            "probes_per_target": self.probes_per_target(),
            "responses": self.responses,
            "mean_rtt_ms": self.mean_rtt_ms(),
            "holes": self.route_holes(),
            "duplicate_responses": self.duplicate_responses,
            "scan_time": self.duration,
            "scan_time_text": format_scan_time(self.duration),
        }
        stats = self.simnet_stats
        if stats is not None:
            cache = stats.get("route_cache")
            if cache is not None:
                row["cache_hits"] = cache["hits"]
                row["cache_misses"] = cache["misses"]
            ratelimit = stats.get("ratelimit")
            if ratelimit is not None:
                row["rate_limited_drops"] = ratelimit["dropped"]
            faults = stats.get("faults")
            if faults is not None:
                row["probes_lost"] = faults["probes_lost"]
                row["responses_lost"] = faults["responses_lost"]
                row["blackout_drops"] = faults["blackout_drops"]
                row["duplicates_injected"] = faults["duplicates_injected"]
        return row


def union_interfaces(results: Iterable[ScanResult]) -> FrozenSet[int]:
    """Interfaces discovered by any of several scans (discovery-optimized
    mode reports the union of the main scan and its extra scans, §5.2)."""
    combined: Set[int] = set()
    for result in results:
        combined.update(result.interfaces())
    return frozenset(combined)
