"""The FlashRoute probing engine (paper §3.2–§3.4).

A scan proceeds in three stages over a virtual clock:

1. **Preprobing** (optional): one TTL-32 probe per destination measures hop
   distances; proximity-span prediction extends them to neighbours; the
   distances become per-destination split points.  When the default split
   TTL equals the preprobing TTL and preprobing used the same targets as
   the main phase, the preprobe round *is* the first main round (§3.3.5).
2. **Main rounds**: each round walks the DCB ring in permuted order and
   issues up to two probes per live destination — the next backward hop
   (toward the vantage point) and the next forward hop (toward the target).
   Backward probing ends at TTL 1 or, with redundancy removal, at a
   previously discovered interface (the Doubletree stop set); forward
   probing ends at the target or after ``GapLimit`` consecutive silent
   hops.  Rounds last at least one second, giving responses time to adjust
   the strategy before the destination is visited again.
3. **Finalization**: the clock advances past the last possible arrival and
   remaining responses are drained.

Sending and receiving are decoupled exactly as in the paper: the "receiving
thread" is modeled by draining the response queue up to the current virtual
send time before every scheduling decision (see DESIGN.md §6).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..net.icmp import IcmpResponse, ResponseKind, distance_from_unreachable
from ..obs.telemetry import record_scan_ring
from ..simnet.config import scaled_probing_rate
from ..simnet.engine import ResponseQueue, VirtualClock
from ..simnet.network import SimulatedNetwork
from .config import FlashRouteConfig, PreprobeMode
from .dcb import DCBArray, initial_order
from .encoding import decode_response, destination_intact, encode_probe, rtt_ms
from .output import result_from_dict, result_to_dict as _result_to_dict
from .preprobe import PreprobeOutcome, clamp_distance, predict_distances
from .resilience import (AdaptiveRateController, CheckpointError,
                         ResilienceConfig, RetryTracker, ScanInterrupted,
                         response_from_dict, response_to_dict,
                         write_checkpoint)
from .scanner import warn_direct_construction
from .results import ScanResult
from .targets import hitlist_targets, random_targets

#: Extra virtual time after the last probe of a phase, enough for any
#: response still in flight to arrive (worst case: 2 * 32 hops * hop
#: latency + jitter, far below a second in the default latency model).
_SETTLE_SECONDS = 1.0

_PREPROBE_TTL = 32


class FlashRoute:
    """FlashRoute scanner: create once, call :meth:`scan` per run."""

    def __init__(self, config: Optional[FlashRouteConfig] = None,
                 telemetry=None) -> None:
        warn_direct_construction("FlashRoute")
        self.config = config if config is not None else FlashRouteConfig()
        #: Optional :class:`repro.obs.Telemetry`; ``None`` keeps every
        #: path byte-identical to the pre-telemetry engine.
        self.telemetry = telemetry

    def scan(self, network: SimulatedNetwork,
             targets: Optional[Dict[int, int]] = None,
             preprobe_targets: Optional[Dict[int, int]] = None,
             stop_set: Optional[Set[int]] = None,
             start_ttls: Optional[Dict[int, int]] = None,
             tool_name: Optional[str] = None,
             excluded: Optional[Iterable[int]] = None) -> ScanResult:
        """Run one full scan; returns the :class:`ScanResult`.

        Args:
            network: the (simulated) network to probe.
            targets: /24 prefix -> representative address for the main
                phase; defaults to a seeded random draw per prefix.
            preprobe_targets: representatives for the preprobing phase;
                defaults to ``targets`` (the hitlist mode supplies the
                synthesized hitlist here automatically).
            stop_set: externally shared Doubletree stop set; the
                discovery-optimized mode passes one set across all its
                scans so extra scans stop at anything already seen (§5.2).
            start_ttls: per-prefix split-point override (used by the extra
                scans' randomized starting TTLs); wins over preprobing.
            tool_name: label recorded in the result.
            excluded: prefixes to leave out of the ring (exclusion list).
        """
        run = _ScanRun(self.config, network, targets, preprobe_targets,
                       stop_set, start_ttls, tool_name, excluded,
                       telemetry=self.telemetry)
        return run.execute()

    def resume(self, network: SimulatedNetwork, state: dict) -> ScanResult:
        """Continue a checkpointed scan to completion.

        ``state`` is the ``"state"`` section of a checkpoint document
        (see :func:`repro.core.resilience.load_checkpoint`).  The network
        must be built over the same topology (and fault model) as the
        interrupted run; the configuration must match the one the
        checkpoint was taken under — both are recorded in the document's
        ``invocation`` block by the CLI.  The returned ``ScanResult`` is
        byte-identical to an uninterrupted same-seed run.
        """
        if state.get("engine") != "flashroute":
            raise CheckpointError(
                f"checkpoint was written by engine "
                f"{state.get('engine')!r}, not flashroute")
        partial = result_from_dict(state["result"])
        run = _ScanRun(self.config, network, dict(partial.targets), None,
                       None, None, partial.tool, None,
                       telemetry=self.telemetry)
        run.restore_state(state)
        return run.execute(skip_preprobe=True)


class _ScanRun:
    """State and logic of a single scan (one-shot)."""

    def __init__(self, config: FlashRouteConfig, network: SimulatedNetwork,
                 targets: Optional[Dict[int, int]],
                 preprobe_targets: Optional[Dict[int, int]],
                 stop_set: Optional[Set[int]],
                 start_ttls: Optional[Dict[int, int]],
                 tool_name: Optional[str],
                 excluded: Optional[Iterable[int]],
                 telemetry=None) -> None:
        self.config = config
        self.network = network
        self.telemetry = telemetry
        #: Hot-path handles: ``None`` when telemetry is off, so the only
        #: cost a disabled run pays is an identity test per checkpoint.
        self._reg = telemetry.registry if telemetry is not None else None
        self._tracer = (telemetry.tracer if telemetry is not None
                        and telemetry.tracer.enabled else None)
        self._progress = (telemetry.progress if telemetry is not None
                          else None)
        self._events = telemetry.events if telemetry is not None else None
        topology = network.topology
        # Block granularity (paper §5.4): the control-state array holds one
        # DCB per /granularity block; at the default 24 a block is a /24.
        self.block_shift = 32 - config.granularity
        scale = 1 << (config.granularity - 24)
        self.base_prefix = topology.base_prefix * scale
        self.num_prefixes = topology.num_prefixes * scale

        excluded_offsets = sorted(
            {prefix - self.base_prefix for prefix in (excluded or ())
             if 0 <= prefix - self.base_prefix < self.num_prefixes})
        self.excluded_offsets = excluded_offsets

        if targets is None:
            targets = random_targets(topology, config.seed,
                                     granularity=config.granularity)
        self.targets = targets
        if preprobe_targets is None:
            if config.preprobe is PreprobeMode.HITLIST:
                preprobe_targets = hitlist_targets(
                    topology, granularity=config.granularity)
            else:
                preprobe_targets = targets
        self.preprobe_targets = preprobe_targets

        #: Folding preprobing into the first main round is only sound when
        #: the preprobe targets are the main targets and the default split
        #: TTL equals the preprobing TTL (§3.3.5, §4.1.3).
        self.fold_preprobe = (
            config.preprobe is PreprobeMode.RANDOM
            and config.split_ttl == _PREPROBE_TTL
            and config.max_ttl == _PREPROBE_TTL)

        self.rate = (config.probing_rate
                     if config.probing_rate is not None
                     else scaled_probing_rate(topology.num_prefixes))
        self.send_gap = 1.0 / self.rate

        self.clock = VirtualClock()
        self.queue = ResponseQueue()
        self.stop_set: Set[int] = stop_set if stop_set is not None else set()
        self.start_ttls = start_ttls or {}

        name = tool_name if tool_name is not None else (
            f"FlashRoute-{config.split_ttl}")
        self.result = ScanResult(tool=name, num_targets=len(targets),
                                 granularity=config.granularity)
        self.result.targets = dict(targets)

        self.dcb = self._build_dcbs()
        self.preprobe_outcome = PreprobeOutcome()
        self.in_preprobe = False

        #: Resilience layer (``docs/robustness.md``).  With ``None`` — or
        #: an inert config — the tracker/controller handles below stay
        #: ``None`` and every hot path is byte-identical to the seed.
        resil: Optional[ResilienceConfig] = config.resilience
        self._resil = resil
        self._retry: Optional[RetryTracker] = (
            RetryTracker(resil.retries, resil.retry_timeout)
            if resil is not None and resil.retries > 0 else None)
        self._controller: Optional[AdaptiveRateController] = (
            AdaptiveRateController(self.rate, resil)
            if resil is not None and resil.adaptive_rate else None)
        #: Last round-boundary snapshot; what an interrupt flushes to disk.
        self._ckpt_state: Optional[dict] = None
        self._rounds_since_ckpt = 0
        self._checkpoints_written = 0

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def _build_dcbs(self) -> DCBArray:
        destinations = []
        missing = object()
        for offset in range(self.num_prefixes):
            addr = self.targets.get(self.base_prefix + offset, missing)
            if addr is missing:
                destinations.append(
                    (self.base_prefix + offset) << self.block_shift)
            else:
                destinations.append(addr)
        dcb = DCBArray(destinations, self.config.split_ttl,
                       self.config.gap_limit)
        absent = {offset for offset in range(self.num_prefixes)
                  if self.base_prefix + offset not in self.targets}
        banned = set(self.excluded_offsets) | absent
        order = initial_order(self.num_prefixes,
                              self.config.seed ^ 0x0D0B0D0B, banned)
        if not order:
            raise ValueError("every prefix is excluded; nothing to scan")
        dcb.link_ring(order)
        for prefix, ttl in self.start_ttls.items():
            offset = prefix - self.base_prefix
            if 0 <= offset < self.num_prefixes:
                dcb.set_distance(offset, ttl, predicted=False)
                horizon = min(ttl + self.config.gap_limit, 255)
                dcb.forward_horizon[offset] = horizon
        return dcb

    # ------------------------------------------------------------------ #
    # Probe emission
    # ------------------------------------------------------------------ #

    def _send(self, dst: int, ttl: int, is_preprobe: bool) -> None:
        marking = encode_probe(dst, ttl, self.clock.now,
                               is_preprobe=is_preprobe,
                               scan_offset=self.config.scan_offset)
        response = self.network.send_probe(
            dst, ttl, self.clock.now, marking.src_port,
            ipid=marking.ipid, udp_length=marking.udp_length,
            # Hitlist preprobes hit their representative exactly once and
            # the main phase targets a different address in the /24, so
            # building a route-cache table for them would never pay off.
            single=is_preprobe and not self.fold_preprobe)
        if self._events is not None:
            self._events.probe_sent(
                self.clock.now, dst >> self.block_shift, ttl, dst,
                marking.src_port,
                "preprobe" if is_preprobe else "main")
        self.result.probes_sent += 1
        if is_preprobe:
            self.result.preprobe_probes += 1
        self.result.ttl_probe_histogram[ttl] += 1
        if response is not None:
            self.queue.push(response)
        self.clock.advance(self.send_gap)

    def _send_batch(self, items: List[Tuple[int, int]],
                    retry_attempts: Optional[Dict[int, int]] = None) -> None:
        """Emit a back-to-back burst of main-phase ``(dst, ttl)`` probes
        through ``send_probes``, pacing each at its own clock tick.

        The burst lies entirely between two drain points (the ring walk
        drains before every destination), so batching is observation-
        equivalent to per-probe sends: same send times, same encodings,
        same response arrivals.  ``retry_attempts`` (ttl -> attempt
        number) marks which items are retransmissions; absent items are
        first attempts.
        """
        clock = self.clock
        gap = self.send_gap
        scan_offset = self.config.scan_offset
        histogram = self.result.ttl_probe_histogram
        events = self._events
        block_shift = self.block_shift
        retry = self._retry
        offset = ((items[0][0] >> block_shift) - self.base_prefix
                  if retry is not None else -1)
        probes = []
        for dst, ttl in items:
            now = clock.now
            marking = encode_probe(dst, ttl, now, is_preprobe=False,
                                   scan_offset=scan_offset)
            probes.append((dst, ttl, now, marking.src_port, marking.ipid,
                           marking.udp_length))
            attempt = 0
            if retry is not None:
                if retry_attempts is not None:
                    attempt = retry_attempts.get(ttl, 0)
                retry.record_sent(offset, ttl, now, attempt)
            if events is not None:
                events.probe_sent(now, dst >> block_shift, ttl, dst,
                                  marking.src_port,
                                  "main" if attempt == 0 else "retry")
                if attempt:
                    events.retry(now, dst >> block_shift, ttl, attempt, dst)
            histogram[ttl] += 1
            clock.advance(gap)
        self.result.probes_sent += len(probes)
        self.queue.push_many(self.network.send_probes(probes))

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def _drain(self, until: float) -> None:
        for response in self.queue.pop_until(until):
            self._process(response)

    def _process(self, response: IcmpResponse) -> None:
        decoded = decode_response(response)
        if not destination_intact(decoded, self.config.scan_offset):
            self.result.mismatched_quotes += 1
            return
        offset = (decoded.dst >> self.block_shift) - self.base_prefix
        if not 0 <= offset < self.num_prefixes:
            return
        if self._retry is not None and not decoded.is_preprobe:
            # Any answer — original or retry, whatever its kind — settles
            # the outstanding (destination, ttl) probe.
            self._retry.record_response(offset, decoded.initial_ttl)
        self.result.responses += 1
        if response.is_duplicate:
            self.result.duplicate_responses += 1
        self.result.response_kinds[response.kind.value] += 1
        rtt = rtt_ms(decoded, response.arrival_time)
        self.result.add_rtt(rtt)
        if self._reg is not None:
            self._reg.observe("scan.rtt_ms", rtt)
        if self._events is not None:
            # `pre` marks preprobe responses the engine does not fold
            # into routes; `dist` is the distance record_destination
            # will see, computed at the same call-site conditions.
            pre = decoded.is_preprobe and not self.fold_preprobe
            dist = None
            if not pre and response.kind.is_unreachable \
                    and response.kind is not ResponseKind.HOST_UNREACHABLE \
                    and response.responder == decoded.dst:
                dist = distance_from_unreachable(response,
                                                 decoded.initial_ttl)
            self._events.response(
                response.arrival_time, decoded.dst >> self.block_shift,
                decoded.initial_ttl, response.responder,
                response.kind.value, rtt=rtt, dist=dist, pre=pre,
                dup=response.is_duplicate)

        if decoded.is_preprobe:
            self._process_preprobe(response, decoded, offset)
            if not self.fold_preprobe:
                return
        self._process_main(response, decoded, offset)

    def _process_preprobe(self, response: IcmpResponse, decoded, offset: int) -> None:
        if response.kind is ResponseKind.PORT_UNREACHABLE \
                and response.responder == decoded.dst:
            distance = distance_from_unreachable(response, _PREPROBE_TTL)
            if distance is not None:
                clamped = clamp_distance(distance, self.config.max_ttl)
                if clamped is not None:
                    self.preprobe_outcome.measured[offset] = clamped

    def _process_main(self, response: IcmpResponse, decoded, offset: int) -> None:
        dcb = self.dcb
        config = self.config
        prefix = self.base_prefix + offset
        kind = response.kind

        if kind is ResponseKind.TTL_EXCEEDED:
            ttl = decoded.initial_ttl
            self.result.add_hop(prefix, ttl, response.responder)
            horizon = min(ttl + config.gap_limit, 255)
            if horizon > dcb.forward_horizon[offset]:
                dcb.forward_horizon[offset] = horizon
            if ttl <= dcb.split[offset] and dcb.next_backward[offset] > 0:
                if ttl == 1:
                    dcb.next_backward[offset] = 0
                    if self._reg is not None:
                        self._reg.inc("scan.backward_stops.ttl1")
                    if self._events is not None:
                        self._events.stop_decision(
                            response.arrival_time, prefix, "ttl1", ttl)
                elif (config.redundancy_removal
                      and response.responder in self.stop_set):
                    dcb.next_backward[offset] = 0
                    if self._reg is not None:
                        self._reg.inc("scan.backward_stops.stop_set")
                    if self._events is not None:
                        self._events.stop_decision(
                            response.arrival_time, prefix, "stop_set", ttl)
            self.stop_set.add(response.responder)
            return

        if kind.is_unreachable:
            if (self._reg is not None or self._events is not None) \
                    and not dcb.dest_reached(offset):
                if self._reg is not None:
                    self._reg.inc("scan.forward_stops.dest_reached")
                if self._events is not None:
                    self._events.stop_decision(
                        response.arrival_time, prefix, "dest_reached",
                        decoded.initial_ttl)
            dcb.mark_dest_reached(offset)
            if kind is not ResponseKind.HOST_UNREACHABLE \
                    and response.responder == decoded.dst:
                distance = distance_from_unreachable(response,
                                                     decoded.initial_ttl)
                if distance is not None:
                    self.result.record_destination(prefix, distance)

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #

    def _run_preprobe(self) -> None:
        self.in_preprobe = True
        started = self.clock.now
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("phase", "preprobe", started,
                         folded=self.fold_preprobe)
        for offset in self.dcb.iter_ring():
            prefix = self.base_prefix + offset
            target = self.preprobe_targets.get(prefix)
            if target is None:
                continue
            self._drain(self.clock.now)
            self._send(target, _PREPROBE_TTL, is_preprobe=True)
        self.clock.advance(_SETTLE_SECONDS)
        self._drain(self.clock.now)
        self.in_preprobe = False

        outcome = self.preprobe_outcome
        outcome.probes = self.result.preprobe_probes
        outcome.duration = self.clock.now - started
        outcome.predicted = predict_distances(
            outcome.measured, self.num_prefixes, self.config.proximity_span)
        self._apply_split_points(outcome)
        if self._reg is not None:
            # Prediction ledger (§3.3.4): measured = a preprobe answered,
            # predicted = proximity-span extension, unresolved = neither
            # (the destination falls back to the default split TTL).
            reg = self._reg
            reg.inc("scan.preprobe.measured", len(outcome.measured))
            reg.inc("scan.preprobe.predicted", len(outcome.predicted))
            reg.inc("scan.preprobe.unresolved",
                    max(0, len(self.dcb) - len(outcome.measured)
                        - len(outcome.predicted)))
        if tracer is not None:
            tracer.end("phase", "preprobe", self.clock.now,
                       probes=outcome.probes,
                       measured=len(outcome.measured),
                       predicted=len(outcome.predicted))

    def _apply_split_points(self, outcome: PreprobeOutcome) -> None:
        gap_limit = self.config.gap_limit
        events = self._events
        for offset, distance in outcome.measured.items():
            self.dcb.set_distance(offset, distance, predicted=False)
            self.dcb.forward_horizon[offset] = min(distance + gap_limit, 255)
            if events is not None:
                events.preprobe_predict(self.clock.now,
                                        self.base_prefix + offset,
                                        distance, "measured")
        for offset, distance in outcome.predicted.items():
            self.dcb.set_distance(offset, distance, predicted=True)
            self.dcb.forward_horizon[offset] = min(distance + gap_limit, 255)
            if events is not None:
                events.preprobe_predict(self.clock.now,
                                        self.base_prefix + offset,
                                        distance, "predicted")
        if self.fold_preprobe:
            # Preprobing was the first main round: destinations without a
            # measured distance continue downward from TTL 31 (§3.3.5).
            for offset in self.dcb.iter_ring():
                if offset not in outcome.measured \
                        and offset not in outcome.predicted:
                    self.dcb.next_backward[offset] = _PREPROBE_TTL - 1

    def _destination_finished(self, offset: int) -> bool:
        dcb = self.dcb
        if self._retry is not None and self._retry.has_open(offset):
            # Outstanding (pending or re-armed) probes keep the
            # destination in the ring until they settle or exhaust.
            return False
        if dcb.next_backward[offset] > 0:
            return False
        if dcb.dest_reached(offset):
            return True
        limit = min(dcb.forward_horizon[offset], self.config.max_ttl)
        return dcb.next_forward[offset] > limit

    def _remove_finished(self, offset: int) -> None:
        """Retire a finished destination, attributing the forward-probing
        stop reason (telemetry only; removal itself is unconditional)."""
        dcb = self.dcb
        if (self._reg is not None or self._events is not None) \
                and not dcb.dest_reached(offset):
            # The forward walk ran out without an answer from the target:
            # a horizon below max_ttl means GapLimit silent hops in a row
            # cut it short (§3.4), otherwise it simply hit the TTL cap.
            limit = min(dcb.forward_horizon[offset], self.config.max_ttl)
            reason = ("gap_limit" if limit < self.config.max_ttl
                      else "max_ttl")
            if self._reg is not None:
                self._reg.inc(f"scan.forward_stops.{reason}")
            if self._events is not None:
                self._events.stop_decision(
                    self.clock.now, self.base_prefix + offset, reason,
                    limit)
        dcb.remove(offset)
        if self._events is not None:
            self._events.dcb_release(self.clock.now,
                                     self.base_prefix + offset)

    def _report_round_progress(self) -> None:
        progress = self._progress
        if progress is None or not progress.due(self.clock.now):
            return
        now = self.clock.now
        result = self.result
        progress.report(now, {
            "tool": result.tool,
            "round": result.rounds,
            "probes": result.probes_sent,
            "responses": result.responses,
            "pps": result.probes_sent / now if now > 0 else 0.0,
            "remaining": len(self.dcb),
            "interfaces": result.interface_count(),
        })

    def _run_main_rounds(self) -> None:
        config = self.config
        dcb = self.dcb
        reg = self._reg
        tracer = self._tracer
        retry = self._retry
        controller = self._controller
        resil = self._resil
        responses_before = 0
        drops_before = 0
        while len(dcb) > 0:
            if self.result.rounds >= config.max_rounds:
                self.result.aborted = True
                break
            self.result.rounds += 1
            round_start = self.clock.now
            occupancy = len(dcb)
            if reg is not None:
                record_scan_ring(reg, occupancy)
            if tracer is not None:
                tracer.begin("round", f"round-{self.result.rounds}",
                             round_start, occupancy=occupancy)
            probes_before = self.result.probes_sent
            if controller is not None:
                responses_before = self.result.responses
                drops_before = getattr(self.network, "drop_count", 0)
            for offset in dcb.iter_ring():
                self._drain(self.clock.now)
                if dcb.is_removed(offset):
                    continue
                destination = dcb.destination[offset]
                pair: List[Tuple[int, int]] = []
                retry_attempts: Optional[Dict[int, int]] = None
                if retry is not None:
                    due = retry.take_due(offset)
                    if due:
                        # Re-armed probes lead the burst, lowest TTL
                        # first, ahead of the round's regular pair.
                        retry_attempts = dict(due)
                        pair.extend((destination, ttl) for ttl, _ in due)
                backward = dcb.next_backward[offset]
                if backward >= 1:
                    pair.append((destination, backward))
                    dcb.next_backward[offset] = backward - 1
                if not dcb.dest_reached(offset):
                    forward = dcb.next_forward[offset]
                    limit = min(dcb.forward_horizon[offset], config.max_ttl)
                    if forward <= limit:
                        pair.append((destination, forward))
                        dcb.next_forward[offset] = forward + 1
                if pair:
                    self._send_batch(pair, retry_attempts)
                elif self._destination_finished(offset):
                    self._remove_finished(offset)
            self.clock.advance_to(round_start + config.round_seconds)
            self._drain(self.clock.now)
            if retry is not None:
                retry.sweep(self.clock.now)
            if controller is not None:
                decision = controller.observe_round(
                    self.result.probes_sent - probes_before,
                    self.result.responses - responses_before,
                    getattr(self.network, "drop_count", 0) - drops_before)
                if decision is not None:
                    reason, new_rate = decision
                    self.rate = new_rate
                    self.send_gap = 1.0 / new_rate
                    if self._events is not None:
                        self._events.rate_change(self.clock.now, new_rate,
                                                 reason)
            if tracer is not None:
                tracer.end("round", f"round-{self.result.rounds}",
                           self.clock.now,
                           probes=self.result.probes_sent - probes_before,
                           remaining=len(dcb))
            self._report_round_progress()
            if resil is not None:
                if resil.checkpoint_path is not None:
                    self._ckpt_state = self._capture_state()
                    self._rounds_since_ckpt += 1
                    if resil.checkpoint_every \
                            and self._rounds_since_ckpt \
                            >= resil.checkpoint_every:
                        self._write_checkpoint()
                        self._rounds_since_ckpt = 0
                if resil.round_hook is not None:
                    resil.round_hook(self.result.rounds)

    # ------------------------------------------------------------------ #
    # Checkpoint/resume
    # ------------------------------------------------------------------ #

    def _capture_state(self) -> dict:
        """Snapshot the complete scan state at a round boundary.

        Read-only: capturing never perturbs the scan, so enabling
        checkpointing keeps the ScanResult byte-identical (pinned by
        tests).  The route cache and its counters are excluded — they
        are derived from the immutable topology and performance-only.
        """
        now = self.clock.now
        state = {
            "engine": "flashroute",
            "granularity": self.config.granularity,
            "clock": now,
            "rate": self.rate,
            "rounds_done": self.result.rounds,
            "result": _result_to_dict(self.result),
            "stop_set": sorted(self.stop_set),
            "dcb": self.dcb.state_dict(),
            "queue": [response_to_dict(r) for r in self.queue.snapshot()],
            "retry": (self._retry.state_dict()
                      if self._retry is not None else None),
            "adaptive": (self._controller.state_dict()
                         if self._controller is not None else None),
            "network": None,
        }
        export = getattr(self.network, "export_dynamic_state", None)
        if export is not None:
            state["network"] = export(now)
        return state

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`_capture_state` snapshot (resume path)."""
        if state.get("engine") != "flashroute":
            raise CheckpointError(
                f"checkpoint engine {state.get('engine')!r} is not "
                f"flashroute")
        if state["granularity"] != self.config.granularity:
            raise CheckpointError(
                f"checkpoint granularity /{state['granularity']} does not "
                f"match this scan's /{self.config.granularity}")
        self.clock.now = state["clock"]
        self.rate = state["rate"]
        self.send_gap = 1.0 / self.rate
        self.result = result_from_dict(state["result"])
        self.stop_set.clear()
        self.stop_set.update(state["stop_set"])
        self.dcb.restore_state(state["dcb"])
        self.queue.load(response_from_dict(entry)
                        for entry in state["queue"])
        if state.get("retry") is not None and self._retry is not None:
            self._retry.restore_state(state["retry"])
        if state.get("adaptive") is not None \
                and self._controller is not None:
            self._controller.restore_state(state["adaptive"])
        if state.get("network") is not None:
            restore = getattr(self.network, "restore_dynamic_state", None)
            if restore is not None:
                restore(state["network"])

    def _write_checkpoint(self) -> str:
        resil = self._resil
        path = write_checkpoint(resil.checkpoint_path, "flashroute",
                                self._ckpt_state, resil.checkpoint_meta)
        self._checkpoints_written += 1
        if self._events is not None:
            self._events.checkpoint(self.clock.now,
                                    self._ckpt_state["rounds_done"])
        return path

    def _interrupt_checkpoint(self) -> Optional[str]:
        """Flush the last round-boundary snapshot on interrupt; ``None``
        when checkpointing is off or no boundary was reached yet."""
        resil = self._resil
        if resil is None or resil.checkpoint_path is None \
                or self._ckpt_state is None:
            return None
        return self._write_checkpoint()

    def _fold_resilience_metrics(self) -> None:
        reg = self._reg
        if reg is None:
            return
        if self._retry is not None:
            reg.inc("scan.retries.sent", self._retry.sent)
            reg.inc("scan.retries.recovered", self._retry.recovered)
            reg.inc("scan.retries.exhausted", self._retry.exhausted)
        if self._controller is not None:
            reg.inc("scan.adaptive.backoffs", self._controller.backoffs)
            reg.inc("scan.adaptive.recoveries", self._controller.recoveries)
        if self._checkpoints_written:
            reg.inc("scan.checkpoints.written", self._checkpoints_written)

    def execute(self, skip_preprobe: bool = False) -> ScanResult:
        set_cache = getattr(self.network, "set_route_cache_enabled", None)
        was_cached = None
        if not self.config.route_cache and set_cache is not None:
            was_cached = set_cache(False)
        tracer = self._tracer
        try:
            if tracer is not None:
                tracer.begin("scan", self.result.tool, self.clock.now,
                             targets=self.result.num_targets,
                             rate_pps=self.rate)
            if not skip_preprobe \
                    and self.config.preprobe is not PreprobeMode.NONE:
                self._run_preprobe()
            if tracer is not None:
                tracer.begin("phase", "main", self.clock.now)
            try:
                self._run_main_rounds()
            except KeyboardInterrupt:
                path = self._interrupt_checkpoint()
                if path is not None:
                    raise ScanInterrupted(path,
                                          self.result.rounds) from None
                raise
            self.clock.advance(_SETTLE_SECONDS)
            self._drain(self.clock.now)
            self.result.duration = self.clock.now
            if tracer is not None:
                tracer.end("phase", "main", self.clock.now,
                           rounds=self.result.rounds)
                tracer.end("scan", self.result.tool, self.clock.now,
                           probes=self.result.probes_sent,
                           responses=self.result.responses,
                           interfaces=self.result.interface_count())
            self._fold_resilience_metrics()
            if self.telemetry is not None:
                self.telemetry.record_result(self.result)
            return self.result
        finally:
            if was_cached:
                set_cache(True)


# --------------------------------------------------------------------- #
# Scanner registry entries (see repro.core.scanner)
# --------------------------------------------------------------------- #

from .scanner import ScannerOptions, register_scanner  # noqa: E402


def _flashroute_factory(default_split: int):
    def build(options: ScannerOptions) -> FlashRoute:
        overrides = {
            "split_ttl": (options.split_ttl if options.split_ttl is not None
                          else default_split),
            "gap_limit": (options.gap_limit if options.gap_limit is not None
                          else 5),
            "preprobe": (PreprobeMode(options.preprobe)
                         if options.preprobe is not None
                         else PreprobeMode.HITLIST),
            "probing_rate": options.probing_rate,
        }
        if options.seed is not None:
            overrides["seed"] = options.seed
        if options.resilience is not None:
            overrides["resilience"] = options.resilience
        return FlashRoute(FlashRouteConfig(**overrides),
                          telemetry=options.telemetry)
    return build


register_scanner("flashroute-16", _flashroute_factory(16))
register_scanner("flashroute-32", _flashroute_factory(32))


@register_scanner("yarrp-32-udp-sim")
def _build_yarrp32_udp_sim(options: ScannerOptions) -> FlashRoute:
    overrides = {"probing_rate": options.probing_rate}
    if options.seed is not None:
        overrides["seed"] = options.seed
    if options.resilience is not None:
        overrides["resilience"] = options.resilience
    return FlashRoute(FlashRouteConfig.yarrp32_udp_simulation(**overrides),
                      telemetry=options.telemetry)
