"""Random permutations computed on the fly (ZMap's technique).

Yarrp and FlashRoute both avoid preloading a shuffled target list: they
generate a random permutation of the whole probing domain *incrementally*,
with O(1) memory.  Two classic constructions are provided:

* :class:`FeistelPermutation` — a format-preserving encryption over
  ``[0, n)`` built from a 4-round Feistel network with cycle-walking.  Any
  index can be permuted independently (``perm[i]``), which FlashRoute uses
  to link its DCB ring in shuffled order in one pass.
* :class:`MultiplicativeCycle` — ZMap's original trick: iterate
  ``x -> g*x mod p`` over the multiplicative group of a prime ``p >= n+1``,
  skipping values outside the domain.  Iteration-only but extremely cheap
  per step; Yarrp uses it over the (prefix x TTL) space.
"""

from __future__ import annotations

import random
from typing import Iterator, List


class PermutationError(ValueError):
    """Raised for empty domains or invalid parameters."""


def _mix(value: int, key: int) -> int:
    """A small invertible-free mixing function for Feistel rounds."""
    value = (value ^ key) * 0x9E3779B1 & 0xFFFFFFFF
    value ^= value >> 15
    value = value * 0x85EBCA77 & 0xFFFFFFFF
    value ^= value >> 13
    return value


class FeistelPermutation:
    """A pseudorandom bijection on ``[0, n)`` with O(1) state.

    The domain is embedded in ``2k`` bits (the smallest even-bit square at
    least ``n``); out-of-range ciphertexts are re-encrypted until they land
    inside the domain (cycle-walking), which preserves bijectivity.
    """

    def __init__(self, n: int, seed: int, rounds: int = 4) -> None:
        if n <= 0:
            raise PermutationError("domain must be non-empty")
        if rounds < 2:
            raise PermutationError("need at least 2 Feistel rounds")
        self.n = n
        half_bits = 1
        while (1 << (2 * half_bits)) < n:
            half_bits += 1
        self._half_bits = half_bits
        self._half_mask = (1 << half_bits) - 1
        rng = random.Random(seed)
        self._keys: List[int] = [rng.getrandbits(32) for _ in range(rounds)]

    def _encrypt_once(self, value: int) -> int:
        left = (value >> self._half_bits) & self._half_mask
        right = value & self._half_mask
        for key in self._keys:
            left, right = right, left ^ (_mix(right, key) & self._half_mask)
        return (left << self._half_bits) | right

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> int:
        """Permuted value of ``index``; O(1) expected via cycle-walking."""
        if not 0 <= index < self.n:
            raise IndexError(index)
        value = self._encrypt_once(index)
        while value >= self.n:
            value = self._encrypt_once(value)
        return value

    def __iter__(self) -> Iterator[int]:
        for index in range(self.n):
            yield self[index]


def _is_prime(candidate: int) -> bool:
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate % small == 0:
            return candidate == small
    # Deterministic Miller-Rabin for 64-bit integers.
    d, s = candidate - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for base in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(base, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(s - 1):
            x = x * x % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _next_prime(value: int) -> int:
    candidate = value if value % 2 else value + 1
    while not _is_prime(candidate):
        candidate += 2
    return candidate


class MultiplicativeCycle:
    """ZMap-style full-cycle iteration over ``[0, n)``.

    Walks ``x -> g*x mod p`` for a prime ``p > n`` and a random generator
    seed element, yielding ``x - 1`` whenever it falls inside the domain.
    Visits every element of the domain exactly once per cycle.
    """

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise PermutationError("domain must be non-empty")
        self.n = n
        self.p = _next_prime(max(n + 1, 3))
        rng = random.Random(seed)
        # Any element generates a subgroup; to guarantee a full cycle we use
        # a primitive root when cheap to find, else fall back to repeated
        # squaring checks over random candidates.
        self.g = self._find_generator(rng)
        self.start = rng.randrange(1, self.p)

    def _find_generator(self, rng: random.Random) -> int:
        order = self.p - 1
        factors = _prime_factors(order)
        while True:
            candidate = rng.randrange(2, self.p)
            if all(pow(candidate, order // f, self.p) != 1 for f in factors):
                return candidate

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        value = self.start
        for _ in range(self.p - 1):
            if value <= self.n:
                yield value - 1
            value = value * self.g % self.p

    def value_at_step(self, steps: int) -> int:
        """Group element after ``steps`` multiplications: O(log steps) via
        modular exponentiation, so a checkpointed cursor resumes without
        replaying the walk."""
        if steps < 0:
            raise PermutationError("steps must be non-negative")
        return self.start * pow(self.g, steps, self.p) % self.p

    def iter_steps(self, first_step: int = 0,
                   stop_step: int = None) -> Iterator[tuple]:
        """Iterate ``(step, domain_value)`` pairs over group steps
        ``[first_step, stop_step)`` (``stop_step`` defaults to the full
        cycle length ``p - 1``).

        ``step`` counts *group* steps (including skipped out-of-domain
        elements), so it is the resumable cursor a checkpoint stores;
        ``iter_steps(0)`` yields exactly the values of ``__iter__``.
        """
        if stop_step is None:
            stop_step = self.p - 1
        if not 0 <= first_step <= self.p - 1:
            raise PermutationError(
                f"first_step must be in [0, {self.p - 1}]")
        if not first_step <= stop_step <= self.p - 1:
            raise PermutationError(
                f"stop_step must be in [{first_step}, {self.p - 1}]")
        value = self.value_at_step(first_step)
        for step in range(first_step, stop_step):
            if value <= self.n:
                yield step, value - 1
            value = value * self.g % self.p

    # ------------------------------------------------------------------ #
    # Shard slicing
    # ------------------------------------------------------------------ #

    def split_steps(self, num_shards: int) -> List[tuple]:
        """Contiguous ``(first_step, stop_step)`` ranges splitting the full
        group walk into ``num_shards`` near-equal pieces.

        ``iter_steps(first, stop)`` over the ranges in order replays the
        full cycle exactly: the ranges are disjoint, union-complete, and
        order-preserving.  Ranges at the tail may be empty when
        ``num_shards`` exceeds the cycle length.
        """
        if num_shards <= 0:
            raise PermutationError("num_shards must be positive")
        total = self.p - 1
        base, extra = divmod(total, num_shards)
        ranges = []
        first = 0
        for shard in range(num_shards):
            width = base + (1 if shard < extra else 0)
            ranges.append((first, first + width))
            first += width
        return ranges

    def iter_shard(self, shard_index: int,
                   num_shards: int) -> Iterator[tuple]:
        """The stride-``num_shards`` residue slice of the cycle's *emission*
        order: ``(emission_index, domain_value)`` for every in-domain value
        whose position in the full walk satisfies
        ``emission_index % num_shards == shard_index``.

        The ``num_shards`` slices partition the full cycle exactly —
        disjoint, union-complete, and (interleaved by emission index)
        reproducing ``__iter__``'s order — which is what lets independent
        workers walk deterministic subsets of the keyspace.
        """
        if num_shards <= 0:
            raise PermutationError("num_shards must be positive")
        if not 0 <= shard_index < num_shards:
            raise PermutationError(
                f"shard_index must be in [0, {num_shards})")
        for emission, (_, domain_value) in enumerate(self.iter_steps(0)):
            if emission % num_shards == shard_index:
                yield emission, domain_value


def _prime_factors(value: int) -> List[int]:
    factors = []
    divisor = 2
    while divisor * divisor <= value:
        if value % divisor == 0:
            factors.append(divisor)
            while value % divisor == 0:
                value //= divisor
        divisor += 1 if divisor == 2 else 2
    if value > 1:
        factors.append(value)
    return factors
