"""Resilience layer: probe retransmission, adaptive rate backoff, and
checkpoint/resume for the scanning engines.

FlashRoute (like Yarrp) sends exactly one probe per hop, so under loss
every dropped packet is a permanent route hole.  This module supplies the
three recovery mechanisms production scanners layer on top of that model:

* **Probe retransmission** — :class:`RetryTracker` keeps a per-destination
  ledger of unanswered (offset, ttl) probes and re-arms them, after a
  virtual-clock timeout, for the next ring round.  Scheduling is purely a
  function of the virtual clock, so same-seed faulted runs retry in the
  identical order.

* **Adaptive rate backoff** — :class:`AdaptiveRateController` watches the
  per-round response-loss ratio and the :class:`IcmpRateLimiter` drop
  counter and multiplicatively backs off / additively recovers the probing
  rate, bounded below by a floor.

* **Checkpoint/resume** — versioned, checksummed JSON snapshots of the
  complete scan state (DCB ring, stop set, partial ``ScanResult``,
  permutation cursor, virtual clock, in-flight response queue, fault and
  rate-limiter counters), written at round boundaries and on
  ``KeyboardInterrupt``, from which ``--resume`` continues to a
  ``ScanResult`` byte-identical to an uninterrupted same-seed run.

Everything here is opt-in: ``ResilienceConfig()`` defaults (``retries=0``,
adaptive rate off, no checkpoint path) leave every engine byte-identical
to the seed behaviour, and engines receive ``resilience=None`` by default.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..net.icmp import IcmpResponse, ResponseKind
from ..net.packets import ProbeHeader

CHECKPOINT_FORMAT = "flashroute-sim-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """Raised when a checkpoint file cannot be loaded or fails validation."""


class ScanInterrupted(KeyboardInterrupt):
    """A scan was interrupted and its state saved to ``checkpoint_path``.

    Subclasses ``KeyboardInterrupt`` so callers that only handle the plain
    interrupt still unwind correctly; the CLI catches this subtype to print
    the checkpoint path and exit 130.
    """

    def __init__(self, checkpoint_path: str, rounds: int) -> None:
        super().__init__(checkpoint_path)
        self.checkpoint_path = checkpoint_path
        self.rounds = rounds


@dataclass
class ResilienceConfig:
    """Knobs for the resilience layer, shared by every engine.

    Attributes:
        retries: extra probes allowed per unanswered (destination, ttl)
            hop.  0 (the default) disables retransmission entirely and
            keeps the engine byte-identical to the seed behaviour.
        retry_timeout: virtual seconds an outstanding probe may remain
            unanswered before it is re-armed for the next round.
        adaptive_rate: enable the backoff controller.
        backoff_factor: multiplicative factor applied to the rate when a
            round's loss (or rate-limiter drop ratio) crosses a threshold.
        recovery_fraction: fraction of the *base* rate added back per
            clean round (additive recovery).
        rate_floor_fraction: the rate never drops below this fraction of
            the base rate.
        loss_threshold: per-round response-loss ratio (1 - responses /
            probes) at or above which the controller backs off.  Clean
            scans have a naturally nonzero silent ratio (void hops,
            gap-limit overshoot), so this defaults well above it.
        drop_threshold: per-round (rate-limiter drops / probes) ratio at
            or above which the controller backs off.
        checkpoint_path: file to write checkpoints to; ``None`` disables
            checkpointing (interrupts then re-raise unannotated).
        checkpoint_every: write a checkpoint every N round boundaries
            (0 = only on interrupt; the state is still captured each
            round so an interrupt can always be saved).
        checkpoint_meta: opaque dict stored as ``invocation`` in the
            checkpoint file; the CLI records the scan flags here so
            ``--resume FILE`` can rebuild the topology and scanner.
        round_hook: test/ops hook called with the round number after each
            round boundary; may raise ``KeyboardInterrupt`` to simulate a
            mid-scan interrupt deterministically.
    """

    retries: int = 0
    retry_timeout: float = 1.0
    adaptive_rate: bool = False
    backoff_factor: float = 0.5
    recovery_fraction: float = 0.125
    rate_floor_fraction: float = 0.1
    loss_threshold: float = 0.85
    drop_threshold: float = 0.05
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0
    checkpoint_meta: Optional[dict] = None
    round_hook: Optional[Callable[[int], None]] = field(
        default=None, repr=False)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retries > 200:
            raise ValueError(f"retries must be <= 200, got {self.retries}")
        if self.retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if not 0.0 < self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be in (0, 1)")
        if not 0.0 < self.recovery_fraction <= 1.0:
            raise ValueError("recovery_fraction must be in (0, 1]")
        if not 0.0 < self.rate_floor_fraction <= 1.0:
            raise ValueError("rate_floor_fraction must be in (0, 1]")
        if not 0.0 < self.loss_threshold <= 1.0:
            raise ValueError("loss_threshold must be in (0, 1]")
        if self.drop_threshold <= 0.0:
            raise ValueError("drop_threshold must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when any mechanism deviates from the inert defaults."""
        return (self.retries > 0 or self.adaptive_rate
                or self.checkpoint_path is not None
                or self.round_hook is not None)

    @property
    def checkpoint_enabled(self) -> bool:
        return self.checkpoint_path is not None


class RetryTracker:
    """Deterministic ledger of unanswered probes awaiting retransmission.

    The tracker lives entirely in virtual time.  ``record_sent`` registers
    an outstanding probe; ``record_response`` settles it (whether the
    answer came for the original or any retry); ``sweep`` — called once
    per round boundary — moves probes older than ``timeout`` into the
    per-destination *due* lists, or drops them as exhausted once the
    budget is spent; ``take_due`` hands the engine the sorted list of
    (ttl, attempt) pairs to retransmit when the ring walk next visits the
    destination.  Because every transition is keyed off the virtual clock
    and the ring order, same-seed runs retry identically.
    """

    __slots__ = ("budget", "timeout", "pending", "due", "open_count",
                 "sent", "recovered", "exhausted")

    def __init__(self, budget: int, timeout: float) -> None:
        self.budget = budget
        self.timeout = timeout
        # (offset, ttl) -> (send_vt, attempt) of the latest transmission.
        self.pending: Dict[Tuple[int, int], Tuple[float, int]] = {}
        # offset -> list of (ttl, next_attempt) ready to retransmit.
        self.due: Dict[int, List[Tuple[int, int]]] = {}
        # offset -> outstanding entries (pending + due), for O(1)
        # destination-finished checks.
        self.open_count: Dict[int, int] = {}
        self.sent = 0        # retry probes actually transmitted
        self.recovered = 0   # answered probes whose attempt was > 0
        self.exhausted = 0   # probes dropped after the full budget

    def record_sent(self, offset: int, ttl: int, vt: float,
                    attempt: int) -> None:
        self.pending[(offset, ttl)] = (vt, attempt)
        self.open_count[offset] = self.open_count.get(offset, 0) + 1
        if attempt:
            self.sent += 1

    def record_response(self, offset: int, ttl: int) -> None:
        entry = self.pending.pop((offset, ttl), None)
        if entry is not None:
            self._dec(offset)
            if entry[1]:
                self.recovered += 1
            return
        # A late answer may race a probe already queued for retry.
        queued = self.due.get(offset)
        if queued:
            for i, (due_ttl, attempt) in enumerate(queued):
                if due_ttl == ttl:
                    del queued[i]
                    if not queued:
                        del self.due[offset]
                    self._dec(offset)
                    if attempt > 1:
                        self.recovered += 1
                    return

    def sweep(self, now: float) -> None:
        """Re-arm timed-out probes (or drop them once out of budget)."""
        if not self.pending:
            return
        expired = [key for key, (vt, _) in self.pending.items()
                   if vt + self.timeout <= now]
        for key in expired:
            vt, attempt = self.pending.pop(key)
            offset, ttl = key
            if attempt < self.budget:
                self.due.setdefault(offset, []).append((ttl, attempt + 1))
            else:
                self.exhausted += 1
                self._dec(offset)

    def take_due(self, offset: int) -> List[Tuple[int, int]]:
        """Pop this destination's retransmissions, sorted by TTL."""
        entries = self.due.pop(offset, None)
        if not entries:
            return []
        entries.sort()
        self.open_count[offset] = self.open_count.get(offset, 0) - len(entries)
        return entries

    def has_open(self, offset: int) -> bool:
        return self.open_count.get(offset, 0) > 0

    def _dec(self, offset: int) -> None:
        count = self.open_count.get(offset, 0) - 1
        if count > 0:
            self.open_count[offset] = count
        else:
            self.open_count.pop(offset, None)

    def state_dict(self) -> dict:
        return {
            "pending": [[off, ttl, vt, attempt] for (off, ttl), (vt, attempt)
                        in sorted(self.pending.items())],
            "due": [[off, ttl, attempt] for off in sorted(self.due)
                    for ttl, attempt in sorted(self.due[off])],
            "sent": self.sent,
            "recovered": self.recovered,
            "exhausted": self.exhausted,
        }

    def restore_state(self, state: dict) -> None:
        self.pending = {(off, ttl): (vt, attempt)
                        for off, ttl, vt, attempt in state["pending"]}
        self.due = {}
        for off, ttl, attempt in state["due"]:
            self.due.setdefault(off, []).append((ttl, attempt))
        self.open_count = {}
        for off, _ttl in self.pending:
            self.open_count[off] = self.open_count.get(off, 0) + 1
        for off, entries in self.due.items():
            self.open_count[off] = self.open_count.get(off, 0) + len(entries)
        self.sent = state["sent"]
        self.recovered = state["recovered"]
        self.exhausted = state["exhausted"]


class AdaptiveRateController:
    """Multiplicative-backoff / additive-recovery probing-rate controller.

    Once per round the engine reports the round's probe count, response
    count, and rate-limiter drop delta.  A round whose response-loss
    ratio reaches ``loss_threshold`` — or whose drop ratio reaches
    ``drop_threshold`` — halves the rate (``backoff_factor``), bounded by
    the floor; a clean round adds ``recovery_fraction`` of the base rate
    back, capped at the base.  Decisions depend only on deterministic
    per-round counters, so same-seed runs adapt identically.
    """

    __slots__ = ("base_rate", "rate", "floor", "backoff_factor",
                 "recovery_step", "loss_threshold", "drop_threshold",
                 "backoffs", "recoveries")

    def __init__(self, base_rate: float, config: ResilienceConfig) -> None:
        self.base_rate = base_rate
        self.rate = base_rate
        self.floor = max(base_rate * config.rate_floor_fraction, 1.0)
        self.backoff_factor = config.backoff_factor
        self.recovery_step = base_rate * config.recovery_fraction
        self.loss_threshold = config.loss_threshold
        self.drop_threshold = config.drop_threshold
        self.backoffs = 0
        self.recoveries = 0

    def observe_round(self, probes: int, responses: int,
                      drops: int) -> Optional[Tuple[str, float]]:
        """Digest one round's counters; returns ("backoff"|"recover",
        new_rate) when the rate changed, else ``None``."""
        if probes <= 0:
            return None
        loss = 1.0 - responses / probes
        if loss >= self.loss_threshold or drops / probes >= self.drop_threshold:
            new_rate = max(self.floor, self.rate * self.backoff_factor)
            if new_rate < self.rate:
                self.rate = new_rate
                self.backoffs += 1
                return ("backoff", new_rate)
            return None
        if self.rate < self.base_rate:
            new_rate = min(self.base_rate, self.rate + self.recovery_step)
            self.rate = new_rate
            self.recoveries += 1
            return ("recover", new_rate)
        return None

    def state_dict(self) -> dict:
        return {"rate": self.rate, "backoffs": self.backoffs,
                "recoveries": self.recoveries}

    def restore_state(self, state: dict) -> None:
        self.rate = state["rate"]
        self.backoffs = state["backoffs"]
        self.recoveries = state["recoveries"]


# ---------------------------------------------------------------------------
# Checkpoint serialization.

def response_to_dict(response: IcmpResponse) -> dict:
    """Serialize one queued response.  ``dup`` chains are not serialized:
    the ResponseQueue unrolls duplicates into their own entries at push
    time, so by the time a response sits in the heap its duplicate (if
    any) is a separate entry."""
    quoted = response.quoted
    return {
        "kind": response.kind.value,
        "responder": response.responder,
        "arrival_time": response.arrival_time,
        "quoted_residual_ttl": response.quoted_residual_ttl,
        "is_duplicate": response.is_duplicate,
        "quoted": {
            "src": quoted.src,
            "dst": quoted.dst,
            "ttl": quoted.ttl,
            "ipid": quoted.ipid,
            "proto": quoted.proto,
            "src_port": quoted.src_port,
            "dst_port": quoted.dst_port,
            "udp_length": quoted.udp_length,
            "tcp_seq": quoted.tcp_seq,
            "payload": quoted.payload.hex(),
        },
    }


def response_from_dict(data: dict) -> IcmpResponse:
    quoted = data["quoted"]
    header = ProbeHeader(
        src=quoted["src"], dst=quoted["dst"], ttl=quoted["ttl"],
        ipid=quoted["ipid"], proto=quoted["proto"],
        src_port=quoted["src_port"], dst_port=quoted["dst_port"],
        udp_length=quoted["udp_length"], tcp_seq=quoted["tcp_seq"],
        payload=bytes.fromhex(quoted["payload"]))
    response = IcmpResponse(
        kind=ResponseKind(data["kind"]), responder=data["responder"],
        quoted=header, arrival_time=data["arrival_time"],
        quoted_residual_ttl=data["quoted_residual_ttl"])
    response.is_duplicate = data["is_duplicate"]
    return response


def _state_checksum(state: dict) -> str:
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_checkpoint(path: str, engine: str, state: dict,
                     meta: Optional[dict] = None) -> str:
    """Write a versioned, checksummed checkpoint file; returns ``path``.

    The write is atomic: the document lands in ``path + ".tmp"`` first
    and is renamed over ``path`` only once fully flushed, so a crash
    mid-write can truncate at most the tmp file — the last complete
    checkpoint stays loadable and ``--resume`` never sees a torn file.
    """
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "engine": engine,
        "invocation": meta or {},
        "state_sha256": _state_checksum(state),
        "state": state,
    }
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(document, stream, sort_keys=True)
            stream.write("\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave a half-written tmp behind on the failure path; the
        # previous complete checkpoint at ``path`` is untouched either way.
        with contextlib.suppress(OSError):
            os.remove(tmp_path)
        raise
    return path


def load_checkpoint(path: str) -> dict:
    """Load and validate a checkpoint file.

    Returns the full document (``format``/``version``/``engine``/
    ``invocation``/``state``).  Raises :class:`CheckpointError` with a
    clear message on malformed, truncated, or version-mismatched files.
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{path}: not a valid checkpoint (truncated or malformed "
            f"JSON: {exc})") from exc
    if not isinstance(document, dict):
        raise CheckpointError(f"{path}: not a checkpoint file "
                              f"(top level is {type(document).__name__})")
    if document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: not a {CHECKPOINT_FORMAT} file "
            f"(format={document.get('format')!r})")
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version!r} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})")
    for key in ("engine", "state", "state_sha256"):
        if key not in document:
            raise CheckpointError(f"{path}: checkpoint is missing {key!r}")
    checksum = _state_checksum(document["state"])
    if checksum != document["state_sha256"]:
        raise CheckpointError(
            f"{path}: state checksum mismatch (file corrupt: expected "
            f"{document['state_sha256'][:12]}…, computed {checksum[:12]}…)")
    return document
