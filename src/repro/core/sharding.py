"""Sharded multi-worker scanning with a byte-stable merge.

The scan keyspace is cut into a **fixed number of logical slices**
(:data:`DEFAULT_SLICES`, independent of the worker count): the global
:class:`~repro.core.permutation.MultiplicativeCycle` over the prefix
domain assigns the ``k``-th emitted prefix to slice ``k % slices``
(exactly :meth:`~repro.core.permutation.MultiplicativeCycle.iter_shard`'s
stride-residue partition).  Each slice runs as an independent, fully
deterministic subscan — its own scanner instance, its own
:class:`~repro.simnet.network.SimulatedNetwork` (fresh virtual clock,
rate-limiter bins, route cache and fault counters) over the *shared
read-only* :class:`~repro.simnet.topology.Topology` — and ``--shards N``
merely distributes the slices over ``N`` worker processes.

Because a slice's outcome depends only on (topology config, tool options,
slice membership) and never on which worker ran it or when, the merged
output is **invariant in the worker count**: ``--shards 4`` produces the
same result file, metrics snapshot and event logs, byte for byte, as
``--shards 1`` (the single-worker baseline that runs the same slices
sequentially in one process).  The merge folds per-slice payloads in
slice-index order — reproducing the single-worker emission order — never
in completion order.

Worker-init contract (enforced by tests/test_sharding_workerinit.py):
the parent builds the :class:`Topology` once and workers inherit it via
``fork`` (copy-on-write, no per-worker rebuild); under ``spawn`` each
worker rebuilds it from the picklable
:class:`~repro.simnet.config.TopologyConfig`, which is deterministic in
its seed, so both start methods serve identical topologies.  Workers
never mutate the topology — all mutable per-scan state (rate-limiter
bins, caches, fault counters) lives in the per-slice network.

Checkpointing gains a shard dimension here: the parent writes an
``engine="sharded"`` checkpoint holding every *completed slice's* payload
(result, simnet stats, metrics, event bytes); resume re-runs only the
missing slices and merges to a byte-identical final output.  See
docs/scaling.md for the full contract.
"""

from __future__ import annotations

import base64
import io
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..simnet.config import TopologyConfig
from ..simnet.faults import FaultModel
from ..simnet.network import SimulatedNetwork
from ..simnet.topology import Topology
from .output import result_from_dict, result_to_dict
from .permutation import MultiplicativeCycle
from .resilience import (
    CheckpointError,
    ResilienceConfig,
    ScanInterrupted,
    write_checkpoint,
)
from .results import ScanResult
from .scanner import ScannerOptions, create_scanner
from .targets import random_targets

#: Logical slices the keyspace always splits into, independent of the
#: worker count — what makes the merged output invariant in ``--shards``.
DEFAULT_SLICES = 16

#: Salt mixed into the tool's seed for the slice-assignment permutation.
_SLICE_SALT = 0x51BCE5

#: Checkpoint engine tag of sharded-scan checkpoints.
SHARDED_ENGINE = "sharded"


class ShardError(RuntimeError):
    """A worker failed while scanning one slice; carries the slice index
    and the worker's formatted traceback.

    ``attempts`` counts how many times the slice was tried (1 + the
    exhausted ``--slice-retries`` budget); ``checkpoint_path`` names the
    salvage checkpoint holding every *completed* slice, when one could
    be written — ``--resume`` finishes the scan from it byte-identically
    instead of discarding the work.
    """

    def __init__(self, slice_index: int, worker_traceback: str,
                 attempts: int = 1,
                 checkpoint_path: Optional[str] = None) -> None:
        message = f"slice {slice_index} failed in a shard worker"
        if attempts > 1:
            message += f" (all {attempts} attempts)"
        message += f":\n{worker_traceback}"
        if checkpoint_path is not None:
            message += (f"\ncompleted slices salvaged to "
                        f"{checkpoint_path} (finish with --resume "
                        f"{checkpoint_path})")
        super().__init__(message)
        self.slice_index = slice_index
        self.worker_traceback = worker_traceback
        self.attempts = attempts
        self.checkpoint_path = checkpoint_path


@dataclass(frozen=True)
class ShardPlan:
    """Everything a worker needs to run one slice — plain, picklable data.

    ``shards`` is the worker-process count; ``slices`` the (fixed) logical
    decomposition.  ``shard_index`` selects one worker's residue class of
    slices (``slice % shards == shard_index``) for standalone runs.
    ``events_format`` is ``None`` (no event log), ``"jsonl"`` or
    ``"binary"``.
    """

    tool: str
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    shards: int = 1
    shard_index: Optional[int] = None
    slices: int = DEFAULT_SLICES
    # Scanner knobs (mirror ScannerOptions; telemetry/resilience objects
    # are built worker-side so the plan stays picklable).
    probing_rate: Optional[float] = None
    split_ttl: Optional[int] = None
    gap_limit: Optional[int] = None
    preprobe: Optional[str] = None
    # Fault model + serving mode.
    loss: float = 0.0
    blackout: float = 0.0
    fault_seed: int = 0
    use_route_cache: bool = True
    # Resilience (per-slice; checkpointing lives at the shard layer).
    retries: int = 0
    adaptive_rate: bool = False
    # Telemetry wishes.
    collect_metrics: bool = False
    events_format: Optional[str] = None
    events_sample: float = 1.0
    events_ring: Optional[int] = None
    #: Collect a per-slice span tree (merged into one multi-root forest
    #: by the parent — what ``scan --shards --trace`` writes).
    collect_trace: bool = False
    #: Base capture path; each slice writes its own suffixed file
    #: (``out.pcap`` -> ``out.slice00.pcap``, ...).
    pcap_base: Optional[str] = None
    #: Virtual-time interval between worker heartbeats; ``None`` streams
    #: no heartbeats (the zero-overhead default).
    heartbeat_interval: Optional[float] = None

    @classmethod
    def from_request(cls, request, *, collect_metrics: bool = False,
                     events_format: Optional[str] = None,
                     events_sample: float = 1.0,
                     events_ring: Optional[int] = None,
                     collect_trace: bool = False,
                     pcap_base: Optional[str] = None,
                     heartbeat_interval: Optional[float] = None
                     ) -> "ShardPlan":
        """The plan a :class:`repro.api.ScanRequest` implies.

        The request carries the scan's identity (tool, topology, knobs,
        faults, shard decomposition); the keyword-only extras are the
        telemetry *wishes* of this particular run, which are
        deliberately not part of the serialized request.
        """
        return cls(
            tool=request.tool, topology=request.topology_config(),
            shards=request.shards if request.shards is not None else 1,
            shard_index=request.shard_index,
            slices=request.shard_slices,
            probing_rate=request.rate, split_ttl=request.split_ttl,
            gap_limit=request.gap_limit, preprobe=request.preprobe,
            loss=request.loss, blackout=request.blackout,
            fault_seed=request.fault_seed,
            use_route_cache=request.route_cache,
            retries=request.retries, adaptive_rate=request.adaptive_rate,
            collect_metrics=collect_metrics, events_format=events_format,
            events_sample=events_sample, events_ring=events_ring,
            collect_trace=collect_trace, pcap_base=pcap_base,
            heartbeat_interval=heartbeat_interval)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.slices < 1:
            raise ValueError(f"slices must be >= 1, got {self.slices}")
        if self.shards > self.slices:
            raise ValueError(
                f"shards ({self.shards}) must not exceed the logical "
                f"slice count ({self.slices}); raise slices or lower "
                f"shards")
        if self.shard_index is not None \
                and not 0 <= self.shard_index < self.shards:
            raise ValueError(
                f"shard_index must be in [0, {self.shards}), got "
                f"{self.shard_index}")
        if self.events_format not in (None, "jsonl", "binary"):
            raise ValueError(
                f"events_format must be None, 'jsonl' or 'binary', got "
                f"{self.events_format!r}")
        if self.heartbeat_interval is not None \
                and self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got "
                f"{self.heartbeat_interval}")


@dataclass
class ShardedOutcome:
    """What a sharded scan hands back to the caller, already merged."""

    result: ScanResult
    simnet_stats: Dict[str, object]
    metrics_snapshot: Optional[Dict[str, object]] = None
    events_payload: Optional[object] = None  # str (JSONL) or bytes
    slices_total: int = 0
    slices_resumed: int = 0
    #: Failed slice attempts that were re-run under ``--slice-retries``
    #: (0 on a clean run; never affects the merged byte-stable outputs).
    slices_retried: int = 0
    #: Per-slice wall-side accounting (slice, worker pid, CPU seconds,
    #: wall seconds, probes) in slice order; the scaling benchmark sums
    #: per-worker throughput from it.  Slices restored from a checkpoint
    #: carry no pid/cpu (they were not run this time).
    slice_stats: List[Dict[str, object]] = field(default_factory=list)
    #: Merged multi-root span forest (JSONL text) when the plan collects
    #: traces; ``None`` otherwise.
    trace_payload: Optional[str] = None
    #: Per-slice capture files written this run, in slice order.
    pcap_paths: List[str] = field(default_factory=list)


# --------------------------------------------------------------------- #
# Slice construction
# --------------------------------------------------------------------- #

def _tool_profile(plan: ShardPlan) -> Tuple[int, int]:
    """The tool's effective (seed, granularity) for the target draw.

    Each engine defaults its targets to ``random_targets(topology,
    config.seed, granularity)``; the driver must pre-draw the *full* map
    with the same knobs (the draw is one sequential RNG over all
    prefixes, so per-slice draws would not compose) and hand each slice
    its sub-dict.
    """
    probe = create_scanner(plan.tool, _scanner_options(plan, None, None))
    config = getattr(probe, "config", probe)
    return getattr(config, "seed", 1), getattr(config, "granularity", 24)


def _scanner_options(plan: ShardPlan, telemetry, resilience
                     ) -> ScannerOptions:
    return ScannerOptions(
        probing_rate=plan.probing_rate, split_ttl=plan.split_ttl,
        gap_limit=plan.gap_limit, preprobe=plan.preprobe,
        telemetry=telemetry, resilience=resilience)


def slice_assignment(num_prefixes: int, seed: int,
                     slices: int) -> List[int]:
    """Slice index of each prefix offset, derived from the global
    permutation: the ``k``-th prefix the full
    :class:`MultiplicativeCycle` walk emits lands in slice
    ``k % slices`` (the same stride-residue partition
    :meth:`MultiplicativeCycle.iter_shard` yields slice by slice)."""
    cycle = MultiplicativeCycle(num_prefixes, seed=seed ^ _SLICE_SALT)
    assignment = [0] * num_prefixes
    for emission, offset in enumerate(cycle):
        assignment[offset] = emission % slices
    return assignment


def build_slice_targets(topology: Topology, plan: ShardPlan
                        ) -> List[Dict[int, int]]:
    """The full deterministic target map, cut into per-slice sub-dicts.

    Keys are block indexes at the tool's granularity; a /24's sub-blocks
    always travel with their /24's slice, so finer granularities shard
    along the same prefix partition.
    """
    seed, granularity = _tool_profile(plan)
    full = random_targets(topology, seed, granularity=granularity)
    prefixes = list(topology.scanned_prefixes())
    assignment = slice_assignment(len(prefixes), seed, plan.slices)
    slice_of = {prefix: assignment[index]
                for index, prefix in enumerate(prefixes)}
    shift = granularity - 24
    per_slice: List[Dict[int, int]] = [{} for _ in range(plan.slices)]
    for block, addr in full.items():
        per_slice[slice_of[block >> shift]][block] = addr
    return per_slice


# --------------------------------------------------------------------- #
# Per-slice execution (runs inside a worker process)
# --------------------------------------------------------------------- #

#: Worker-process context: set by :func:`_worker_init` (or inherited from
#: the parent via fork — see the worker-init contract in the module
#: docstring).
_WORKER: Dict[str, object] = {}


def _worker_init(plan: ShardPlan,
                 slice_targets: List[Dict[int, int]],
                 heartbeat: Optional[object] = None,
                 chaos: Optional[object] = None) -> None:
    """Populate the worker's shared read-only context exactly once.

    Under ``fork`` the parent populated :data:`_WORKER` before creating
    the pool, so the built topology is inherited copy-on-write and this
    returns immediately; under ``spawn`` the topology is rebuilt from the
    plan's picklable :class:`TopologyConfig` (deterministic in its seed,
    hence identical).

    ``heartbeat`` is the upstream heartbeat channel: a multiprocessing
    queue (pool mode) or a direct callable (sequential mode); ``None``
    streams nothing.  ``chaos`` is this run's (picklable)
    :class:`~repro.testing.chaos.ChaosSpec`, or ``None``.  Both are
    per-run state, normalized outside the plan-equality fast path, so a
    fork-inherited context still picks up this run's channel and spec —
    they are deliberately not part of the plan, whose equality gates the
    topology rebuild.
    """
    _WORKER["heartbeat"] = getattr(heartbeat, "put", heartbeat)
    _WORKER["chaos"] = chaos
    if _WORKER.get("plan") == plan and _WORKER.get("topology") is not None:
        return
    _WORKER["plan"] = plan
    _WORKER["topology"] = Topology(plan.topology)
    _WORKER["slice_targets"] = slice_targets


def _build_faults(plan: ShardPlan) -> FaultModel:
    # Mirror the CLI scan path, which always constructs a FaultModel (a
    # zero-rate model draws nothing), so per-slice networks serve probes
    # exactly as an unsharded CLI scan's network would.
    return FaultModel(probe_loss=plan.loss, response_loss=plan.loss,
                      blackout_fraction=plan.blackout,
                      seed=plan.fault_seed)


def _slice_resilience(plan: ShardPlan) -> Optional[ResilienceConfig]:
    if not (plan.retries or plan.adaptive_rate):
        return None
    return ResilienceConfig(retries=plan.retries,
                            adaptive_rate=plan.adaptive_rate)


def _execute_slice(plan: ShardPlan, topology: Topology,
                   targets: Dict[int, int], slice_index: int
                   ) -> Dict[str, object]:
    """Run one slice's subscan; returns a picklable, JSON-able payload."""
    from ..obs.events import EventRecorder, strip_event_header
    from ..obs.metrics import MetricsRegistry
    from ..obs.shardobs import ShardHeartbeatReporter, slice_pcap_path
    from ..obs.telemetry import Telemetry
    from ..obs.trace import ScanTracer

    network = SimulatedNetwork(topology,
                               use_route_cache=plan.use_route_cache,
                               faults=_build_faults(plan))
    telemetry = None
    events_sink = None
    trace_sink = None
    binary = plan.events_format == "binary"
    heartbeat_emit = (_WORKER.get("heartbeat")
                      if plan.heartbeat_interval is not None else None)
    if plan.collect_metrics or plan.events_format is not None \
            or plan.collect_trace or heartbeat_emit is not None:
        events = None
        if plan.events_format is not None:
            events_sink = io.BytesIO() if binary else io.StringIO()
            # The slice records its full stream; --events-ring trims
            # *after* the merge so sharded and single-worker ring files
            # agree (see repro.obs.events.merge_event_logs).
            events = EventRecorder(stream=events_sink, binary=binary,
                                   sample=plan.events_sample)
        tracer = None
        if plan.collect_trace:
            trace_sink = io.StringIO()
            tracer = ScanTracer(stream=trace_sink)
        progress = None
        if heartbeat_emit is not None:
            progress = ShardHeartbeatReporter(plan.heartbeat_interval,
                                              heartbeat_emit, slice_index)
        # Registry only when the merged snapshot needs it: a heartbeat-
        # or trace-only slice keeps the engine's per-probe counters off
        # (the metrics hot path costs real throughput — see the
        # heartbeat_overhead benchmark).
        telemetry = Telemetry(
            registry=MetricsRegistry() if plan.collect_metrics else None,
            metrics=plan.collect_metrics,
            tracer=tracer, progress=progress, events=events)
    pcap_path = None
    pcap_handle = None
    scan_network = network
    if plan.pcap_base is not None:
        from ..simnet.capture import CapturingNetwork

        pcap_path = slice_pcap_path(plan.pcap_base, slice_index,
                                    plan.slices)
        pcap_handle = open(pcap_path, "wb")
        scan_network = CapturingNetwork(network, pcap_handle)
    scanner = create_scanner(
        plan.tool,
        _scanner_options(plan, telemetry, _slice_resilience(plan)))
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    try:
        result = scanner.scan(scan_network, targets=dict(targets))
    finally:
        if pcap_handle is not None:
            pcap_handle.close()
    cpu_seconds = time.process_time() - cpu_start
    wall_seconds = time.perf_counter() - wall_start
    payload: Dict[str, object] = {
        "slice": slice_index,
        "result": result_to_dict(result),
        "stats": network.stats(),
        # Wall-side accounting for the scaling benchmark and the shard
        # wall report: which worker process ran the slice and how much
        # CPU/wall time the scan took.  Never part of the merged
        # (byte-stable) outputs.
        "pid": os.getpid(),
        "cpu_seconds": cpu_seconds,
        "wall_seconds": wall_seconds,
    }
    if pcap_path is not None:
        payload["pcap"] = pcap_path
    if telemetry is not None:
        telemetry.record_network(network)
        telemetry.close()
        if plan.collect_metrics:
            payload["metrics"] = telemetry.registry.snapshot()
        if events_sink is not None:
            payload["events"] = strip_event_header(events_sink.getvalue(),
                                                   binary)
        if trace_sink is not None:
            payload["trace"] = trace_sink.getvalue()
    return payload


def _run_slice_job(job) -> Dict[str, object]:
    """Pool entry point: run one slice attempt from the worker context.

    ``job`` is ``(slice_index, attempt)`` (a bare index means attempt
    0).  Failures are returned as payloads (not raised) so the parent
    can attribute them to the slice and either retry it under the
    ``--slice-retries`` budget or fail the scan with the worker's
    traceback (see :class:`ShardError`).  A chaos spec in the worker
    context may kill the attempt at the slice boundary — through the
    very same error-payload path a real crash takes.
    """
    slice_index, attempt = job if isinstance(job, tuple) else (job, 0)
    try:
        chaos = _WORKER.get("chaos")
        if chaos is not None:
            from ..testing.chaos import maybe_kill_slice

            maybe_kill_slice(chaos, slice_index, attempt)
        return _execute_slice(_WORKER["plan"], _WORKER["topology"],
                              _WORKER["slice_targets"][slice_index],
                              slice_index)
    except KeyboardInterrupt:  # pragma: no cover - propagation path
        raise
    except BaseException:
        return {"slice": slice_index, "attempt": attempt,
                "error": traceback.format_exc()}


# --------------------------------------------------------------------- #
# Merging
# --------------------------------------------------------------------- #

def merge_results(results: Sequence[ScanResult]) -> ScanResult:
    """Fold per-slice :class:`ScanResult`s (in slice order) into one.

    Per-prefix maps union (slices are disjoint by construction); probe
    and response counters sum; ``duration``/``rounds`` take the maximum
    (slices run concurrently on independent virtual clocks).  With the
    same slice decomposition, the merged result — and hence its
    :meth:`~ScanResult.fingerprint` — is identical for every worker
    count.
    """
    if not results:
        raise ValueError("need at least one result to merge")
    first = results[0]
    merged = ScanResult(tool=first.tool, granularity=first.granularity)
    for result in results:
        if result.tool != first.tool:
            raise ValueError(
                f"cannot merge results from different tools: "
                f"{first.tool!r} vs {result.tool!r}")
        merged.num_targets += result.num_targets
        merged.routes.update(result.routes)
        merged.dest_distance.update(result.dest_distance)
        merged.targets.update(result.targets)
        merged.probes_sent += result.probes_sent
        merged.preprobe_probes += result.preprobe_probes
        merged.responses += result.responses
        merged.duplicate_responses += result.duplicate_responses
        merged.mismatched_quotes += result.mismatched_quotes
        merged.skipped_probes += result.skipped_probes
        merged.duration = max(merged.duration, result.duration)
        merged.rounds = max(merged.rounds, result.rounds)
        merged.aborted = merged.aborted or result.aborted
        merged.ttl_probe_histogram.update(result.ttl_probe_histogram)
        merged.response_kinds.update(result.response_kinds)
        merged.rtt_sum_ms += result.rtt_sum_ms
        merged.rtt_count += result.rtt_count
    return merged


def _sum_dicts(dicts: Sequence[Optional[Dict[str, int]]],
               last_wins: Tuple[str, ...] = ()) -> Optional[Dict[str, int]]:
    present = [d for d in dicts if d is not None]
    if not present:
        return None
    merged: Dict[str, int] = dict.fromkeys(present[0], 0)
    for entry in present:
        for key, value in entry.items():
            if key in last_wins:
                merged[key] = value
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


def merge_simnet_stats(stats_list: Sequence[Dict[str, object]]
                       ) -> Dict[str, object]:
    """Fold per-slice ``SimulatedNetwork.stats()`` dicts in slice order.

    Counters sum across the slices' independent networks; the rate
    limiter's ``limit`` is a configuration gauge (identical per slice)
    and keeps the last value.  ``overprobed_interfaces`` and the cache
    size gauges sum per-slice state — shared transit interfaces/routes
    can be counted once per slice, which is documented in
    docs/scaling.md and excluded from the equivalence contract the same
    way ``simnet.cache.*`` already is.
    """
    if not stats_list:
        raise ValueError("need at least one stats dict to merge")
    merged: Dict[str, object] = {
        "probes_sent": sum(s["probes_sent"] for s in stats_list),
        "responses_generated": sum(s["responses_generated"]
                                   for s in stats_list),
        "rewritten_responses": sum(s["rewritten_responses"]
                                   for s in stats_list),
        "ratelimit": _sum_dicts([s["ratelimit"] for s in stats_list],
                                last_wins=("limit",)),
        "route_cache": _sum_dicts([s["route_cache"] for s in stats_list]),
        "faults": _sum_dicts([s["faults"] for s in stats_list]),
    }
    return merged


def _merged_metrics(plan: ShardPlan, ordered: List[Dict[str, object]],
                    result: ScanResult) -> Optional[Dict[str, object]]:
    if not plan.collect_metrics:
        return None
    from ..obs.metrics import merge_snapshots

    snapshot = merge_snapshots([payload["metrics"] for payload in ordered])
    # Scan-wide gauges are properties of the merged scan, not of the last
    # slice: overwrite them from the merged result so the snapshot reads
    # like one scan's registry.
    gauges = snapshot["gauges"]
    gauges["scan.duration_virtual_seconds"] = result.duration
    gauges["scan.targets"] = result.num_targets
    if result.duration > 0:
        gauges["scan.rate_pps"] = result.probes_sent / result.duration
    snapshot["gauges"] = {name: gauges[name] for name in sorted(gauges)}
    return snapshot


def _merged_events(plan: ShardPlan,
                   ordered: List[Dict[str, object]]) -> Optional[object]:
    if plan.events_format is None:
        return None
    from ..obs.events import merge_event_logs

    return merge_event_logs([payload["events"] for payload in ordered],
                            binary=plan.events_format == "binary",
                            ring=plan.events_ring)


def _merged_trace(plan: ShardPlan,
                  ordered: List[Dict[str, object]]) -> Optional[str]:
    if not plan.collect_trace:
        return None
    from ..obs.shardobs import merge_trace_logs

    return merge_trace_logs([payload["trace"] for payload in ordered])


def _shard_metrics(plan: ShardPlan, snapshot: Optional[Dict[str, object]],
                   ordered: List[Dict[str, object]],
                   results: Sequence[ScanResult]
                   ) -> Optional[Dict[str, object]]:
    """The merged snapshot plus the per-slice shard dimension."""
    if snapshot is None:
        return None
    from ..obs.shardobs import add_shard_dimension

    pairs = [(payload["slice"], result)
             for payload, result in zip(ordered, results)]
    return add_shard_dimension(snapshot, pairs, plan.slices)


# --------------------------------------------------------------------- #
# Checkpointing (the shard dimension of the PR-5 format)
# --------------------------------------------------------------------- #

def _payload_to_state(payload: Dict[str, object]) -> Dict[str, object]:
    state = {"result": payload["result"], "stats": payload["stats"]}
    if "metrics" in payload:
        state["metrics"] = payload["metrics"]
    if "trace" in payload:
        state["trace"] = payload["trace"]
    if "events" in payload:
        events = payload["events"]
        if isinstance(events, bytes):
            state["events_b64"] = base64.b64encode(events).decode("ascii")
        else:
            state["events_text"] = events
    return state


def _payload_from_state(slice_index: int,
                        state: Dict[str, object]) -> Dict[str, object]:
    payload: Dict[str, object] = {"slice": slice_index,
                                  "result": state["result"],
                                  "stats": state["stats"]}
    if "metrics" in state:
        payload["metrics"] = state["metrics"]
    if "trace" in state:
        payload["trace"] = state["trace"]
    if "events_b64" in state:
        payload["events"] = base64.b64decode(state["events_b64"])
    elif "events_text" in state:
        payload["events"] = state["events_text"]
    return payload


def _checkpoint_state(plan: ShardPlan,
                      completed: Dict[int, Dict[str, object]]
                      ) -> Dict[str, object]:
    return {
        "engine": SHARDED_ENGINE,
        "tool": plan.tool,
        "slices": plan.slices,
        "completed": {str(index): _payload_to_state(completed[index])
                      for index in sorted(completed)},
    }


def load_sharded_state(plan: ShardPlan, state: Dict[str, object]
                       ) -> Dict[int, Dict[str, object]]:
    """Validate a sharded checkpoint's state against ``plan`` and decode
    the completed-slice payloads.  Raises :class:`CheckpointError` on an
    engine/tool/slice-count mismatch — resuming under a different
    decomposition would merge mismatched keyspaces."""
    if state.get("engine") != SHARDED_ENGINE:
        raise CheckpointError(
            f"checkpoint engine {state.get('engine')!r} is not "
            f"{SHARDED_ENGINE!r}")
    if state.get("tool") != plan.tool:
        raise CheckpointError(
            f"checkpoint tool {state.get('tool')!r} does not match "
            f"{plan.tool!r}")
    if state.get("slices") != plan.slices:
        raise CheckpointError(
            f"checkpoint has {state.get('slices')!r} slices, this scan "
            f"uses {plan.slices}")
    completed = {}
    for key, payload_state in state.get("completed", {}).items():
        index = int(key)
        if not 0 <= index < plan.slices:
            raise CheckpointError(f"checkpoint slice {index} out of range")
        if plan.collect_trace and "trace" not in payload_state:
            raise CheckpointError(
                f"checkpoint slice {index} carries no span tree; the "
                f"interrupted run did not use --trace, so the resumed "
                f"one cannot either")
        completed[index] = _payload_from_state(index, payload_state)
    return completed


# --------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------- #

def _pool_context(start_method: Optional[str] = None):
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} unavailable on this "
                f"platform (have {methods})")
        return multiprocessing.get_context(start_method)
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


#: How long the parent blocks on the next slice result before draining
#: the heartbeat queue (seconds); only used when heartbeats stream.
_HEARTBEAT_POLL_SECONDS = 0.1


def _drain_heartbeats(queue, progress) -> None:
    """Feed every queued worker heartbeat into the progress view."""
    while True:
        try:
            record = queue.get_nowait()
        except Exception:  # queue.Empty (or a closed queue on teardown)
            return
        progress.observe(record)


def run_sharded_scan(plan: ShardPlan, *,
                     topology: Optional[Topology] = None,
                     checkpoint_path: Optional[str] = None,
                     checkpoint_every: int = 1,
                     checkpoint_meta: Optional[dict] = None,
                     resume_state: Optional[dict] = None,
                     slice_hook: Optional[Callable[[int], None]] = None,
                     progress=None,
                     start_method: Optional[str] = None,
                     slice_retries: int = 0,
                     chaos=None,
                     salvage_path: Optional[str] = None,
                     ) -> ShardedOutcome:
    """Run a sharded scan end to end and return the merged outcome.

    ``slice_hook`` is called with the total completed-slice count after
    every slice (the shard-layer analog of the engines' ``round_hook``);
    raising ``KeyboardInterrupt`` from it simulates an interrupt
    deterministically.  On interrupt with a ``checkpoint_path`` the
    completed slices are flushed and :class:`ScanInterrupted` is raised;
    ``resume_state`` (the ``"state"`` payload of such a checkpoint) skips
    the already-completed slices, and the finished scan is byte-identical
    to an uninterrupted one.

    ``progress`` is a :class:`repro.obs.shardobs.ShardProgressView` (or
    compatible object with ``observe``/``slice_done``/``finish``): slice
    completions always feed it, and when the plan sets
    ``heartbeat_interval`` the workers additionally stream heartbeats to
    it — over a multiprocessing queue in pool mode, directly in
    sequential mode.  ``start_method`` forces a specific multiprocessing
    start method (``"fork"``/``"spawn"``) for tests; the default picks
    fork where available.

    ``slice_retries`` is the per-slice retry budget: a crashed slice is
    re-run (in a later pass over the same pool) up to that many extra
    times.  Slice subscans are deterministic, so a retried run's merged
    output is byte-identical to a clean one.  When a slice exhausts the
    budget, every *completed* slice is salvaged into a PR 5/6-format
    checkpoint — at ``checkpoint_path`` when set, else ``salvage_path``
    — and the raised :class:`ShardError` carries that path so
    ``--resume`` can finish the scan instead of discarding the work.
    ``chaos`` is an optional
    :class:`~repro.testing.chaos.ChaosSpec` whose seeded worker kills
    exercise exactly this machinery.
    """
    if slice_retries < 0:
        raise ValueError(
            f"slice_retries must be >= 0, got {slice_retries}")
    if topology is None:
        topology = Topology(plan.topology)
    slice_targets = build_slice_targets(topology, plan)
    completed: Dict[int, Dict[str, object]] = {}
    if resume_state is not None:
        completed = load_sharded_state(plan, resume_state)
    slices_resumed = len(completed)
    slices_retried = 0
    pending = [index for index in range(plan.slices)
               if index not in completed]
    if plan.shard_index is not None:
        pending = [index for index in pending
                   if index % plan.shards == plan.shard_index]

    def flush_checkpoint(target: Optional[str] = None) -> Optional[str]:
        path = target if target is not None else checkpoint_path
        if path is None:
            return None
        return write_checkpoint(path, SHARDED_ENGINE,
                                _checkpoint_state(plan, completed),
                                meta=checkpoint_meta)

    def salvage() -> Optional[str]:
        """Exhausted retries: persist every completed slice so the scan
        can be finished with ``--resume`` (an empty-state checkpoint is
        still written — the contract is that exhausted retries always
        leave something resumable when a path is configured)."""
        target = checkpoint_path if checkpoint_path is not None \
            else salvage_path
        if target is None:
            return None
        return flush_checkpoint(target)

    def on_complete(payload: Dict[str, object], attempt: int,
                    failed: List[int]) -> None:
        nonlocal slices_retried
        if "error" in payload:
            if attempt < slice_retries:
                slices_retried += 1
                failed.append(payload["slice"])
                return
            raise ShardError(payload["slice"], payload["error"],
                             attempts=attempt + 1,
                             checkpoint_path=salvage())
        completed[payload["slice"]] = payload
        finished = len(completed)
        if checkpoint_path is not None and checkpoint_every \
                and (finished - slices_resumed) % checkpoint_every == 0:
            flush_checkpoint()
        if progress is not None:
            progress.slice_done(payload["slice"],
                                payload["result"]["probes_sent"],
                                payload["result"]["duration"])
        if slice_hook is not None:
            slice_hook(finished)

    heartbeats = plan.heartbeat_interval is not None \
        and progress is not None
    workers = min(plan.shards, len(pending))
    try:
        if workers <= 1:
            # Sequential mode: heartbeats short-circuit the queue and
            # feed the view directly.  Failed slices carry over into the
            # next pass (attempt) until the retry budget runs dry.
            _worker_init(plan, slice_targets,
                         heartbeat=progress.observe if heartbeats
                         else None,
                         chaos=chaos)
            to_run, attempt = list(pending), 0
            while to_run:
                failed: List[int] = []
                for index in to_run:
                    on_complete(_run_slice_job((index, attempt)),
                                attempt, failed)
                to_run, attempt = sorted(failed), attempt + 1
        else:
            # Populate the parent-side context first so fork()ed workers
            # inherit the built topology copy-on-write (the worker-init
            # contract); spawn-based platforms rebuild it per worker from
            # the picklable plan (the queue and chaos spec ride along in
            # initargs, which multiprocessing allows during worker
            # spawning).  Retry passes resubmit only the failed slices
            # to the same pool — respawning the work, not the scan.
            context = _pool_context(start_method)
            heartbeat_queue = context.Queue() if heartbeats else None
            _worker_init(plan, slice_targets, heartbeat=heartbeat_queue,
                         chaos=chaos)
            with context.Pool(processes=workers,
                              initializer=_worker_init,
                              initargs=(plan, slice_targets,
                                        heartbeat_queue, chaos)) as pool:
                to_run, attempt = list(pending), 0
                while to_run:
                    failed = []
                    iterator = pool.imap_unordered(
                        _run_slice_job,
                        [(index, attempt) for index in to_run])
                    remaining = len(to_run)
                    while remaining:
                        if heartbeat_queue is not None:
                            try:
                                payload = iterator.next(
                                    _HEARTBEAT_POLL_SECONDS)
                            except multiprocessing.TimeoutError:
                                _drain_heartbeats(heartbeat_queue,
                                                  progress)
                                continue
                            _drain_heartbeats(heartbeat_queue, progress)
                        else:
                            payload = next(iterator)
                        remaining -= 1
                        on_complete(payload, attempt, failed)
                    to_run, attempt = sorted(failed), attempt + 1
                if heartbeat_queue is not None:
                    _drain_heartbeats(heartbeat_queue, progress)
    except KeyboardInterrupt:
        path = flush_checkpoint()
        if path is not None:
            raise ScanInterrupted(path, rounds=len(completed)) from None
        raise

    ordered = [completed[index] for index in sorted(completed)]
    if not ordered:
        raise ValueError("sharded scan completed no slices")
    results = [result_from_dict(payload["result"])
               for payload in ordered]
    result = merge_results(results)
    if progress is not None:
        progress.finish(result.probes_sent)
    return ShardedOutcome(
        result=result,
        simnet_stats=merge_simnet_stats([payload["stats"]
                                         for payload in ordered]),
        metrics_snapshot=_shard_metrics(
            plan, _merged_metrics(plan, ordered, result), ordered,
            results),
        events_payload=_merged_events(plan, ordered),
        slices_total=plan.slices,
        slices_resumed=slices_resumed,
        slices_retried=slices_retried,
        slice_stats=[{"slice": payload["slice"],
                      "pid": payload.get("pid"),
                      "cpu_seconds": payload.get("cpu_seconds"),
                      "wall_seconds": payload.get("wall_seconds"),
                      "probes": payload["result"]["probes_sent"]}
                     for payload in ordered],
        trace_payload=_merged_trace(plan, ordered),
        pcap_paths=[payload["pcap"] for payload in ordered
                    if "pcap" in payload],
    )
