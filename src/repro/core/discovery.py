"""Discovery-optimized mode (paper §5.2).

A normal FlashRoute-32 scan builds a stop set containing the majority of
discovered interfaces.  The mode then runs a configurable number of *extra*
scans, backward probing only, each starting from a random TTL in [1, 32]
per destination and using source port ``P + i`` (``P`` being the
checksum-derived base port) so per-flow load balancers route the probes
through alternative diamond branches.  Extra scans share the stop set, so
they only explore previously unseen route sections and finish quickly.

The paper's §5.4 sketches a refinement — pick the random starting TTL near
the route length measured by the main scan instead of uniformly in [1, 32]
("length-guided" here); both policies are implemented and compared by the
``test_ablation_discovery_start`` benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from ..simnet.network import SimulatedNetwork
from .config import FlashRouteConfig, PreprobeMode
from .prober import FlashRoute
from .results import ScanResult, union_interfaces
from .scanner import sanctioned_construction


@dataclass
class DiscoveryOptimizedResult:
    """The main scan, the extra scans, and the combined discovery."""

    main: ScanResult
    extras: List[ScanResult] = field(default_factory=list)

    def all_scans(self) -> List[ScanResult]:
        return [self.main] + self.extras

    def interfaces(self) -> frozenset:
        return union_interfaces(self.all_scans())

    def total_probes(self) -> int:
        return sum(result.probes_sent for result in self.all_scans())

    def total_duration(self) -> float:
        return sum(result.duration for result in self.all_scans())

    def summary(self) -> str:
        return (f"discovery-optimized: interfaces={len(self.interfaces()):,} "
                f"probes={self.total_probes():,} "
                f"scans=1+{len(self.extras)}")


def _random_start_ttls(targets: Dict[int, int], rng: random.Random,
                       max_ttl: int) -> Dict[int, int]:
    """Uniform random starting TTL in [1, max_ttl] per destination."""
    return {prefix: rng.randint(1, max_ttl) for prefix in targets}


def _length_guided_start_ttls(targets: Dict[int, int], main: ScanResult,
                              rng: random.Random, max_ttl: int,
                              slack: int = 5) -> Dict[int, int]:
    """Starting TTL in [1, route_length + slack], per §5.4's proposal."""
    start: Dict[int, int] = {}
    for prefix in targets:
        length = main.route_length(prefix)
        upper = min(length + slack, max_ttl) if length is not None else max_ttl
        start[prefix] = rng.randint(1, max(upper, 1))
    return start


def run_discovery_optimized(network: SimulatedNetwork,
                            config: Optional[FlashRouteConfig] = None,
                            extra_scans: int = 3,
                            targets: Optional[Dict[int, int]] = None,
                            length_guided: bool = False,
                            vary_destination: bool = False,
                            seed: int = 5) -> DiscoveryOptimizedResult:
    """Run a FlashRoute-32 scan plus ``extra_scans`` port-varied extra scans.

    Returns the individual scan results; the combined interface set is the
    mode's discovery output.  ``length_guided`` switches the starting-TTL
    policy to the paper's future-work heuristic; ``vary_destination``
    enables the paper's other §5.4 proposal — each extra scan traces a
    *different* random address within every block, hunting distinct
    internal paths rather than (only) load-balanced alternatives.
    """
    if extra_scans < 0:
        raise ValueError("extra_scans must be non-negative")
    base = config if config is not None else FlashRouteConfig.flashroute_32()
    stop_set: Set[int] = set()
    rng = random.Random(seed)

    # Library-internal orchestration: construction is sanctioned here so
    # only *callers outside* the library see the deprecation nudge.
    with sanctioned_construction():
        main_scanner = FlashRoute(base)
    main = main_scanner.scan(network, targets=targets, stop_set=stop_set,
                             tool_name="FlashRoute-32 (main)")
    if targets is None:
        targets = dict(main.targets)

    extras: List[ScanResult] = []
    for index in range(1, extra_scans + 1):
        if vary_destination:
            from .targets import random_targets

            extra_targets = random_targets(network.topology,
                                           seed=seed * 7919 + index,
                                           granularity=base.granularity)
        else:
            extra_targets = targets
        if length_guided:
            start_ttls = _length_guided_start_ttls(extra_targets, main, rng,
                                                   base.max_ttl)
        else:
            start_ttls = _random_start_ttls(extra_targets, rng, base.max_ttl)
        extra_config = replace(base,
                               preprobe=PreprobeMode.NONE,
                               gap_limit=0,  # backward probing only
                               scan_offset=index,
                               seed=base.seed + index)
        with sanctioned_construction():
            extra_scanner = FlashRoute(extra_config)
        extra = extra_scanner.scan(
            network, targets=extra_targets, stop_set=stop_set,
            start_ttls=start_ttls, tool_name=f"extra-scan-{index}")
        extras.append(extra)
    return DiscoveryOptimizedResult(main=main, extras=extras)
