"""Minimal clients for the scan daemon's NDJSON protocol.

:func:`trace_stream` is the asyncio building block (the load-test
harness runs hundreds of these concurrently); :func:`request_trace` is
the one-call synchronous convenience for scripts and tests.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional, Tuple

from .daemon import MAX_LINE


async def open_connection(host: Optional[str] = None,
                          port: Optional[int] = None,
                          socket_path: Optional[str] = None):
    if socket_path is not None:
        return await asyncio.open_unix_connection(socket_path,
                                                  limit=MAX_LINE)
    return await asyncio.open_connection(host, port, limit=MAX_LINE)


async def send_request(reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter,
                       payload: dict) -> Tuple[List[dict], dict]:
    """Send one request on an open connection; collect its response.

    Returns ``(hops, terminal)`` where ``terminal`` is the ``done``,
    ``error``, or control-response record.
    """
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    hops: List[dict] = []
    while True:
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection "
                                  "mid-response")
        record = json.loads(line)
        if record.get("type") == "hop":
            hops.append(record)
            continue
        return hops, record


async def trace_stream(payload: dict, host: Optional[str] = None,
                       port: Optional[int] = None,
                       socket_path: Optional[str] = None
                       ) -> Tuple[List[dict], dict]:
    """One request on a fresh connection (one concurrent client)."""
    reader, writer = await open_connection(host, port, socket_path)
    try:
        return await send_request(reader, writer, payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


def request_trace(payload: dict, host: Optional[str] = None,
                  port: Optional[int] = None,
                  socket_path: Optional[str] = None
                  ) -> Tuple[List[dict], dict]:
    """Synchronous one-shot: connect, request, collect, disconnect."""
    return asyncio.run(trace_stream(payload, host=host, port=port,
                                    socket_path=socket_path))


class DaemonClient:
    """One persistent connection issuing sequential requests.

    The polling consumers (``flashroute-sim top``, monitoring scripts)
    reuse a single connection across frames instead of reconnecting per
    poll.  Use as an async context manager::

        async with DaemonClient(host=..., port=...) as client:
            stats = await client.control("stats")
    """

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None,
                 socket_path: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "DaemonClient":
        self._reader, self._writer = await open_connection(
            self.host, self.port, self.socket_path)
        return self

    async def request(self, payload: dict) -> Tuple[List[dict], dict]:
        """One request/response exchange (trace or control op)."""
        if self._reader is None or self._writer is None:
            raise ConnectionError("client is not connected")
        return await send_request(self._reader, self._writer, payload)

    async def control(self, op: str, **fields) -> dict:
        """Issue a control op and return its response record."""
        _, record = await self.request({"control": op, **fields})
        return record

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "DaemonClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
