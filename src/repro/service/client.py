"""Minimal clients for the scan daemon's NDJSON protocol.

:func:`trace_stream` is the asyncio building block (the load-test
harness runs hundreds of these concurrently); :func:`request_trace` is
the one-call synchronous convenience for scripts and tests.

Every client operation is bounded by a timeout
(:data:`DEFAULT_TIMEOUT` unless overridden): a daemon that accepts the
connection but never answers — wedged event loop, half-dead host —
surfaces as a clear :class:`~repro.service.daemon.ServiceError` instead
of hanging the caller forever.  Pass ``timeout=None`` to wait without
bound.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional, Tuple

from .daemon import MAX_LINE, ServiceError

#: Generous default: a simulated trace answers in milliseconds, so a
#: connect or read that takes this long means the daemon is wedged,
#: not slow.
DEFAULT_TIMEOUT = 30.0


async def _bounded(awaitable, timeout: Optional[float], what: str):
    """Await with a bound; timeouts become a clear :class:`ServiceError`."""
    if timeout is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout)
    except asyncio.TimeoutError:
        raise ServiceError(
            f"timed out after {timeout:g}s waiting for {what}; "
            f"the daemon accepted the connection but is not responding"
        ) from None


async def open_connection(host: Optional[str] = None,
                          port: Optional[int] = None,
                          socket_path: Optional[str] = None,
                          timeout: Optional[float] = DEFAULT_TIMEOUT):
    if socket_path is not None:
        return await _bounded(
            asyncio.open_unix_connection(socket_path, limit=MAX_LINE),
            timeout, f"connect to {socket_path}")
    return await _bounded(
        asyncio.open_connection(host, port, limit=MAX_LINE),
        timeout, f"connect to {host}:{port}")


async def send_request(reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter,
                       payload: dict,
                       timeout: Optional[float] = DEFAULT_TIMEOUT
                       ) -> Tuple[List[dict], dict]:
    """Send one request on an open connection; collect its response.

    Returns ``(hops, terminal)`` where ``terminal`` is the ``done``,
    ``error``, or control-response record.  ``timeout`` bounds each
    read (per record, not the whole stream: a live hop stream resets
    the clock with every record).
    """
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    hops: List[dict] = []
    while True:
        line = await _bounded(reader.readline(), timeout,
                              "a response record")
        if not line:
            raise ConnectionError("server closed the connection "
                                  "mid-response")
        record = json.loads(line)
        if record.get("type") == "hop":
            hops.append(record)
            continue
        return hops, record


async def trace_stream(payload: dict, host: Optional[str] = None,
                       port: Optional[int] = None,
                       socket_path: Optional[str] = None,
                       timeout: Optional[float] = DEFAULT_TIMEOUT
                       ) -> Tuple[List[dict], dict]:
    """One request on a fresh connection (one concurrent client)."""
    reader, writer = await open_connection(host, port, socket_path,
                                           timeout=timeout)
    try:
        return await send_request(reader, writer, payload,
                                  timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


def request_trace(payload: dict, host: Optional[str] = None,
                  port: Optional[int] = None,
                  socket_path: Optional[str] = None,
                  timeout: Optional[float] = DEFAULT_TIMEOUT
                  ) -> Tuple[List[dict], dict]:
    """Synchronous one-shot: connect, request, collect, disconnect."""
    return asyncio.run(trace_stream(payload, host=host, port=port,
                                    socket_path=socket_path,
                                    timeout=timeout))


class DaemonClient:
    """One persistent connection issuing sequential requests.

    The polling consumers (``flashroute-sim top``, monitoring scripts)
    reuse a single connection across frames instead of reconnecting per
    poll.  Use as an async context manager::

        async with DaemonClient(host=..., port=...) as client:
            stats = await client.control("stats")

    ``timeout`` bounds the connect and each response read
    (:data:`DEFAULT_TIMEOUT` by default; ``None`` waits forever).
    """

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None,
                 socket_path: Optional[str] = None,
                 timeout: Optional[float] = DEFAULT_TIMEOUT) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "DaemonClient":
        self._reader, self._writer = await open_connection(
            self.host, self.port, self.socket_path,
            timeout=self.timeout)
        return self

    async def request(self, payload: dict) -> Tuple[List[dict], dict]:
        """One request/response exchange (trace or control op)."""
        if self._reader is None or self._writer is None:
            raise ConnectionError("client is not connected")
        return await send_request(self._reader, self._writer, payload,
                                  timeout=self.timeout)

    async def control(self, op: str, **fields) -> dict:
        """Issue a control op and return its response record."""
        _, record = await self.request({"control": op, **fields})
        return record

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "DaemonClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
