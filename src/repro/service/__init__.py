"""Traceroute-as-a-service: the long-lived asyncio scan daemon.

``flashroute-sim serve`` holds one warm :class:`repro.api.Engine`
(topology + simulated network, the expensive part) and answers JSON
trace requests over a local TCP or Unix socket, streaming per-hop
records in the Manifold hop schema.  Request coalescing, an LRU result
cache with epoch-based invalidation, and the load-test harness live
here; see docs/service.md for the wire protocol and operations guide.
"""

from .daemon import (CacheEntry, Flight, ServiceError, TraceService,
                     serve, start_service)
from .client import (DEFAULT_TIMEOUT, DaemonClient, request_trace,
                     trace_stream)
from .obs import RateRing, RequestContext, ServiceTelemetry
from .top import render_frame, run_top

__all__ = [
    "CacheEntry",
    "DEFAULT_TIMEOUT",
    "DaemonClient",
    "Flight",
    "RateRing",
    "RequestContext",
    "ServiceError",
    "ServiceTelemetry",
    "TraceService",
    "render_frame",
    "request_trace",
    "run_top",
    "serve",
    "start_service",
    "trace_stream",
]
