"""Traceroute-as-a-service: the long-lived asyncio scan daemon.

``flashroute-sim serve`` holds one warm :class:`repro.api.Engine`
(topology + simulated network, the expensive part) and answers JSON
trace requests over a local TCP or Unix socket, streaming per-hop
records in the Manifold hop schema.  Request coalescing, an LRU result
cache with epoch-based invalidation, and the load-test harness live
here; see docs/service.md for the wire protocol and operations guide.
"""

from .daemon import CacheEntry, Flight, ServiceError, TraceService, serve
from .client import request_trace, trace_stream

__all__ = [
    "CacheEntry",
    "Flight",
    "ServiceError",
    "TraceService",
    "request_trace",
    "serve",
    "trace_stream",
]
