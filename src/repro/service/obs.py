"""Service-layer observability: the daemon's instrument panel.

:class:`ServiceTelemetry` is the optional bundle
:class:`~repro.service.daemon.TraceService` accepts — ``None`` (the
default) keeps every request path byte-identical to the uninstrumented
daemon, matching the engine-telemetry contract from ``repro.obs``.  When
enabled it provides:

* **Request ids + span trees.**  Every request gets a monotonically
  assigned id and a ``service.request`` span with sequential
  ``service.phase`` children (``receive`` → ``cache-lookup`` →
  ``cache-replay`` / ``coalesce-join`` / ``probe-stream`` → ``respond``).
  Concurrent requests interleave on the event loop, so each request's
  spans are buffered in its :class:`RequestContext` and flushed to the
  shared :class:`~repro.obs.trace.ScanTracer` atomically at request end —
  the JSONL stays a valid LIFO span tree (``validate_trace`` passes).
* **Per-outcome latency histograms** (``fresh`` / ``hit`` /
  ``coalesced`` / ``error`` / ``cancelled``) recorded in **virtual
  time** into the :class:`~repro.obs.metrics.MetricsRegistry`, so
  same-virtual-clock runs snapshot byte-identically.  Wall-clock twins
  (exact recent-window percentiles, the slow-request log, rolling rates)
  are quarantined in the ``wall`` report, never in the snapshot.
* **A rolling time-series ring** (:class:`RateRing`) of periodic counter
  samples powering req/s, probes/s and hit-rate over the last N windows
  — what the ``metrics`` control op and ``flashroute-sim top`` render.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.trace import ScanTracer

#: Outcome classes a completed request is binned into.  ``cancelled``
#: covers clients that disconnected before their terminal record;
#: ``deadline`` requests ran out of their ``deadline_ms`` budget;
#: ``shed`` requests were refused by admission control (overload or
#: drain) without being served.  The coherence identity stays exact:
#: ``requests == fresh + hit + coalesced + error + cancelled +
#: deadline + shed``.  Histogram counters are created lazily, so a
#: daemon that never sheds or deadlines snapshots byte-identically to
#: one built before these outcomes existed.
OUTCOMES = ("fresh", "hit", "coalesced", "error", "cancelled",
            "deadline", "shed")

#: Default wall-latency threshold beyond which a request enters the
#: slow-request log.
DEFAULT_SLOW_MS = 500.0
#: Slow-log ring capacity (most recent entries win).
DEFAULT_SLOW_LOG = 64
#: Per-outcome window of recent wall latencies kept for exact p50/p99.
DEFAULT_WALL_WINDOW = 1024
#: Rate-ring capacity (periodic counter samples).
DEFAULT_RING_SLOTS = 120
#: Default wall seconds between background counter samples.
DEFAULT_SAMPLE_INTERVAL = 0.5
#: A fresh trace that sent more probes than this is slow because of its
#: probe count (a long path / gap-limit walk), not merely the cache miss.
PROBE_COUNT_THRESHOLD = 48

#: Virtual-latency histogram buckets: sub-millisecond to minutes, a
#: 1-2-5 ladder tight enough to resolve per-hop probe gaps (20 ms).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 30_000, 60_000, 300_000)


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending list."""
    if not sorted_values:
        raise ValueError("no values")
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def latency_summary(values_ms: List[float]) -> Dict[str, float]:
    """The ``count``/``p50``/``p90``/``p99``/``max`` summary of a latency
    sample (used by the wall report and the load-test breakdown)."""
    ordered = sorted(values_ms)
    return {
        "count": len(ordered),
        "p50": round(percentile(ordered, 0.50), 3),
        "p90": round(percentile(ordered, 0.90), 3),
        "p99": round(percentile(ordered, 0.99), 3),
        "max": round(ordered[-1], 3),
    }


def classify_slow_cause(outcome: str, probes: int) -> str:
    """Attribute a slow request to its dominant cause.

    Coalesced requests waited on someone else's flight; errors are their
    own class; cache hits only replay; a fresh trace is slow because it
    missed the cache — unless it sent an outsized probe train, in which
    case the walk itself (probe count) is the cause.
    """
    if outcome == "coalesced":
        return "coalesce_wait"
    if outcome == "error":
        return "error"
    if outcome == "hit":
        return "cache_replay"
    if outcome == "cancelled":
        return "client_disconnect"
    if outcome == "deadline":
        return "deadline_exceeded"
    if outcome == "shed":
        return "overload_shed"
    return "probe_count" if probes > PROBE_COUNT_THRESHOLD \
        else "cache_miss"


class RequestContext:
    """Per-request trace state: id, clocks and the buffered span list.

    Spans are sequential phases of one request; :meth:`phase` closes the
    open phase at ``vt`` and opens the next, so the buffered list always
    forms a flat chain under the request's root span.
    """

    __slots__ = ("rid", "vt_start", "wall_start", "destination", "flow",
                 "spans", "finished", "_open")

    def __init__(self, rid: int, vt_start: float,
                 wall_start: float) -> None:
        self.rid = rid
        self.vt_start = vt_start
        self.wall_start = wall_start
        self.destination: Optional[str] = None
        self.flow: Optional[int] = None
        self.spans: List[Tuple[str, float, float]] = []
        self.finished = False
        self._open: Optional[Tuple[str, float]] = ("receive", vt_start)

    def describe(self, request) -> None:
        """Attach the parsed request identity (after ``receive``)."""
        from ..net.addr import int_to_ip

        self.destination = int_to_ip(request.destination)
        self.flow = request.flow

    def phase(self, name: str, vt: float) -> None:
        """Close the open phase at ``vt`` and begin ``name``."""
        self._close(vt)
        self._open = (name, vt)

    def _close(self, vt: float) -> None:
        if self._open is not None:
            name, begin = self._open
            self.spans.append((name, begin, vt))
            self._open = None

    def flush(self, tracer, vt_end: float, **fields) -> None:
        """Write the whole request tree into ``tracer`` in one step.

        Called exactly once, from the event loop, after the request
        finished — so concurrent requests never interleave their spans
        in the JSONL and the file stays a valid span tree.
        """
        self._close(vt_end)
        tracer.begin("service.request", f"req-{self.rid}", self.vt_start,
                     rid=self.rid, destination=self.destination,
                     flow=self.flow)
        for name, begin, end in self.spans:
            tracer.begin("service.phase", name, begin)
            tracer.end("service.phase", name, end)
        tracer.end("service.request", f"req-{self.rid}", vt_end, **fields)


class RateRing:
    """A rolling ring of ``(wall_time, counters)`` samples.

    The daemon's sampler task (and every ``metrics`` poll) appends; rate
    queries difference the newest sample against the one ``window``
    samples back, so req/s, probes/s and hit-rate reflect the last N
    windows rather than the process lifetime.
    """

    def __init__(self, slots: int = DEFAULT_RING_SLOTS,
                 min_interval: float = 0.1) -> None:
        if slots < 2:
            raise ValueError("rate ring needs at least 2 slots")
        self.min_interval = min_interval
        self._samples: Deque[Tuple[float, Dict[str, int]]] = \
            deque(maxlen=slots)

    def __len__(self) -> int:
        return len(self._samples)

    def sample(self, wall_now: float, counters: Dict[str, int]) -> bool:
        """Append a sample unless the last one is younger than the
        minimum interval (polling and the background sampler coexist)."""
        if self._samples \
                and wall_now - self._samples[-1][0] < self.min_interval:
            return False
        self._samples.append((wall_now, dict(counters)))
        return True

    def rates(self, window: int = 20) -> Dict[str, object]:
        """Rates over (up to) the last ``window`` sample intervals."""
        if len(self._samples) < 2:
            return {"window_seconds": 0.0, "samples": len(self._samples)}
        samples = list(self._samples)[-(window + 1):]
        (t0, c0), (t1, c1) = samples[0], samples[-1]
        dt = t1 - t0
        if dt <= 0:
            return {"window_seconds": 0.0, "samples": len(samples)}
        d_req = c1.get("requests", 0) - c0.get("requests", 0)
        d_hits = c1.get("cache_hits", 0) - c0.get("cache_hits", 0)
        d_probes = c1.get("probes_sent", 0) - c0.get("probes_sent", 0)
        return {
            "window_seconds": round(dt, 3),
            "samples": len(samples),
            "req_per_s": round(d_req / dt, 1),
            "probes_per_s": round(d_probes / dt, 1),
            "hit_rate": (round(d_hits / d_req, 4) if d_req > 0 else None),
        }


class ServiceTelemetry:
    """The daemon's optional observability bundle.

    Deterministic state (counters, virtual-time latency histograms)
    lives in :attr:`registry`; everything wall-clock — recent-window
    latency percentiles, the slow-request log, the rate ring, loop lag —
    is quarantined in :meth:`wall_report` and the saved snapshot's
    ``wall`` section, so two daemons driven through the same
    virtual-clock sequence snapshot byte-identically.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[ScanTracer] = None, *,
                 slow_ms: float = DEFAULT_SLOW_MS,
                 slow_log: int = DEFAULT_SLOW_LOG,
                 wall_window: int = DEFAULT_WALL_WINDOW,
                 ring_slots: int = DEFAULT_RING_SLOTS,
                 sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
                 wall_clock=time.perf_counter) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer
        self.slow_ms = slow_ms
        self.sample_interval = sample_interval
        self.wall_clock = wall_clock
        self.started_wall = wall_clock()
        self.slow_total = 0
        self.slow_requests: Deque[Dict[str, object]] = \
            deque(maxlen=slow_log)
        self.ring = RateRing(slots=ring_slots)
        self.loop_lag_ms: Optional[float] = None
        self.loop_lag_max_ms = 0.0
        self._next_rid = 1
        self._wall_latencies: Dict[str, Deque[float]] = {
            outcome: deque(maxlen=wall_window) for outcome in OUTCOMES}

    @classmethod
    def create(cls, trace_path: Optional[str] = None,
               slow_ms: float = DEFAULT_SLOW_MS,
               sample_interval: float = DEFAULT_SAMPLE_INTERVAL
               ) -> "ServiceTelemetry":
        """The CLI constructor: a fresh registry, a file tracer when a
        trace path was requested."""
        tracer = (ScanTracer(path=trace_path)
                  if trace_path is not None else None)
        return cls(tracer=tracer, slow_ms=slow_ms,
                   sample_interval=sample_interval)

    # -- request lifecycle ------------------------------------------------

    def begin_request(self, vt: float) -> RequestContext:
        """Assign the next request id and open its span tree."""
        rid = self._next_rid
        self._next_rid += 1
        return RequestContext(rid, vt, self.wall_clock())

    def finish_request(self, service, ctx: RequestContext, outcome: str,
                       vt: float, virtual_ms: float = 0.0,
                       probes: int = 0, hops: int = 0,
                       error: Optional[str] = None) -> None:
        """Record one completed request: counters, histograms, wall
        twins, slow log, and the flushed span tree."""
        if ctx.finished:
            return
        ctx.finished = True
        registry = self.registry
        registry.inc("service.requests.total")
        registry.inc(f"service.requests.{outcome}")
        registry.observe(f"service.latency_virtual_ms.{outcome}",
                         virtual_ms, buckets=LATENCY_BUCKETS)
        if hops:
            registry.inc("service.hops.streamed", hops)
        wall_ms = (self.wall_clock() - ctx.wall_start) * 1000.0
        self._wall_latencies[outcome].append(wall_ms)
        if wall_ms >= self.slow_ms:
            self.slow_total += 1
            self.slow_requests.append({
                "rid": ctx.rid,
                "destination": ctx.destination,
                "flow": ctx.flow,
                "outcome": outcome,
                "wall_ms": round(wall_ms, 3),
                "virtual_ms": round(virtual_ms, 3),
                "probes": probes,
                "cause": classify_slow_cause(outcome, probes),
                "error": error,
            })
        if self.tracer is not None:
            fields: Dict[str, object] = {
                "rid": ctx.rid, "outcome": outcome,
                "virtual_ms": round(virtual_ms, 3),
                "probes": probes, "hops": hops}
            if error is not None:
                fields["error"] = error
            ctx.flush(self.tracer, vt, **fields)

    def record_flight_probes(self, probes: int) -> None:
        """Fold a completed flight's probe train into the registry (the
        flight, not its subscribers, owns the probes)."""
        self.registry.inc("service.probes.sent", probes)

    def record_shed(self, reason: str) -> None:
        """Count one admission refusal under ``service.shed.<reason>``
        (``overloaded`` at the in-flight/queue gate, ``draining``
        during graceful shutdown).  Counters appear lazily — a daemon
        that never sheds carries no ``service.shed.*`` keys."""
        self.registry.inc("service.shed.total")
        self.registry.inc(f"service.shed.{reason}")

    # -- loop health and rates --------------------------------------------

    def note_loop_lag(self, lag_ms: float) -> None:
        self.loop_lag_ms = lag_ms
        self.loop_lag_max_ms = max(self.loop_lag_max_ms, lag_ms)

    def sample(self, service) -> bool:
        """Append a counter sample to the rate ring (sampler task and
        every ``metrics`` poll both land here)."""
        return self.ring.sample(self.wall_clock(), {
            "requests": service.requests,
            "cache_hits": service.cache_hits,
            "probes_sent": service.probes_sent,
        })

    # -- reports ----------------------------------------------------------

    def metrics_snapshot(self, service) -> Dict[str, object]:
        """The deterministic registry snapshot with the service's own
        counters folded in as gauges (no wall-clock data anywhere)."""
        registry = self.registry
        registry.set_gauge("service.requests.received", service.requests)
        registry.set_gauge("service.traces.started",
                           service.traces_started)
        registry.set_gauge("service.cache.entries", service.cache_len)
        registry.set_gauge("service.cache.evicted_epoch",
                           service.evicted_epoch)
        registry.set_gauge("service.cache.evicted_lru",
                           service.evicted_lru)
        registry.set_gauge("service.inflight", service.inflight)
        registry.set_gauge("service.now_virtual", service.now)
        registry.set_gauge("service.epoch", service.epoch)
        return registry.snapshot()

    def wall_report(self) -> Dict[str, object]:
        """Everything wall-clock, quarantined from the snapshot: exact
        recent-window latency percentiles per outcome, rolling rates,
        the slow-request log and event-loop lag."""
        latency = {outcome: latency_summary(list(values))
                   for outcome, values in sorted(
                       self._wall_latencies.items()) if values}
        return {
            "uptime_seconds": round(
                self.wall_clock() - self.started_wall, 3),
            "latency_ms": latency,
            "rates": self.ring.rates(),
            "slow_threshold_ms": self.slow_ms,
            "slow_total": self.slow_total,
            "slow_requests": list(self.slow_requests),
            "loop_lag_ms": self.loop_lag_ms,
            "loop_lag_max_ms": round(self.loop_lag_max_ms, 3),
        }

    def save(self, path: str, service) -> None:
        """Persist the snapshot (``metrics-report``-compatible), wall
        data confined to the file's ``wall`` section."""
        from ..obs.metrics import save_snapshot

        save_snapshot(self.metrics_snapshot(service), path,
                      extra_wall=self.wall_report())

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()
