"""The scan daemon: a warm engine answering streamed trace requests.

Layering:

* :class:`TraceService` — the transport-free core.  Owns the warm
  :class:`repro.api.Engine`, the in-flight registry (request
  coalescing), the LRU result cache with epoch-based invalidation and
  the service counters.  Tests drive it directly, without sockets.
* :func:`serve` / the connection handler — NDJSON over an asyncio TCP
  or Unix-domain socket.  One JSON object per line in, one per line
  out; each connection handles its requests sequentially, concurrency
  comes from concurrent connections.

Wire protocol (see docs/service.md for the full reference)::

    → {"destination": "20.0.0.7", "flow": 3}
    ← {"type": "hop", "ip": "60.0.0.0", "ttl": 1, ...}      (per hop)
    ← {"type": "done", "cache": "miss", "epoch": 0, "trace": {...}}

    → {"control": "stats"}
    ← {"type": "stats", "requests": 12, "cache_hits": 7, ...}

Coalescing: requests for the same ``(destination, flow)`` while a trace
is in flight share its probe stream — a late subscriber first replays
the hops already streamed, then rides along live.  Caching: a finished
trace is stored under its key, tagged with the **route epoch** it ran
in; a lookup in a later epoch discards the entry (the simulated
network's routes flap every ``flap_epoch_seconds``, so the cached path
may no longer exist).  Cache hits re-stream the stored hops without
touching the network — the engine's probe counters stay flat.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Tuple

from ..api import Engine, ScanRequest, TraceRequest
from .obs import ServiceTelemetry

#: Traces a warm engine can answer per second is bounded by the event
#: loop, not the virtual network; each *fresh* trace nudges the service's
#: virtual clock forward by this many virtual seconds, so route epochs
#: roll over after ``flap_epoch_seconds / TRACE_TICK`` traces and the
#: cache's epoch invalidation exercises itself in long-running daemons.
TRACE_TICK = 1.0

#: Default LRU capacity of the result cache (entries, not bytes).
DEFAULT_CACHE_SIZE = 4096

#: Event-loop lag (ms) beyond which the ``health`` op reports the
#: daemon as not live — the loop is too far behind to serve promptly.
LIVENESS_LAG_MS = 1000.0


class ServiceError(ValueError):
    """A client-visible request failure (maps to an ``error`` record)."""


@dataclass
class CacheEntry:
    """One finished trace, stored under its ``(destination, flow)`` key."""

    epoch: int
    hops: List[dict]
    result: dict


class Flight:
    """One in-flight trace and its subscribers.

    The probe stream runs in a detached task; every subscriber —
    the originating client plus any coalesced late joiners — gets the
    already-streamed prefix on subscribe, then live records via its own
    queue.  A subscriber that disconnects unsubscribes its queue; the
    flight itself always runs to completion so the result is cached for
    the next request either way.
    """

    _DONE = object()  # queue sentinel

    def __init__(self, key: Tuple[int, int], epoch: int) -> None:
        self.key = key
        self.epoch = epoch
        self.hops: List[dict] = []
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.done = False
        self.task: Optional[asyncio.Task] = None
        self._queues: List[asyncio.Queue] = []

    @property
    def subscriber_count(self) -> int:
        return len(self._queues)

    def subscribe(self) -> Tuple[List[dict], Optional[asyncio.Queue]]:
        """Snapshot the replay prefix and register a live queue.

        Synchronous on purpose: the snapshot and the registration happen
        in one event-loop step, so no hop can fall between them.  A
        finished flight returns no queue — the snapshot is complete.
        """
        replay = list(self.hops)
        if self.done:
            return replay, None
        queue: asyncio.Queue = asyncio.Queue()
        self._queues.append(queue)
        return replay, queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._queues.remove(queue)
        except ValueError:
            pass  # already dropped by finish()

    def publish(self, record: dict) -> None:
        self.hops.append(record)
        for queue in self._queues:
            queue.put_nowait(record)

    def finish(self, result: Optional[dict], error: Optional[str] = None
               ) -> None:
        self.result = result
        self.error = error
        self.done = True
        queues, self._queues = self._queues, []
        for queue in queues:
            queue.put_nowait(self._DONE)


class TraceService:
    """The daemon's transport-free core: warm engine, coalescing, cache."""

    def __init__(self, engine: Engine,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 trace_tick: float = TRACE_TICK,
                 telemetry: Optional[ServiceTelemetry] = None) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.engine = engine
        self.cache_size = cache_size
        self.trace_tick = trace_tick
        #: Optional observability bundle (``None`` keeps every request
        #: path on the uninstrumented code, matching repro.obs's
        #: zero-overhead contract).
        self.telemetry = telemetry
        #: Readiness: the engine is warm by construction (topology and
        #: network are built before the service exists); cleared only if
        #: a future transport wants to gate on warm-up work.
        self.ready = True
        #: The service's virtual clock — trace start times are drawn from
        #: it, which is what ties results to route epochs.
        self.now = 0.0
        self._cache: "OrderedDict[Tuple[int, int], CacheEntry]" = \
            OrderedDict()
        self._flights: Dict[Tuple[int, int], Flight] = {}
        # Counters (all monotonic; surfaced by the stats control op).
        self.requests = 0
        self.traces_started = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.errors = 0
        self.evicted_epoch = 0
        self.evicted_lru = 0
        self.probes_sent = 0

    # -- time and epochs -------------------------------------------------

    @property
    def epoch(self) -> int:
        return int(self.now / self.engine.flap_epoch_seconds)

    def advance(self, seconds: float) -> None:
        """Advance the service clock (the ``advance`` control op; crossing
        an epoch boundary invalidates every cached trace lazily)."""
        # NaN slips past a plain `< 0` check and infinity past a range
        # check; either would poison self.now for the daemon's lifetime
        # (epoch computation and cache invalidation never recover).
        if not math.isfinite(seconds):
            raise ServiceError("advance needs a finite number of seconds")
        if seconds < 0:
            raise ServiceError("cannot advance time backwards")
        self.now += seconds

    # -- cache -----------------------------------------------------------

    def cache_lookup(self, key: Tuple[int, int]) -> Optional[CacheEntry]:
        entry = self._cache.get(key)
        if entry is None:
            return None
        if entry.epoch != self.epoch:
            # The routes this trace saw have flapped since; the entry is
            # stale for good, not just for this request.
            del self._cache[key]
            self.evicted_epoch += 1
            return None
        self._cache.move_to_end(key)
        return entry

    def cache_store(self, key: Tuple[int, int], entry: CacheEntry) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.evicted_lru += 1

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    @property
    def inflight(self) -> int:
        return len(self._flights)

    # -- flights ---------------------------------------------------------

    def _start_flight(self, request: TraceRequest) -> Flight:
        epoch = self.epoch
        session = self.engine.open_session(request, start_time=self.now)
        self.now += self.trace_tick
        self.traces_started += 1
        flight = Flight(request.key, epoch)
        self._flights[request.key] = flight
        flight.task = asyncio.ensure_future(self._run_flight(flight,
                                                             session))
        return flight

    async def _run_flight(self, flight: Flight, session) -> None:
        try:
            for record in session.stream():
                flight.publish(record)
                # One hop per event-loop step: concurrent flights
                # interleave their probes on the shared warm network
                # (safe — each runs in its own network session view).
                await asyncio.sleep(0)
            result = session.result()
            self.probes_sent += session.network.probes_sent
            if self.telemetry is not None:
                self.telemetry.record_flight_probes(
                    session.network.probes_sent)
            self.cache_store(flight.key,
                             CacheEntry(epoch=flight.epoch,
                                        hops=list(flight.hops),
                                        result=result))
            flight.finish(result)
        except asyncio.CancelledError:
            flight.finish(None, error="trace cancelled (shutdown)")
            raise
        except Exception as exc:  # surface, never kill the daemon
            flight.finish(None, error=f"trace failed: {exc}")
        finally:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]

    # -- request handling ------------------------------------------------

    @staticmethod
    def _virtual_ms(result: Optional[dict]) -> float:
        """A trace's virtual-time duration in milliseconds (the
        deterministic latency the histograms record)."""
        if not result:
            return 0.0
        return max(0.0, (result["last"] - result["first"]) * 1000.0)

    async def handle_trace(self, payload: dict) -> AsyncIterator[dict]:
        """Serve one trace request as a stream of protocol records.

        Yields ``hop`` records followed by exactly one terminal record
        (``done`` or ``error``).  Raises nothing: malformed requests
        become ``error`` records.
        """
        obs = self.telemetry
        ctx = obs.begin_request(self.now) if obs is not None else None
        self.requests += 1
        try:
            try:
                request = TraceRequest.parse(payload)
                key = request.key
                if ctx is not None:
                    ctx.describe(request)
                    ctx.phase("cache-lookup", self.now)
                cached = self.cache_lookup(key)
                if cached is not None:
                    self.cache_hits += 1
                    if ctx is not None:
                        ctx.phase("cache-replay", self.now)
                    for record in cached.hops:
                        yield {"type": "hop", **record}
                    if ctx is not None:
                        ctx.phase("respond", self.now)
                    yield {"type": "done", "cache": "hit",
                           "epoch": cached.epoch, "trace": cached.result}
                    if ctx is not None:
                        obs.finish_request(
                            self, ctx, "hit", self.now,
                            virtual_ms=self._virtual_ms(cached.result),
                            hops=len(cached.hops))
                    return
                flight = self._flights.get(key)
                if flight is not None:
                    self.coalesced += 1
                    mode = "coalesced"
                    if ctx is not None:
                        ctx.phase("coalesce-join", self.now)
                else:
                    # TraceSession construction validates the destination
                    # against the engine's address space (ValueError).
                    flight = self._start_flight(request)
                    mode = "miss"
                    if ctx is not None:
                        ctx.phase("probe-stream", self.now)
            except (ServiceError, ValueError) as exc:
                self.errors += 1
                if ctx is not None:
                    ctx.phase("respond", self.now)
                yield {"type": "error", "error": str(exc)}
                if ctx is not None:
                    obs.finish_request(self, ctx, "error", self.now,
                                       error=str(exc))
                return
            replay, queue = flight.subscribe()
            try:
                for record in replay:
                    yield {"type": "hop", **record}
                if queue is not None:
                    while True:
                        item = await queue.get()
                        if item is Flight._DONE:
                            break
                        yield {"type": "hop", **item}
            finally:
                # A disconnected client must not leave its queue behind
                # on a still-running flight.
                if queue is not None:
                    flight.unsubscribe(queue)
            if ctx is not None:
                ctx.phase("respond", self.now)
            if flight.error is not None:
                self.errors += 1
                yield {"type": "error", "error": flight.error}
                if ctx is not None:
                    obs.finish_request(self, ctx, "error", self.now,
                                       hops=len(flight.hops),
                                       error=flight.error)
            else:
                yield {"type": "done", "cache": mode,
                       "epoch": flight.epoch, "trace": flight.result}
                if ctx is not None:
                    outcome = "fresh" if mode == "miss" else "coalesced"
                    probes = (flight.result or {}).get("probes", 0) \
                        if mode == "miss" else 0
                    obs.finish_request(
                        self, ctx, outcome, self.now,
                        virtual_ms=self._virtual_ms(flight.result),
                        probes=probes, hops=len(flight.hops))
        finally:
            # A client that vanished mid-stream (GeneratorExit lands
            # here) still completes its request record, so the outcome
            # counters stay coherent: requests == sum of all outcomes.
            if ctx is not None and not ctx.finished:
                ctx.phase("respond", self.now)
                obs.finish_request(self, ctx, "cancelled", self.now)

    def handle_control(self, payload: dict) -> dict:
        op = payload.get("control")
        if op == "ping":
            return {"type": "pong"}
        if op == "stats":
            return {"type": "stats", **self.stats()}
        if op == "metrics":
            return self.metrics()
        if op == "health":
            return {"type": "health", **self.health()}
        if op == "advance":
            seconds = payload.get("seconds")
            if not isinstance(seconds, (int, float)) \
                    or isinstance(seconds, bool):
                raise ServiceError("advance needs numeric 'seconds'")
            self.advance(float(seconds))
            return {"type": "ok", "now": self.now, "epoch": self.epoch}
        raise ServiceError(f"unknown control op {op!r}")

    def metrics(self) -> dict:
        """The ``metrics`` control op: deterministic registry snapshot,
        Prometheus-style text exposition, and the quarantined wall-clock
        report (rates, exact percentiles, slow log)."""
        if self.telemetry is None:
            raise ServiceError(
                "telemetry is disabled; start the daemon with "
                "--telemetry (or --trace/--metrics-out)")
        from ..obs.metrics import render_exposition

        self.telemetry.sample(self)
        snapshot = self.telemetry.metrics_snapshot(self)
        return {"type": "metrics", "snapshot": snapshot,
                "exposition": render_exposition(snapshot),
                "wall": self.telemetry.wall_report()}

    def health(self) -> dict:
        """The ``health`` control op: readiness (engine warm), liveness
        (event-loop lag bounded), and the load picture an operator pages
        on (inflight flights, slow-request count)."""
        obs = self.telemetry
        lag = obs.loop_lag_ms if obs is not None else None
        live = lag is None or lag <= LIVENESS_LAG_MS
        return {
            "ready": self.ready,
            "live": live,
            "status": "ok" if (self.ready and live) else "degraded",
            "inflight": self.inflight,
            "requests": self.requests,
            "errors": self.errors,
            "slow_requests": obs.slow_total if obs is not None else 0,
            "loop_lag_ms": lag,
            "telemetry": obs is not None,
            "now": self.now,
            "epoch": self.epoch,
            "engine": self.engine.warmth(),
        }

    def stats(self) -> dict:
        """The counters snapshot (also the CI metrics artifact)."""
        return {
            "requests": self.requests,
            "traces_started": self.traces_started,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "probes_sent": self.probes_sent,
            "cache_entries": self.cache_len,
            "cache_evicted_epoch": self.evicted_epoch,
            "cache_evicted_lru": self.evicted_lru,
            "inflight": self.inflight,
            "now": self.now,
            "epoch": self.epoch,
            "address_space": self.engine.address_space(),
        }

    async def drain(self) -> None:
        """Wait for every in-flight trace to finish (tests, shutdown)."""
        tasks = [flight.task for flight in self._flights.values()
                 if flight.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


# --------------------------------------------------------------------- #
# NDJSON transport
# --------------------------------------------------------------------- #

#: Generous per-line cap: a trace request is tens of bytes; anything
#: beyond this is a confused or hostile client.
MAX_LINE = 64 * 1024


async def _write_record(writer: asyncio.StreamWriter, record: dict) -> None:
    writer.write(json.dumps(record, sort_keys=True,
                            separators=(",", ":")).encode() + b"\n")
    await writer.drain()


async def _handle_connection(service: TraceService,
                             shutdown: asyncio.Event,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await _write_record(writer, {
                    "type": "error", "error": "request line too long"})
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                service.errors += 1
                await _write_record(writer, {
                    "type": "error", "error": f"invalid JSON: {exc}"})
                continue
            if not isinstance(payload, dict):
                service.errors += 1
                await _write_record(writer, {
                    "type": "error",
                    "error": "request must be a JSON object"})
                continue
            #: Clients may tag a request with an ``id``; it is echoed on
            #: every record of the response, so one connection's
            #: sequential responses can be matched up client-side.
            request_id = payload.pop("id", None)

            def stamped(record: dict) -> dict:
                if request_id is not None:
                    return {"id": request_id, **record}
                return record

            if "control" in payload:
                if payload.get("control") == "shutdown":
                    await _write_record(writer, stamped({"type": "ok",
                                                         "shutdown": True}))
                    shutdown.set()
                    break
                try:
                    response = service.handle_control(payload)
                except ServiceError as exc:
                    service.errors += 1
                    response = {"type": "error", "error": str(exc)}
                await _write_record(writer, stamped(response))
                continue
            async for record in service.handle_trace(payload):
                await _write_record(writer, stamped(record))
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-stream; flights keep running
    finally:
        writer.close()
        # CancelledError included: the loop may tear this handler down
        # while the transport drains; the close is already issued.
        with contextlib.suppress(Exception, asyncio.CancelledError):
            await writer.wait_closed()


async def _telemetry_monitor(service: TraceService) -> None:
    """Background sampler: rate-ring counter samples plus event-loop lag
    (expected vs actual sleep wake-up) for the ``health`` op."""
    obs = service.telemetry
    loop = asyncio.get_event_loop()
    interval = obs.sample_interval
    while True:
        before = loop.time()
        await asyncio.sleep(interval)
        lag_ms = max(0.0, (loop.time() - before - interval) * 1000.0)
        obs.note_loop_lag(round(lag_ms, 3))
        obs.sample(service)


@dataclass
class ServerHandle:
    """What :func:`start_service` hands back: enough to talk and stop."""

    service: TraceService
    server: asyncio.AbstractServer
    shutdown: asyncio.Event
    host: Optional[str] = None
    port: Optional[int] = None
    socket_path: Optional[str] = None
    #: Addresses the OS actually bound (resolves ``port=0``).
    bound: Tuple = field(default_factory=tuple)
    #: The telemetry sampler task (only when telemetry is enabled).
    monitor: Optional[asyncio.Task] = None

    async def close(self) -> None:
        self.server.close()
        await self.server.wait_closed()
        await self.service.drain()
        if self.monitor is not None:
            self.monitor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self.monitor


async def start_service(engine: Engine,
                        host: str = "127.0.0.1", port: int = 0,
                        socket_path: Optional[str] = None,
                        cache_size: int = DEFAULT_CACHE_SIZE,
                        trace_tick: float = TRACE_TICK,
                        telemetry: Optional[ServiceTelemetry] = None
                        ) -> ServerHandle:
    """Bind the daemon and return a handle (used by serve() and tests)."""
    service = TraceService(engine, cache_size=cache_size,
                           trace_tick=trace_tick, telemetry=telemetry)
    shutdown = asyncio.Event()
    monitor = (asyncio.ensure_future(_telemetry_monitor(service))
               if telemetry is not None else None)

    def factory(reader, writer):
        return _handle_connection(service, shutdown, reader, writer)

    if socket_path is not None:
        server = await asyncio.start_unix_server(factory, path=socket_path,
                                                 limit=MAX_LINE)
        return ServerHandle(service=service, server=server,
                            shutdown=shutdown, socket_path=socket_path,
                            monitor=monitor)
    server = await asyncio.start_server(factory, host=host, port=port,
                                        limit=MAX_LINE)
    bound = tuple(sock.getsockname() for sock in server.sockets)
    actual_port = bound[0][1] if bound else port
    return ServerHandle(service=service, server=server, shutdown=shutdown,
                        host=host, port=actual_port, bound=bound,
                        monitor=monitor)


async def _serve_async(request: ScanRequest, host: str, port: int,
                       socket_path: Optional[str],
                       cache_size: int, trace_tick: float,
                       telemetry: Optional[ServiceTelemetry],
                       metrics_out: Optional[str],
                       announce=print) -> TraceService:
    engine = Engine.from_request(request)
    handle = await start_service(engine, host=host, port=port,
                                 socket_path=socket_path,
                                 cache_size=cache_size,
                                 trace_tick=trace_tick,
                                 telemetry=telemetry)
    if socket_path is not None:
        announce(f"flashroute-sim serve: listening on {socket_path} "
                 f"(unix), space {engine.address_space()}")
    else:
        announce(f"flashroute-sim serve: listening on "
                 f"{handle.host}:{handle.port}, space "
                 f"{engine.address_space()}")
    try:
        await handle.shutdown.wait()
    finally:
        await handle.close()
        if telemetry is not None:
            if metrics_out is not None:
                telemetry.save(metrics_out, handle.service)
            telemetry.close()
    return handle.service


def serve(request: Optional[ScanRequest] = None, *,
          host: str = "127.0.0.1", port: int = 4792,
          socket_path: Optional[str] = None,
          cache_size: int = DEFAULT_CACHE_SIZE,
          trace_tick: float = TRACE_TICK,
          telemetry: Optional[ServiceTelemetry] = None,
          metrics_out: Optional[str] = None,
          announce=print) -> TraceService:
    """Run the daemon until a ``shutdown`` control op (or ^C).

    ``request`` describes the warm engine (topology size/seed and route
    cache mode); trace-irrelevant scan fields are ignored.  Returns the
    final :class:`TraceService` so callers can read the counters after
    shutdown.  ``telemetry`` enables the service observability bundle
    (request tracing, latency histograms, the ``metrics``/``health``
    ops); ``metrics_out`` persists its final snapshot on shutdown.
    """
    if request is None:
        request = ScanRequest()
    return asyncio.run(_serve_async(request, host, port, socket_path,
                                    cache_size, trace_tick, telemetry,
                                    metrics_out, announce))
