"""The scan daemon: a warm engine answering streamed trace requests.

Layering:

* :class:`TraceService` — the transport-free core.  Owns the warm
  :class:`repro.api.Engine`, the in-flight registry (request
  coalescing), the LRU result cache with epoch-based invalidation and
  the service counters.  Tests drive it directly, without sockets.
* :func:`serve` / the connection handler — NDJSON over an asyncio TCP
  or Unix-domain socket.  One JSON object per line in, one per line
  out; each connection handles its requests sequentially, concurrency
  comes from concurrent connections.

Wire protocol (see docs/service.md for the full reference)::

    → {"destination": "20.0.0.7", "flow": 3}
    ← {"type": "hop", "ip": "60.0.0.0", "ttl": 1, ...}      (per hop)
    ← {"type": "done", "cache": "miss", "epoch": 0, "trace": {...}}

    → {"control": "stats"}
    ← {"type": "stats", "requests": 12, "cache_hits": 7, ...}

Coalescing: requests for the same ``(destination, flow)`` while a trace
is in flight share its probe stream — a late subscriber first replays
the hops already streamed, then rides along live.  Caching: a finished
trace is stored under its key, tagged with the **route epoch** it ran
in; a lookup in a later epoch discards the entry (the simulated
network's routes flap every ``flap_epoch_seconds``, so the cached path
may no longer exist).  Cache hits re-stream the stored hops without
touching the network — the engine's probe counters stay flat.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import AsyncIterator, Deque, Dict, List, Optional, Set, Tuple

from ..api import Engine, ScanRequest, TraceRequest
from .obs import ServiceTelemetry

#: Traces a warm engine can answer per second is bounded by the event
#: loop, not the virtual network; each *fresh* trace nudges the service's
#: virtual clock forward by this many virtual seconds, so route epochs
#: roll over after ``flap_epoch_seconds / TRACE_TICK`` traces and the
#: cache's epoch invalidation exercises itself in long-running daemons.
TRACE_TICK = 1.0

#: Default LRU capacity of the result cache (entries, not bytes).
DEFAULT_CACHE_SIZE = 4096

#: Event-loop lag (ms) beyond which the ``health`` op reports the
#: daemon as not live — the loop is too far behind to serve promptly.
LIVENESS_LAG_MS = 1000.0

#: Default graceful-drain window (wall seconds): in-flight streams get
#: this long to finish after SIGTERM / ``shutdown`` before they are
#: cancelled and their subscribers receive an error record.
DEFAULT_DRAIN_SECONDS = 5.0

#: Unit of the ``retry_after_ms`` hint attached to ``overloaded`` sheds:
#: the hint scales linearly with the work already admitted + queued, so
#: backing clients off harder the deeper the backlog.
RETRY_AFTER_UNIT_MS = 100.0


class ServiceError(ValueError):
    """A client-visible request failure (maps to an ``error`` record)."""


class _DeadlineExceeded(Exception):
    """Internal control flow: a request ran out of its deadline budget
    mid-stream (converted to a ``deadline_exceeded`` error record)."""


@dataclass
class CacheEntry:
    """One finished trace, stored under its ``(destination, flow)`` key."""

    epoch: int
    hops: List[dict]
    result: dict


class Flight:
    """One in-flight trace and its subscribers.

    The probe stream runs in a detached task; every subscriber —
    the originating client plus any coalesced late joiners — gets the
    already-streamed prefix on subscribe, then live records via its own
    queue.  A subscriber that disconnects unsubscribes its queue; the
    flight itself always runs to completion so the result is cached for
    the next request either way.
    """

    _DONE = object()  # queue sentinel

    def __init__(self, key: Tuple[int, int], epoch: int) -> None:
        self.key = key
        self.epoch = epoch
        self.hops: List[dict] = []
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.done = False
        self.task: Optional[asyncio.Task] = None
        self._queues: List[asyncio.Queue] = []

    @property
    def subscriber_count(self) -> int:
        return len(self._queues)

    def subscribe(self) -> Tuple[List[dict], Optional[asyncio.Queue]]:
        """Snapshot the replay prefix and register a live queue.

        Synchronous on purpose: the snapshot and the registration happen
        in one event-loop step, so no hop can fall between them.  A
        finished flight returns no queue — the snapshot is complete.
        """
        replay = list(self.hops)
        if self.done:
            return replay, None
        queue: asyncio.Queue = asyncio.Queue()
        self._queues.append(queue)
        return replay, queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._queues.remove(queue)
        except ValueError:
            pass  # already dropped by finish()

    def publish(self, record: dict) -> None:
        self.hops.append(record)
        for queue in self._queues:
            queue.put_nowait(record)

    def finish(self, result: Optional[dict], error: Optional[str] = None
               ) -> None:
        self.result = result
        self.error = error
        self.done = True
        queues, self._queues = self._queues, []
        for queue in queues:
            queue.put_nowait(self._DONE)


class TraceService:
    """The daemon's transport-free core: warm engine, coalescing, cache."""

    def __init__(self, engine: Engine,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 trace_tick: float = TRACE_TICK,
                 telemetry: Optional[ServiceTelemetry] = None,
                 default_deadline_ms: Optional[float] = None,
                 max_inflight: Optional[int] = None,
                 max_queued: int = 0) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if default_deadline_ms is not None and (
                not math.isfinite(default_deadline_ms)
                or default_deadline_ms <= 0):
            raise ValueError(
                "default_deadline_ms must be a positive finite number")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        self.engine = engine
        self.cache_size = cache_size
        self.trace_tick = trace_tick
        #: Server-side deadline applied to requests that carry none of
        #: their own; ``None`` (the default) imposes no deadline.
        self.default_deadline_ms = default_deadline_ms
        #: Admission control: at most ``max_inflight`` trace requests
        #: being served at once, at most ``max_queued`` more waiting for
        #: a slot; overflow is shed with a structured ``overloaded``
        #: error.  ``None`` (the default) admits everything.
        self.max_inflight = max_inflight
        self.max_queued = max_queued
        #: Graceful-drain latch: once set, new trace requests are shed
        #: with a ``draining`` error while control ops keep answering.
        self.draining = False
        #: Optional observability bundle (``None`` keeps every request
        #: path on the uninstrumented code, matching repro.obs's
        #: zero-overhead contract).
        self.telemetry = telemetry
        #: Readiness: the engine is warm by construction (topology and
        #: network are built before the service exists); cleared only if
        #: a future transport wants to gate on warm-up work.
        self.ready = True
        #: The service's virtual clock — trace start times are drawn from
        #: it, which is what ties results to route epochs.
        self.now = 0.0
        self._cache: "OrderedDict[Tuple[int, int], CacheEntry]" = \
            OrderedDict()
        self._flights: Dict[Tuple[int, int], Flight] = {}
        # Admission bookkeeping: an explicit counter plus a FIFO of
        # waiter futures (not an asyncio.Semaphore — the explicit deque
        # keeps cancelled/timed-out waiters from swallowing released
        # slots and gives the shed path an exact queue depth).
        self._admitted = 0
        self._admit_queue: Deque[asyncio.Future] = deque()
        # Counters (all monotonic; surfaced by the stats control op).
        self.requests = 0
        self.traces_started = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.errors = 0
        self.evicted_epoch = 0
        self.evicted_lru = 0
        self.probes_sent = 0
        self.deadlined = 0
        self.shed = 0
        self.internal_errors = 0

    # -- time and epochs -------------------------------------------------

    @property
    def epoch(self) -> int:
        return int(self.now / self.engine.flap_epoch_seconds)

    def advance(self, seconds: float) -> None:
        """Advance the service clock (the ``advance`` control op; crossing
        an epoch boundary invalidates every cached trace lazily)."""
        # NaN slips past a plain `< 0` check and infinity past a range
        # check; either would poison self.now for the daemon's lifetime
        # (epoch computation and cache invalidation never recover).
        if not math.isfinite(seconds):
            raise ServiceError("advance needs a finite number of seconds")
        if seconds < 0:
            raise ServiceError("cannot advance time backwards")
        self.now += seconds

    # -- cache -----------------------------------------------------------

    def cache_lookup(self, key: Tuple[int, int]) -> Optional[CacheEntry]:
        entry = self._cache.get(key)
        if entry is None:
            return None
        if entry.epoch != self.epoch:
            # The routes this trace saw have flapped since; the entry is
            # stale for good, not just for this request.
            del self._cache[key]
            self.evicted_epoch += 1
            return None
        self._cache.move_to_end(key)
        return entry

    def cache_store(self, key: Tuple[int, int], entry: CacheEntry) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.evicted_lru += 1

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    @property
    def inflight(self) -> int:
        return len(self._flights)

    # -- deadlines and admission control ---------------------------------

    def _take_deadline(self, payload: dict) -> Optional[float]:
        """Pop the client-supplied ``deadline_ms`` (like ``id``, a
        transport-level field the :class:`TraceRequest` schema never
        sees); fall back to the server default.  Raises
        :class:`ServiceError` on a non-positive or non-finite value."""
        value = payload.pop("deadline_ms", None) \
            if isinstance(payload, dict) else None
        if value is None:
            return self.default_deadline_ms
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or not math.isfinite(value) or value <= 0:
            raise ServiceError(
                "deadline_ms must be a positive finite number of "
                "milliseconds")
        return float(value)

    def _deadline_record(self, deadline_ms: Optional[float]) -> dict:
        return {"type": "error", "code": "deadline_exceeded",
                "error": f"deadline of {deadline_ms:g} ms exceeded",
                "deadline_ms": deadline_ms}

    def _retry_after_ms(self) -> float:
        """The backoff hint shed responses carry: linear in the backlog
        (admitted + queued), so deeper overload pushes clients further
        out.  Deterministic in the admission state."""
        backlog = self._admitted + len(self._admit_queue)
        return round(RETRY_AFTER_UNIT_MS * max(1, backlog), 1)

    async def _acquire_slot(self, loop,
                            deadline_at: Optional[float]
                            ) -> Optional[str]:
        """Admission gate (only called when ``max_inflight`` is set).

        Returns ``None`` once a slot is held, ``"shed"`` when the wait
        queue is full, ``"deadline"`` when the request's deadline
        expired while queued.  FIFO: a freed slot goes to the oldest
        still-live waiter (see :meth:`_release_slot`).
        """
        if self._admitted < self.max_inflight and not self._admit_queue:
            self._admitted += 1
            return None
        if len(self._admit_queue) >= self.max_queued:
            return "shed"
        future: asyncio.Future = loop.create_future()
        self._admit_queue.append(future)
        try:
            if deadline_at is None:
                await future
            else:
                remaining = deadline_at - loop.time()
                if remaining <= 0:
                    raise asyncio.TimeoutError
                await asyncio.wait_for(future, remaining)
            # Granted: _release_slot already moved the slot count to us
            # and popped the future from the queue.
            return None
        except asyncio.TimeoutError:
            granted = future.done() and not future.cancelled()
            with contextlib.suppress(ValueError):
                self._admit_queue.remove(future)
            if granted:  # pragma: no cover - same-tick grant/timeout race
                self._release_slot()
            return "deadline"
        except BaseException:
            # Client vanished (or the handler was cancelled) while
            # queued: surrender the queue position — and the slot, if
            # one was granted in the same tick.
            if future.done() and not future.cancelled():
                self._release_slot()
            else:
                with contextlib.suppress(ValueError):
                    self._admit_queue.remove(future)
            raise

    def _release_slot(self) -> None:
        """Free one admission slot and hand it to the oldest live
        waiter (skipping waiters that timed out or were cancelled)."""
        self._admitted -= 1
        while self._admit_queue:
            future = self._admit_queue.popleft()
            if not future.done():
                self._admitted += 1
                future.set_result(None)
                return

    # -- flights ---------------------------------------------------------

    def _start_flight(self, request: TraceRequest) -> Flight:
        epoch = self.epoch
        session = self.engine.open_session(request, start_time=self.now)
        self.now += self.trace_tick
        self.traces_started += 1
        flight = Flight(request.key, epoch)
        self._flights[request.key] = flight
        flight.task = asyncio.ensure_future(self._run_flight(flight,
                                                             session))
        return flight

    async def _run_flight(self, flight: Flight, session) -> None:
        try:
            for record in session.stream():
                flight.publish(record)
                # One hop per event-loop step: concurrent flights
                # interleave their probes on the shared warm network
                # (safe — each runs in its own network session view).
                await asyncio.sleep(0)
            result = session.result()
            self.probes_sent += session.network.probes_sent
            if self.telemetry is not None:
                self.telemetry.record_flight_probes(
                    session.network.probes_sent)
            self.cache_store(flight.key,
                             CacheEntry(epoch=flight.epoch,
                                        hops=list(flight.hops),
                                        result=result))
            flight.finish(result)
        except asyncio.CancelledError:
            flight.finish(None, error="trace cancelled (shutdown)")
            raise
        except Exception as exc:  # surface, never kill the daemon
            flight.finish(None, error=f"trace failed: {exc}")
        finally:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]

    # -- request handling ------------------------------------------------

    @staticmethod
    def _virtual_ms(result: Optional[dict]) -> float:
        """A trace's virtual-time duration in milliseconds (the
        deterministic latency the histograms record)."""
        if not result:
            return 0.0
        return max(0.0, (result["last"] - result["first"]) * 1000.0)

    async def handle_trace(self, payload: dict) -> AsyncIterator[dict]:
        """Serve one trace request as a stream of protocol records.

        Yields ``hop`` records followed by exactly one terminal record
        (``done`` or ``error``).  Raises nothing: malformed requests,
        expired deadlines, admission refusals and even engine/session
        bugs all become structured ``error`` records — one failing
        request never kills the daemon.

        Gate order: deadline extraction → drain latch → admission →
        parse/serve.  A shed request is refused before any parsing or
        engine work is spent on it.
        """
        obs = self.telemetry
        ctx = obs.begin_request(self.now) if obs is not None else None
        self.requests += 1
        admitted = False
        try:
            try:
                deadline_ms = self._take_deadline(payload)
            except ServiceError as exc:
                self.errors += 1
                if ctx is not None:
                    ctx.phase("respond", self.now)
                yield {"type": "error", "error": str(exc)}
                if ctx is not None:
                    obs.finish_request(self, ctx, "error", self.now,
                                       error=str(exc))
                return
            loop = asyncio.get_running_loop()
            deadline_at = (loop.time() + deadline_ms / 1000.0
                           if deadline_ms is not None else None)
            if self.draining:
                self.shed += 1
                if obs is not None:
                    obs.record_shed("draining")
                if ctx is not None:
                    ctx.phase("respond", self.now)
                yield {"type": "error", "code": "draining",
                       "error": "daemon is draining (shutting down); "
                                "no new traces are accepted"}
                if ctx is not None:
                    obs.finish_request(self, ctx, "shed", self.now,
                                       error="draining")
                return
            if self.max_inflight is not None:
                verdict = await self._acquire_slot(loop, deadline_at)
                if verdict == "shed":
                    self.shed += 1
                    if obs is not None:
                        obs.record_shed("overloaded")
                    if ctx is not None:
                        ctx.phase("respond", self.now)
                    yield {"type": "error", "code": "overloaded",
                           "error": f"server overloaded "
                                    f"({self._admitted} in flight, "
                                    f"{len(self._admit_queue)} queued)",
                           "retry_after_ms": self._retry_after_ms()}
                    if ctx is not None:
                        obs.finish_request(self, ctx, "shed", self.now,
                                           error="overloaded")
                    return
                if verdict == "deadline":
                    self.deadlined += 1
                    if ctx is not None:
                        ctx.phase("respond", self.now)
                    yield self._deadline_record(deadline_ms)
                    if ctx is not None:
                        obs.finish_request(self, ctx, "deadline",
                                           self.now,
                                           error="deadline_exceeded")
                    return
                admitted = True
            try:
                request = TraceRequest.parse(payload)
                key = request.key
                if ctx is not None:
                    ctx.describe(request)
                    ctx.phase("cache-lookup", self.now)
                cached = self.cache_lookup(key)
                if cached is not None:
                    self.cache_hits += 1
                    if ctx is not None:
                        ctx.phase("cache-replay", self.now)
                    for record in cached.hops:
                        yield {"type": "hop", **record}
                    if ctx is not None:
                        ctx.phase("respond", self.now)
                    yield {"type": "done", "cache": "hit",
                           "epoch": cached.epoch, "trace": cached.result}
                    if ctx is not None:
                        obs.finish_request(
                            self, ctx, "hit", self.now,
                            virtual_ms=self._virtual_ms(cached.result),
                            hops=len(cached.hops))
                    return
                flight = self._flights.get(key)
                if flight is not None:
                    self.coalesced += 1
                    mode = "coalesced"
                    if ctx is not None:
                        ctx.phase("coalesce-join", self.now)
                else:
                    # TraceSession construction validates the destination
                    # against the engine's address space (ValueError).
                    flight = self._start_flight(request)
                    mode = "miss"
                    if ctx is not None:
                        ctx.phase("probe-stream", self.now)
            except (ServiceError, ValueError) as exc:
                self.errors += 1
                if ctx is not None:
                    ctx.phase("respond", self.now)
                yield {"type": "error", "error": str(exc)}
                if ctx is not None:
                    obs.finish_request(self, ctx, "error", self.now,
                                       error=str(exc))
                return
            except Exception as exc:
                # Session-exception isolation: a broken ScanSession /
                # TraceSession (or engine bug) answers this one request
                # with a structured record and leaves the daemon up.
                self.errors += 1
                self.internal_errors += 1
                message = (f"internal error: "
                           f"{exc.__class__.__name__}: {exc}")
                if ctx is not None:
                    ctx.phase("respond", self.now)
                yield {"type": "error", "code": "internal",
                       "error": message}
                if ctx is not None:
                    obs.finish_request(self, ctx, "error", self.now,
                                       error=message)
                return
            replay, queue = flight.subscribe()
            try:
                try:
                    for record in replay:
                        yield {"type": "hop", **record}
                    if queue is not None:
                        while True:
                            if deadline_at is None:
                                item = await queue.get()
                            else:
                                remaining = deadline_at - loop.time()
                                if remaining <= 0:
                                    raise _DeadlineExceeded
                                try:
                                    item = await asyncio.wait_for(
                                        queue.get(), remaining)
                                except asyncio.TimeoutError:
                                    raise _DeadlineExceeded from None
                            if item is Flight._DONE:
                                break
                            yield {"type": "hop", **item}
                finally:
                    # A disconnected (or deadlined) client must not
                    # leave its queue behind on a still-running flight;
                    # the flight itself runs on so the result is cached.
                    if queue is not None:
                        flight.unsubscribe(queue)
            except _DeadlineExceeded:
                self.deadlined += 1
                if ctx is not None:
                    ctx.phase("respond", self.now)
                yield self._deadline_record(deadline_ms)
                if ctx is not None:
                    obs.finish_request(self, ctx, "deadline", self.now,
                                       hops=len(flight.hops),
                                       error="deadline_exceeded")
                return
            if ctx is not None:
                ctx.phase("respond", self.now)
            if flight.error is not None:
                self.errors += 1
                yield {"type": "error", "error": flight.error}
                if ctx is not None:
                    obs.finish_request(self, ctx, "error", self.now,
                                       hops=len(flight.hops),
                                       error=flight.error)
            else:
                yield {"type": "done", "cache": mode,
                       "epoch": flight.epoch, "trace": flight.result}
                if ctx is not None:
                    outcome = "fresh" if mode == "miss" else "coalesced"
                    probes = (flight.result or {}).get("probes", 0) \
                        if mode == "miss" else 0
                    obs.finish_request(
                        self, ctx, outcome, self.now,
                        virtual_ms=self._virtual_ms(flight.result),
                        probes=probes, hops=len(flight.hops))
        finally:
            if admitted:
                self._release_slot()
            # A client that vanished mid-stream (GeneratorExit lands
            # here) still completes its request record, so the outcome
            # counters stay coherent: requests == sum of all outcomes.
            if ctx is not None and not ctx.finished:
                ctx.phase("respond", self.now)
                obs.finish_request(self, ctx, "cancelled", self.now)

    def handle_control(self, payload: dict) -> dict:
        op = payload.get("control")
        if op == "ping":
            return {"type": "pong"}
        if op == "stats":
            return {"type": "stats", **self.stats()}
        if op == "metrics":
            return self.metrics()
        if op == "health":
            return {"type": "health", **self.health()}
        if op == "advance":
            seconds = payload.get("seconds")
            if not isinstance(seconds, (int, float)) \
                    or isinstance(seconds, bool):
                raise ServiceError("advance needs numeric 'seconds'")
            self.advance(float(seconds))
            return {"type": "ok", "now": self.now, "epoch": self.epoch}
        raise ServiceError(f"unknown control op {op!r}")

    def metrics(self) -> dict:
        """The ``metrics`` control op: deterministic registry snapshot,
        Prometheus-style text exposition, and the quarantined wall-clock
        report (rates, exact percentiles, slow log)."""
        if self.telemetry is None:
            raise ServiceError(
                "telemetry is disabled; start the daemon with "
                "--telemetry (or --trace/--metrics-out)")
        from ..obs.metrics import render_exposition

        self.telemetry.sample(self)
        snapshot = self.telemetry.metrics_snapshot(self)
        return {"type": "metrics", "snapshot": snapshot,
                "exposition": render_exposition(snapshot),
                "wall": self.telemetry.wall_report()}

    def health(self) -> dict:
        """The ``health`` control op: readiness (engine warm), liveness
        (event-loop lag bounded), and the load picture an operator pages
        on (inflight flights, slow-request count)."""
        obs = self.telemetry
        lag = obs.loop_lag_ms if obs is not None else None
        live = lag is None or lag <= LIVENESS_LAG_MS
        return {
            "ready": self.ready,
            "live": live,
            "status": "ok" if (self.ready and live) else "degraded",
            "draining": self.draining,
            "inflight": self.inflight,
            "requests": self.requests,
            "errors": self.errors,
            "slow_requests": obs.slow_total if obs is not None else 0,
            "loop_lag_ms": lag,
            "telemetry": obs is not None,
            "now": self.now,
            "epoch": self.epoch,
            "engine": self.engine.warmth(),
        }

    def stats(self) -> dict:
        """The counters snapshot (also the CI metrics artifact)."""
        return {
            "requests": self.requests,
            "traces_started": self.traces_started,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "deadline_exceeded": self.deadlined,
            "shed": self.shed,
            "internal_errors": self.internal_errors,
            "draining": self.draining,
            "queued": len(self._admit_queue),
            "probes_sent": self.probes_sent,
            "cache_entries": self.cache_len,
            "cache_evicted_epoch": self.evicted_epoch,
            "cache_evicted_lru": self.evicted_lru,
            "inflight": self.inflight,
            "now": self.now,
            "epoch": self.epoch,
            "address_space": self.engine.address_space(),
        }

    async def drain(self) -> None:
        """Wait for every in-flight trace to finish (tests, shutdown)."""
        tasks = [flight.task for flight in self._flights.values()
                 if flight.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def cancel_flights(self) -> int:
        """Cancel every in-flight trace task (drain-timeout teardown).

        Each cancelled flight finishes with a ``trace cancelled
        (shutdown)`` error, which wakes all its subscribers; the
        streams close with a structured error record rather than a
        hang.  Returns the number of flights cancelled.
        """
        cancelled = 0
        for flight in list(self._flights.values()):
            if flight.task is not None and not flight.task.done():
                flight.task.cancel()
                cancelled += 1
        return cancelled


# --------------------------------------------------------------------- #
# NDJSON transport
# --------------------------------------------------------------------- #

#: Generous per-line cap: a trace request is tens of bytes; anything
#: beyond this is a confused or hostile client.
MAX_LINE = 64 * 1024


async def _write_record(writer: asyncio.StreamWriter, record: dict) -> None:
    writer.write(json.dumps(record, sort_keys=True,
                            separators=(",", ":")).encode() + b"\n")
    await writer.drain()


async def _handle_connection(service: TraceService,
                             shutdown: asyncio.Event,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             connections: Optional[Set[asyncio.Task]] = None
                             ) -> None:
    # Track this handler task so drain() can cancel connections that sit
    # idle in readline() (wait_closed() does not wait for handlers, and
    # an idle client would otherwise hold the drain open forever).
    task = asyncio.current_task()
    if connections is not None and task is not None:
        connections.add(task)
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await _write_record(writer, {
                    "type": "error", "error": "request line too long"})
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                service.errors += 1
                await _write_record(writer, {
                    "type": "error", "error": f"invalid JSON: {exc}"})
                continue
            if not isinstance(payload, dict):
                service.errors += 1
                await _write_record(writer, {
                    "type": "error",
                    "error": "request must be a JSON object"})
                continue
            #: Clients may tag a request with an ``id``; it is echoed on
            #: every record of the response, so one connection's
            #: sequential responses can be matched up client-side.
            request_id = payload.pop("id", None)

            def stamped(record: dict) -> dict:
                if request_id is not None:
                    return {"id": request_id, **record}
                return record

            if "control" in payload:
                if payload.get("control") == "shutdown":
                    await _write_record(writer, stamped({"type": "ok",
                                                         "shutdown": True}))
                    shutdown.set()
                    break
                try:
                    response = service.handle_control(payload)
                except ServiceError as exc:
                    service.errors += 1
                    response = {"type": "error", "error": str(exc)}
                except Exception as exc:
                    # A control-op bug answers this request, not the
                    # whole connection (let alone the daemon).
                    service.errors += 1
                    service.internal_errors += 1
                    response = {"type": "error", "code": "internal",
                                "error": f"internal error: "
                                         f"{exc.__class__.__name__}: "
                                         f"{exc}"}
                await _write_record(writer, stamped(response))
                continue
            try:
                async for record in service.handle_trace(payload):
                    await _write_record(writer, stamped(record))
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                raise
            except Exception as exc:
                # Belt and braces: handle_trace already converts
                # session exceptions to error records, but a failure in
                # the stream machinery itself must not drop the
                # connection without a terminal record.
                service.errors += 1
                service.internal_errors += 1
                await _write_record(writer, stamped({
                    "type": "error", "code": "internal",
                    "error": f"internal error: "
                             f"{exc.__class__.__name__}: {exc}"}))
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-stream; flights keep running
    finally:
        if connections is not None and task is not None:
            connections.discard(task)
        writer.close()
        # CancelledError included: the loop may tear this handler down
        # while the transport drains; the close is already issued.
        with contextlib.suppress(Exception, asyncio.CancelledError):
            await writer.wait_closed()


async def _telemetry_monitor(service: TraceService) -> None:
    """Background sampler: rate-ring counter samples plus event-loop lag
    (expected vs actual sleep wake-up) for the ``health`` op."""
    obs = service.telemetry
    loop = asyncio.get_event_loop()
    interval = obs.sample_interval
    while True:
        before = loop.time()
        await asyncio.sleep(interval)
        lag_ms = max(0.0, (loop.time() - before - interval) * 1000.0)
        obs.note_loop_lag(round(lag_ms, 3))
        obs.sample(service)


@dataclass
class ServerHandle:
    """What :func:`start_service` hands back: enough to talk and stop."""

    service: TraceService
    server: asyncio.AbstractServer
    shutdown: asyncio.Event
    host: Optional[str] = None
    port: Optional[int] = None
    socket_path: Optional[str] = None
    #: Addresses the OS actually bound (resolves ``port=0``).
    bound: Tuple = field(default_factory=tuple)
    #: The telemetry sampler task (only when telemetry is enabled).
    monitor: Optional[asyncio.Task] = None
    #: Live connection-handler tasks (drain cancels stragglers).
    connections: Set[asyncio.Task] = field(default_factory=set)

    async def close(self) -> None:
        self.server.close()
        await self.server.wait_closed()
        await self.service.drain()
        if self.monitor is not None:
            self.monitor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self.monitor

    async def drain(self, drain_seconds: float = DEFAULT_DRAIN_SECONDS
                    ) -> None:
        """Graceful shutdown: stop accepting, finish what's in flight.

        New traces are refused with a structured ``draining`` error the
        moment this starts; already-admitted streams get
        ``drain_seconds`` to run to completion, after which any
        stragglers are cancelled (their subscribers receive a
        ``trace cancelled (shutdown)`` error record rather than a
        hang).  Idle connections are then torn down and the telemetry
        monitor stopped.
        """
        self.service.draining = True
        self.server.close()
        try:
            await asyncio.wait_for(self.service.drain(), drain_seconds)
        except asyncio.TimeoutError:
            self.service.cancel_flights()
            await self.service.drain()
        if self.connections:
            # Give handlers a moment to flush their terminal records,
            # then cancel whatever is still parked in readline().
            done, lingering = await asyncio.wait(
                set(self.connections), timeout=0.25)
            for task in lingering:
                task.cancel()
            if lingering:
                await asyncio.gather(*lingering, return_exceptions=True)
        with contextlib.suppress(Exception):
            await self.server.wait_closed()
        if self.monitor is not None:
            self.monitor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self.monitor


async def start_service(engine: Engine,
                        host: str = "127.0.0.1", port: int = 0,
                        socket_path: Optional[str] = None,
                        cache_size: int = DEFAULT_CACHE_SIZE,
                        trace_tick: float = TRACE_TICK,
                        telemetry: Optional[ServiceTelemetry] = None,
                        default_deadline_ms: Optional[float] = None,
                        max_inflight: Optional[int] = None,
                        max_queued: int = 0
                        ) -> ServerHandle:
    """Bind the daemon and return a handle (used by serve() and tests)."""
    service = TraceService(engine, cache_size=cache_size,
                           trace_tick=trace_tick, telemetry=telemetry,
                           default_deadline_ms=default_deadline_ms,
                           max_inflight=max_inflight,
                           max_queued=max_queued)
    shutdown = asyncio.Event()
    monitor = (asyncio.ensure_future(_telemetry_monitor(service))
               if telemetry is not None else None)
    connections: Set[asyncio.Task] = set()

    def factory(reader, writer):
        return _handle_connection(service, shutdown, reader, writer,
                                  connections)

    if socket_path is not None:
        server = await asyncio.start_unix_server(factory, path=socket_path,
                                                 limit=MAX_LINE)
        return ServerHandle(service=service, server=server,
                            shutdown=shutdown, socket_path=socket_path,
                            monitor=monitor, connections=connections)
    server = await asyncio.start_server(factory, host=host, port=port,
                                        limit=MAX_LINE)
    bound = tuple(sock.getsockname() for sock in server.sockets)
    actual_port = bound[0][1] if bound else port
    return ServerHandle(service=service, server=server, shutdown=shutdown,
                        host=host, port=actual_port, bound=bound,
                        monitor=monitor, connections=connections)


async def _serve_async(request: ScanRequest, host: str, port: int,
                       socket_path: Optional[str],
                       cache_size: int, trace_tick: float,
                       telemetry: Optional[ServiceTelemetry],
                       metrics_out: Optional[str],
                       announce=print,
                       default_deadline_ms: Optional[float] = None,
                       max_inflight: Optional[int] = None,
                       max_queued: int = 0,
                       drain_seconds: float = DEFAULT_DRAIN_SECONDS
                       ) -> TraceService:
    engine = Engine.from_request(request)
    handle = await start_service(engine, host=host, port=port,
                                 socket_path=socket_path,
                                 cache_size=cache_size,
                                 trace_tick=trace_tick,
                                 telemetry=telemetry,
                                 default_deadline_ms=default_deadline_ms,
                                 max_inflight=max_inflight,
                                 max_queued=max_queued)
    if socket_path is not None:
        announce(f"flashroute-sim serve: listening on {socket_path} "
                 f"(unix), space {engine.address_space()}")
    else:
        announce(f"flashroute-sim serve: listening on "
                 f"{handle.host}:{handle.port}, space "
                 f"{engine.address_space()}")
    loop = asyncio.get_running_loop()
    sigterm_installed = False
    try:
        # SIGTERM triggers the same graceful drain as the ``shutdown``
        # control op.  Unavailable on some platforms/loops — degrade to
        # default signal handling rather than refuse to serve.
        loop.add_signal_handler(signal.SIGTERM, handle.shutdown.set)
        sigterm_installed = True
    except (NotImplementedError, RuntimeError, ValueError):
        pass
    try:
        await handle.shutdown.wait()
    finally:
        if sigterm_installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signal.SIGTERM)
        await handle.drain(drain_seconds)
        if telemetry is not None:
            if metrics_out is not None:
                telemetry.save(metrics_out, handle.service)
            telemetry.close()
    return handle.service


def serve(request: Optional[ScanRequest] = None, *,
          host: str = "127.0.0.1", port: int = 4792,
          socket_path: Optional[str] = None,
          cache_size: int = DEFAULT_CACHE_SIZE,
          trace_tick: float = TRACE_TICK,
          telemetry: Optional[ServiceTelemetry] = None,
          metrics_out: Optional[str] = None,
          announce=print,
          default_deadline_ms: Optional[float] = None,
          max_inflight: Optional[int] = None,
          max_queued: int = 0,
          drain_seconds: float = DEFAULT_DRAIN_SECONDS) -> TraceService:
    """Run the daemon until a ``shutdown`` control op, SIGTERM, or ^C.

    ``request`` describes the warm engine (topology size/seed and route
    cache mode); trace-irrelevant scan fields are ignored.  Returns the
    final :class:`TraceService` so callers can read the counters after
    shutdown.  ``telemetry`` enables the service observability bundle
    (request tracing, latency histograms, the ``metrics``/``health``
    ops); ``metrics_out`` persists its final snapshot on shutdown.

    Hardening knobs: ``default_deadline_ms`` bounds every request that
    does not carry its own ``deadline_ms``; ``max_inflight`` /
    ``max_queued`` admit that many concurrent trace streams and shed
    the rest with structured ``overloaded`` errors; ``drain_seconds``
    bounds the graceful-shutdown window before in-flight traces are
    cancelled.
    """
    if request is None:
        request = ScanRequest()
    return asyncio.run(_serve_async(request, host, port, socket_path,
                                    cache_size, trace_tick, telemetry,
                                    metrics_out, announce,
                                    default_deadline_ms=default_deadline_ms,
                                    max_inflight=max_inflight,
                                    max_queued=max_queued,
                                    drain_seconds=drain_seconds))
