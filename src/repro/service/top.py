"""``flashroute-sim top``: a live terminal dashboard for the daemon.

Polls a running daemon's ``stats``/``health``/``metrics`` control ops
over one persistent connection and redraws a plain-text dashboard in
place (ANSI home+clear on TTYs; sequential frames otherwise — no curses
dependency).  Works against any daemon: rates fall back to client-side
deltas between polls when server-side telemetry is disabled, and the
latency/slow-request panels simply note that telemetry is off.
"""

from __future__ import annotations

import asyncio
import sys
import time
from typing import Dict, List, Optional, TextIO, Tuple

from .client import DaemonClient

#: Outcome rows the latency panel shows, in display order.
_PANEL_OUTCOMES = ("fresh", "hit", "coalesced", "error", "cancelled",
                   "deadline", "shed")

#: ANSI: cursor home + clear screen (the in-place redraw).
_CLEAR = "\x1b[H\x1b[2J"


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 100:.1f}%"


def _num(value, digits: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:,.{digits}f}" if isinstance(value, float) \
        else f"{value:,}"


def _client_rates(prev: Optional[Tuple[float, dict]],
                  now_wall: float, stats: dict) -> Dict[str, object]:
    """Fallback rates from two successive stats polls (telemetry-off
    daemons have no server-side rate ring)."""
    if prev is None:
        return {}
    prev_wall, prev_stats = prev
    dt = now_wall - prev_wall
    if dt <= 0:
        return {}
    d_req = stats["requests"] - prev_stats["requests"]
    d_hit = stats["cache_hits"] - prev_stats["cache_hits"]
    d_probes = stats["probes_sent"] - prev_stats["probes_sent"]
    return {
        "window_seconds": round(dt, 3),
        "req_per_s": round(d_req / dt, 1),
        "probes_per_s": round(d_probes / dt, 1),
        "hit_rate": round(d_hit / d_req, 4) if d_req > 0 else None,
    }


def render_frame(target: str, frame: int, stats: dict, health: dict,
                 metrics: Optional[dict],
                 fallback_rates: Optional[Dict[str, object]] = None
                 ) -> str:
    """One dashboard frame as a plain multi-line string (pure function:
    the tests drive it with canned control-op payloads)."""
    lines: List[str] = []
    wall = (metrics or {}).get("wall", {})
    rates = wall.get("rates") or fallback_rates or {}
    counters = ((metrics or {}).get("snapshot") or {}).get("counters", {})

    uptime = wall.get("uptime_seconds")
    lines.append(f"flashroute-sim top — {target}   frame {frame}"
                 + (f"   up {_num(uptime)}s" if uptime is not None
                    else ""))
    lag = health.get("loop_lag_ms")
    lines.append(
        f"health  status={health.get('status', '?')}"
        f"  ready={'yes' if health.get('ready') else 'NO'}"
        f"  live={'yes' if health.get('live') else 'NO'}"
        f"  loop-lag={_num(lag)}ms"
        f"  inflight={stats.get('inflight', 0)}"
        f"  telemetry={'on' if health.get('telemetry') else 'off'}")
    lines.append(
        f"clock   vt={_num(float(stats.get('now', 0.0)))}"
        f"  epoch={stats.get('epoch', 0)}"
        f"  space={stats.get('address_space', '?')}")
    lines.append(
        f"rates   {_num(rates.get('req_per_s'))} req/s"
        f"   {_num(rates.get('probes_per_s'))} probes/s"
        f"   hit-rate {_pct(rates.get('hit_rate'))}"
        f"   (last {_num(rates.get('window_seconds'))}s)")
    fresh = counters.get("service.requests.fresh",
                         stats.get("traces_started", 0))
    lines.append(
        f"totals  requests={_num(stats.get('requests', 0))}"
        f"  hit={_num(stats.get('cache_hits', 0))}"
        f"  fresh={_num(fresh)}"
        f"  coalesced={_num(stats.get('coalesced', 0))}"
        f"  error={_num(stats.get('errors', 0))}")
    lines.append(
        f"cache   entries={_num(stats.get('cache_entries', 0))}"
        f"  evicted epoch={_num(stats.get('cache_evicted_epoch', 0))}"
        f" lru={_num(stats.get('cache_evicted_lru', 0))}"
        f"  traces-started={_num(stats.get('traces_started', 0))}"
        f"  probes-sent={_num(stats.get('probes_sent', 0))}")
    lines.append("")
    if metrics is None:
        lines.append("latency/slow panels need telemetry: restart with "
                     "serve --telemetry (or --trace/--metrics-out)")
        return "\n".join(lines) + "\n"
    latency = wall.get("latency_ms", {})
    lines.append(f"{'latency ms (wall)':<20}{'count':>8}{'p50':>10}"
                 f"{'p90':>10}{'p99':>10}{'max':>10}")
    shown = False
    for outcome in _PANEL_OUTCOMES:
        row = latency.get(outcome)
        if not row:
            continue
        shown = True
        lines.append(f"  {outcome:<18}{row['count']:>8,}"
                     f"{row['p50']:>10,.1f}{row['p90']:>10,.1f}"
                     f"{row['p99']:>10,.1f}{row['max']:>10,.1f}")
    if not shown:
        lines.append("  (no completed requests yet)")
    lines.append("")
    threshold = wall.get("slow_threshold_ms")
    lines.append(f"slow requests (>= {_num(threshold)} ms): "
                 f"{_num(wall.get('slow_total', 0))} total")
    for entry in list(wall.get("slow_requests", []))[-8:]:
        destination = entry.get("destination") or "?"
        lines.append(
            f"  #{entry['rid']:<6} {entry['outcome']:<10}"
            f" {destination}/{entry.get('flow', 0):<3}"
            f" {entry['wall_ms']:>9,.1f} ms"
            f"  cause={entry['cause']}"
            f"  probes={entry.get('probes', 0)}")
    return "\n".join(lines) + "\n"


async def _top_loop(host: Optional[str], port: Optional[int],
                    socket_path: Optional[str], interval: float,
                    iterations: int, stream: TextIO,
                    clear: bool) -> int:
    target = socket_path if socket_path is not None else f"{host}:{port}"
    async with DaemonClient(host=host, port=port,
                            socket_path=socket_path) as client:
        prev: Optional[Tuple[float, dict]] = None
        frame = 0
        while True:
            frame += 1
            stats = await client.control("stats")
            health = await client.control("health")
            metrics = await client.control("metrics")
            if metrics.get("type") != "metrics":
                metrics = None  # telemetry disabled server-side
            now_wall = time.monotonic()
            fallback = _client_rates(prev, now_wall, stats)
            prev = (now_wall, stats)
            text = render_frame(target, frame, stats, health, metrics,
                                fallback_rates=fallback)
            if clear:
                stream.write(_CLEAR)
            stream.write(text)
            stream.flush()
            if iterations and frame >= iterations:
                return 0
            await asyncio.sleep(interval)


def run_top(host: str = "127.0.0.1", port: int = 4792,
            socket_path: Optional[str] = None, interval: float = 1.0,
            iterations: int = 0, stream: Optional[TextIO] = None,
            clear: Optional[bool] = None) -> int:
    """Run the dashboard until ^C (or for ``iterations`` frames).

    ``clear=None`` redraws in place on TTYs and prints sequential
    frames otherwise (CI logs, pipes).  Returns a process exit code.
    """
    if stream is None:
        stream = sys.stdout
    if clear is None:
        clear = bool(getattr(stream, "isatty", lambda: False)())
    try:
        return asyncio.run(_top_loop(host, port, socket_path, interval,
                                     iterations, stream, clear))
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError) as exc:
        print(f"flashroute-sim top: cannot reach daemon at "
              f"{socket_path or f'{host}:{port}'}: {exc}",
              file=sys.stderr)
        return 1
