"""Load-test harness for the scan daemon.

Boots a real daemon on a loopback socket, fires a burst of concurrent
clients at it (each on its own connection), and reports wall-clock
latency percentiles plus the service's own counters — the numbers
``BENCH_service_latency.json`` and the CI ``service-smoke`` job pin.

The request mix cycles over a bounded set of ``(destination, flow)``
keys, smaller than the client count, so the burst exercises all three
serving paths: fresh traces, mid-flight coalescing, and cache hits.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from ..api import Engine, ScanRequest
from ..net.addr import int_to_ip
from .client import trace_stream
from .daemon import DEFAULT_CACHE_SIZE, start_service
from .obs import ServiceTelemetry, latency_summary, percentile

__all__ = ["build_payloads", "percentile", "run_loadtest"]

#: Outcome labels of the per-outcome latency breakdown.  The wire's
#: ``cache: miss`` terminal is a *fresh* trace — the breakdown reports
#: it under that name so a tail regression in fresh traces can't hide
#: behind the (much larger, much faster) cache-hit population.
_OUTCOME_LABELS = {"miss": "fresh", "hit": "hit",
                   "coalesced": "coalesced"}


def build_payloads(engine: Engine, clients: int, keys: int,
                   flows: int) -> List[Dict[str, object]]:
    """A deterministic request mix: ``clients`` requests cycling over
    ``keys`` distinct ``(destination, flow)`` identities spread across
    the engine's prefixes."""
    if keys < 1:
        raise ValueError("keys must be >= 1")
    base = engine.topology.base_prefix
    num = engine.topology.num_prefixes
    payloads = []
    for index in range(clients):
        key = index % keys
        prefix = base + (key * 7919) % num
        destination = (prefix << 8) + 1 + (key % 200)
        payloads.append({"destination": int_to_ip(destination),
                         "flow": key % max(1, flows),
                         "id": index})
    return payloads


async def _run(prefixes: int, seed: int, clients: int, keys: int,
               flows: int, cache_size: int, concurrency: Optional[int],
               telemetry: bool) -> Dict[str, object]:
    engine = Engine.from_request(ScanRequest(prefixes=prefixes, seed=seed))
    bundle = ServiceTelemetry() if telemetry else None
    handle = await start_service(engine, host="127.0.0.1", port=0,
                                 cache_size=cache_size,
                                 telemetry=bundle)
    payloads = build_payloads(engine, clients, keys, flows)
    # Warm half the key set sequentially (unmeasured) so the measured
    # burst exercises every serving path: warmed keys hit the cache,
    # cold keys trace fresh and coalesce their concurrent duplicates.
    warm = build_payloads(engine, (keys + 1) // 2, keys, flows)
    for payload in warm:
        await trace_stream(payload, host=handle.host, port=handle.port)
    gate = asyncio.Semaphore(concurrency) if concurrency else None
    latencies_ms: List[float] = []
    by_outcome: Dict[str, List[float]] = {label: []
                                          for label in ("fresh", "hit",
                                                        "coalesced")}
    outcomes = {"hit": 0, "miss": 0, "coalesced": 0, "error": 0}

    async def one_client(payload: Dict[str, object]) -> None:
        if gate is not None:
            await gate.acquire()
        try:
            start = time.perf_counter()
            hops, final = await trace_stream(payload, host=handle.host,
                                             port=handle.port)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            latencies_ms.append(elapsed_ms)
            if final.get("type") == "done":
                outcomes[final["cache"]] += 1
                by_outcome[_OUTCOME_LABELS[final["cache"]]].append(
                    elapsed_ms)
            else:
                outcomes["error"] += 1
        finally:
            if gate is not None:
                gate.release()

    wall_start = time.perf_counter()
    await asyncio.gather(*(one_client(payload) for payload in payloads))
    wall_seconds = time.perf_counter() - wall_start
    stats = handle.service.stats()
    await handle.close()

    latencies_ms.sort()
    total = max(1, len(latencies_ms))
    return {
        "clients": clients,
        "distinct_keys": keys,
        "concurrency": concurrency,
        "prefixes": prefixes,
        "seed": seed,
        "telemetry": telemetry,
        "wall_seconds": round(wall_seconds, 3),
        "requests_per_second": round(clients / wall_seconds, 1),
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 3),
            "p90": round(percentile(latencies_ms, 0.90), 3),
            "p99": round(percentile(latencies_ms, 0.99), 3),
            "max": round(latencies_ms[-1], 3),
        },
        # Per-outcome percentiles: a tail regression in one serving
        # class (say, fresh traces) must be visible even when another
        # class (cache hits) dominates the aggregate distribution.
        "latency_ms_by_outcome": {
            label: latency_summary(values)
            for label, values in sorted(by_outcome.items()) if values},
        "outcomes": outcomes,
        "cache_hit_rate": round(outcomes["hit"] / total, 4),
        "coalesce_rate": round(outcomes["coalesced"] / total, 4),
        "service": stats,
    }


def run_loadtest(prefixes: int = 256, seed: int = 20201027,
                 clients: int = 1000, keys: int = 64, flows: int = 4,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 concurrency: Optional[int] = None,
                 telemetry: bool = False) -> Dict[str, object]:
    """Run the burst and return the latency/counter report.

    ``concurrency=None`` opens every client connection at once (the
    full-burst mode the acceptance numbers use); an integer gates the
    burst through a semaphore for gentler environments.  ``telemetry``
    runs the daemon with the full observability bundle enabled — the
    overhead benchmark compares the two modes.
    """
    return asyncio.run(_run(prefixes, seed, clients, keys, flows,
                            cache_size, concurrency, telemetry))
