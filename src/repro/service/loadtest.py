"""Load-test harness for the scan daemon.

Boots a real daemon on a loopback socket, fires a burst of concurrent
clients at it (each on its own connection), and reports wall-clock
latency percentiles plus the service's own counters — the numbers
``BENCH_service_latency.json`` and the CI ``service-smoke`` job pin.

The request mix cycles over a bounded set of ``(destination, flow)``
keys, smaller than the client count, so the burst exercises all three
serving paths: fresh traces, mid-flight coalescing, and cache hits.

The resilience knobs (``max_inflight``/``max_queued``,
``default_deadline_ms``, ``chaos``) turn the same harness into the
overload/chaos drill behind ``BENCH_service_resilience.json``: shed
and deadlined requests are classified by the structured ``code`` on
their error records, and ``latency_ms_admitted`` isolates the latency
of the requests the daemon actually served.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from ..api import Engine, ScanRequest
from ..net.addr import int_to_ip
from .client import trace_stream
from .daemon import DEFAULT_CACHE_SIZE, start_service
from .obs import ServiceTelemetry, latency_summary, percentile

__all__ = ["build_payloads", "percentile", "run_loadtest"]

#: Outcome labels of the per-outcome latency breakdown.  The wire's
#: ``cache: miss`` terminal is a *fresh* trace — the breakdown reports
#: it under that name so a tail regression in fresh traces can't hide
#: behind the (much larger, much faster) cache-hit population.
_OUTCOME_LABELS = {"miss": "fresh", "hit": "hit",
                   "coalesced": "coalesced"}

#: Structured error codes → report outcomes.  Anything without a
#: recognized code stays a plain ``error``.
_ERROR_CODE_LABELS = {"overloaded": "shed", "draining": "shed",
                      "deadline_exceeded": "deadline"}


def build_payloads(engine: Engine, clients: int, keys: int,
                   flows: int) -> List[Dict[str, object]]:
    """A deterministic request mix: ``clients`` requests cycling over
    ``keys`` distinct ``(destination, flow)`` identities spread across
    the engine's prefixes."""
    if keys < 1:
        raise ValueError("keys must be >= 1")
    base = engine.topology.base_prefix
    num = engine.topology.num_prefixes
    payloads = []
    for index in range(clients):
        key = index % keys
        prefix = base + (key * 7919) % num
        destination = (prefix << 8) + 1 + (key % 200)
        payloads.append({"destination": int_to_ip(destination),
                         "flow": key % max(1, flows),
                         "id": index})
    return payloads


async def _run(prefixes: int, seed: int, clients: int, keys: int,
               flows: int, cache_size: int, concurrency: Optional[int],
               telemetry: bool,
               max_inflight: Optional[int] = None,
               max_queued: int = 0,
               default_deadline_ms: Optional[float] = None,
               deadline_ms: Optional[float] = None,
               chaos=None) -> Dict[str, object]:
    engine = Engine.from_request(ScanRequest(prefixes=prefixes, seed=seed))
    bundle = ServiceTelemetry() if telemetry else None
    handle = await start_service(engine, host="127.0.0.1", port=0,
                                 cache_size=cache_size,
                                 telemetry=bundle,
                                 max_inflight=max_inflight,
                                 max_queued=max_queued,
                                 default_deadline_ms=default_deadline_ms)
    payloads = build_payloads(engine, clients, keys, flows)
    if deadline_ms is not None:
        for payload in payloads:
            payload["deadline_ms"] = deadline_ms
    # Warm half the key set sequentially (unmeasured) so the measured
    # burst exercises every serving path: warmed keys hit the cache,
    # cold keys trace fresh and coalesce their concurrent duplicates.
    warm = build_payloads(engine, (keys + 1) // 2, keys, flows)
    for payload in warm:
        await trace_stream(payload, host=handle.host, port=handle.port)
    gate = asyncio.Semaphore(concurrency) if concurrency else None
    latencies_ms: List[float] = []
    admitted_ms: List[float] = []
    by_outcome: Dict[str, List[float]] = {label: []
                                          for label in ("fresh", "hit",
                                                        "coalesced",
                                                        "shed",
                                                        "deadline")}
    outcomes = {"hit": 0, "miss": 0, "coalesced": 0, "error": 0,
                "shed": 0, "deadline": 0}
    client_exceptions = 0

    async def one_client(payload: Dict[str, object]) -> None:
        nonlocal client_exceptions
        if gate is not None:
            await gate.acquire()
        try:
            start = time.perf_counter()
            try:
                hops, final = await trace_stream(payload,
                                                 host=handle.host,
                                                 port=handle.port)
            except Exception:
                # Connection-level failure: the resilience drill pins
                # this at zero — overload must shed with structured
                # records, never by dropping connections.
                client_exceptions += 1
                return
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            latencies_ms.append(elapsed_ms)
            if final.get("type") == "done":
                outcomes[final["cache"]] += 1
                by_outcome[_OUTCOME_LABELS[final["cache"]]].append(
                    elapsed_ms)
                admitted_ms.append(elapsed_ms)
            else:
                label = _ERROR_CODE_LABELS.get(final.get("code"))
                if label is not None:
                    outcomes[label] += 1
                    by_outcome[label].append(elapsed_ms)
                else:
                    outcomes["error"] += 1
        finally:
            if gate is not None:
                gate.release()

    chaos_report = None
    wall_start = time.perf_counter()
    if chaos is not None and chaos.daemon_clients:
        from ..testing.chaos import run_daemon_chaos
        burst = asyncio.gather(*(one_client(payload)
                                 for payload in payloads))
        hostile = run_daemon_chaos(chaos, payloads, host=handle.host,
                                   port=handle.port)
        _, chaos_report = await asyncio.gather(burst, hostile)
    else:
        await asyncio.gather(*(one_client(payload)
                               for payload in payloads))
    wall_seconds = time.perf_counter() - wall_start
    # The daemon surviving the drill is part of the result: a live
    # control plane after the burst means no unhandled exception killed
    # the accept loop or the event loop.
    daemon_survived = True
    try:
        _, pong = await trace_stream({"control": "ping"},
                                     host=handle.host, port=handle.port,
                                     timeout=5.0)
        daemon_survived = pong.get("type") == "pong"
    except Exception:
        daemon_survived = False
    stats = handle.service.stats()
    await handle.close()

    latencies_ms.sort()
    admitted_ms.sort()
    total = max(1, len(latencies_ms))
    report = {
        "clients": clients,
        "distinct_keys": keys,
        "concurrency": concurrency,
        "prefixes": prefixes,
        "seed": seed,
        "telemetry": telemetry,
        "wall_seconds": round(wall_seconds, 3),
        "requests_per_second": round(clients / wall_seconds, 1),
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 3),
            "p90": round(percentile(latencies_ms, 0.90), 3),
            "p99": round(percentile(latencies_ms, 0.99), 3),
            "max": round(latencies_ms[-1], 3) if latencies_ms else 0.0,
        },
        # Per-outcome percentiles: a tail regression in one serving
        # class (say, fresh traces) must be visible even when another
        # class (cache hits) dominates the aggregate distribution.
        "latency_ms_by_outcome": {
            label: latency_summary(values)
            for label, values in sorted(by_outcome.items()) if values},
        "outcomes": outcomes,
        "cache_hit_rate": round(outcomes["hit"] / total, 4),
        "coalesce_rate": round(outcomes["coalesced"] / total, 4),
        "service": stats,
    }
    if (max_inflight is not None or default_deadline_ms is not None
            or deadline_ms is not None or chaos is not None):
        # Resilience drill extras: admitted-only latency (the p99 the
        # acceptance bound compares against clean) plus survival.
        report["latency_ms_admitted"] = (latency_summary(admitted_ms)
                                         if admitted_ms else {"count": 0})
        report["admitted"] = len(admitted_ms)
        report["client_exceptions"] = client_exceptions
        report["daemon_survived"] = daemon_survived
        report["admission"] = {"max_inflight": max_inflight,
                               "max_queued": max_queued,
                               "default_deadline_ms": default_deadline_ms,
                               "deadline_ms": deadline_ms}
    if chaos is not None:
        report["chaos"] = {"spec": chaos.to_dict(),
                           "daemon": chaos_report}
    return report


def run_loadtest(prefixes: int = 256, seed: int = 20201027,
                 clients: int = 1000, keys: int = 64, flows: int = 4,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 concurrency: Optional[int] = None,
                 telemetry: bool = False,
                 max_inflight: Optional[int] = None,
                 max_queued: int = 0,
                 default_deadline_ms: Optional[float] = None,
                 deadline_ms: Optional[float] = None,
                 chaos=None) -> Dict[str, object]:
    """Run the burst and return the latency/counter report.

    ``concurrency=None`` opens every client connection at once (the
    full-burst mode the acceptance numbers use); an integer gates the
    burst through a semaphore for gentler environments.  ``telemetry``
    runs the daemon with the full observability bundle enabled — the
    overhead benchmark compares the two modes.

    The resilience knobs mirror :func:`repro.service.daemon.serve`:
    ``max_inflight``/``max_queued`` enable admission control (overflow
    requests come back as structured ``overloaded`` sheds, reported
    under the ``shed`` outcome), ``default_deadline_ms`` /
    ``deadline_ms`` bound request lifetimes (``deadline`` outcome), and
    ``chaos`` (a :class:`repro.testing.chaos.ChaosSpec`) runs hostile
    clients — slow-loris writers, mid-stream disconnects, resets,
    malformed floods — alongside the measured burst.
    """
    return asyncio.run(_run(prefixes, seed, clients, keys, flows,
                            cache_size, concurrency, telemetry,
                            max_inflight=max_inflight,
                            max_queued=max_queued,
                            default_deadline_ms=default_deadline_ms,
                            deadline_ms=deadline_ms, chaos=chaos))
