"""Synthetic Internet topology generator and ground-truth oracle.

The generator grows a routed tree from the vantage point by biased random
walks — heavy path sharing near the root (the Doubletree premise backward
probing exploits), branching that accelerates with depth, per-flow
load-balancer diamonds, MPLS-like silent runs — and attaches stub networks
owning contiguous runs of /24 prefixes at the leaves.  The resulting
:class:`Topology` object is the immutable ground truth: :meth:`hop_at`
answers, in O(1), what a probe with a given destination, TTL and flow
identifier hits.

All randomness is drawn from a single seeded ``random.Random``; two
topologies built from equal configs are identical.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..net.addr import prefix24_base
from .config import TopologyConfig, weighted_choice
from .entities import (
    VOID_HOP,
    HopKind,
    HopResult,
    PrefixInfo,
    Stub,
    lb_group_id,
    lb_offset,
    lb_token,
)

_FLOW_HASH_MULT = 2654435761  # Knuth multiplicative hash constant
_GROUP_HASH_MULT = 40503


class _TreeNode:
    """A node of the transit tree used only during generation."""

    __slots__ = ("token", "depth", "children")

    def __init__(self, token: int, depth: int) -> None:
        self.token = token
        self.depth = depth
        self.children: List["_TreeNode"] = []


class Topology:
    """Immutable simulated topology plus ground-truth query methods."""

    def __init__(self, config: TopologyConfig) -> None:
        self.config = config
        self.base_prefix = config.base_prefix_addr >> 8
        self.num_prefixes = config.num_prefixes
        self.vantage_addr = config.infrastructure_base_addr - 1

        # Flat interface tables, indexed by interface id.
        self.iface_addrs: List[int] = []
        self.iface_depth: List[int] = []
        self.udp_resp = bytearray()
        self.tcp_resp = bytearray()
        #: Whether the interface, probed *as a destination*, answers UDP
        #: high ports with port-unreachable (appliances often do not even
        #: when they generate TTL-exceeded).
        self.dest_resp = bytearray()

        #: Diamond id -> branches; each branch is a tuple of interface ids,
        #: one per hop level of the diamond.
        self.lb_groups: List[Tuple[Tuple[int, ...], ...]] = []
        self.stubs: List[Stub] = []
        self.prefixes: List[PrefixInfo] = []
        self.addr_to_iface: Dict[int, int] = {}

        self._next_infra_addr = config.infrastructure_base_addr
        self._generate(random.Random(config.seed))

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def _new_iface(self, addr: int, depth: int, udp: bool, tcp: bool,
                   dest: Optional[bool] = None) -> int:
        iface = len(self.iface_addrs)
        self.iface_addrs.append(addr)
        self.iface_depth.append(depth)
        self.udp_resp.append(1 if udp else 0)
        self.tcp_resp.append(1 if tcp else 0)
        self.dest_resp.append(1 if (udp if dest is None else dest) else 0)
        self.addr_to_iface[addr] = iface
        return iface

    def _new_infra_iface(self, depth: int, udp: bool, tcp: bool) -> int:
        addr = self._next_infra_addr
        self._next_infra_addr += 1
        return self._new_iface(addr, depth, udp, tcp)

    def _draw_responsiveness(self, rng: random.Random, silent: bool,
                             depth: int = 1) -> Tuple[bool, bool]:
        if silent:
            return False, False
        cfg = self.config
        if depth <= cfg.near_core_depth:
            rate = cfg.near_core_responsiveness
        elif depth >= cfg.deep_responsiveness_knee:
            rate = cfg.deep_udp_responsiveness
        else:
            rate = cfg.core_udp_responsiveness
        udp = rng.random() < rate
        tcp = udp and rng.random() >= cfg.tcp_silent_extra
        return udp, tcp

    def _new_transit_node(self, depth: int, rng: random.Random,
                          silent_run: List[int]) -> _TreeNode:
        """Create one plain transit node (diamonds are built separately)."""
        cfg = self.config
        if depth <= cfg.near_core_depth:
            silent = False
        elif silent_run[0] > 0:
            silent_run[0] -= 1
            silent = True
        elif rng.random() < cfg.silent_run_probability:
            silent_run[0] = weighted_choice(rng, cfg.silent_run_lengths) - 1
            silent = True
        else:
            silent = False

        udp, tcp = self._draw_responsiveness(rng, silent, depth)
        primary = self._new_infra_iface(depth, udp, tcp)
        return _TreeNode(primary, depth)

    def _new_diamond(self, depth: int, levels: int,
                     rng: random.Random) -> List[_TreeNode]:
        """Create a per-flow load-balancer diamond: ``branches`` parallel
        paths of ``levels`` hops each that fork and rejoin around the tree
        path (paper §3.2.1, Fig. 2).  Returns the chain of tree nodes
        carrying the diamond's hop tokens."""
        cfg = self.config
        branch_count = weighted_choice(rng, cfg.load_balancer_branches)
        branches = []
        for _branch in range(branch_count):
            ifaces = []
            for level in range(levels):
                udp, tcp = self._draw_responsiveness(rng, False, depth + level)
                ifaces.append(self._new_infra_iface(depth + level, udp, tcp))
            branches.append(tuple(ifaces))
        group_id = len(self.lb_groups)
        self.lb_groups.append(tuple(branches))
        return [_TreeNode(lb_token(group_id, level), depth + level)
                for level in range(levels)]

    def _branch_probability(self, depth: int) -> float:
        cfg = self.config
        grown = (depth / cfg.branch_depth_scale) ** cfg.branch_exponent
        return min(1.0, cfg.branch_base + grown)

    def _walk_transit(self, root: _TreeNode, gateway_depth: int,
                      rng: random.Random) -> Tuple[int, ...]:
        """Walk (and grow) the tree from the root to depth gateway_depth-1,
        returning the hop tokens at TTL 1 .. gateway_depth - 1."""
        tokens = [root.token]
        node = root
        silent_run = [0]
        depth = 2
        while depth < gateway_depth:
            if not node.children or rng.random() < self._branch_probability(depth):
                remaining = gateway_depth - depth
                if (remaining >= 1 and depth > self.config.near_core_depth
                        and rng.random() < self.config.load_balancer_probability):
                    levels = min(
                        weighted_choice(rng, self.config.load_balancer_depths),
                        remaining)
                    chain = self._new_diamond(depth, levels, rng)
                    node.children.append(chain[0])
                    for upper, lower in zip(chain, chain[1:]):
                        upper.children.append(lower)
                    for link in chain:
                        tokens.append(link.token)
                    node = chain[-1]
                    depth += levels
                    continue
                child = self._new_transit_node(depth, rng, silent_run)
                node.children.append(child)
            else:
                child = rng.choice(node.children)
                silent_run[0] = 0
            tokens.append(child.token)
            node = child
            depth += 1
        return tuple(tokens)

    def _sample_active_hosts(self, rng: random.Random,
                             forbidden: Set[int]) -> FrozenSet[int]:
        cfg = self.config
        usable = 254
        mean = usable * cfg.host_density
        sigma = max(1.0, mean ** 0.5)
        count = int(rng.gauss(mean, sigma) + 0.5)
        count = max(1, min(count, usable - len(forbidden) - 4))
        pool = [octet for octet in range(2, 250) if octet not in forbidden]
        return frozenset(rng.sample(pool, min(count, len(pool))))

    def _generate(self, rng: random.Random) -> None:
        cfg = self.config
        # TTL-1 router: the campus gateway; always responsive so backward
        # probing can terminate at hop 1 (paper §3.2).
        root = _TreeNode(self._new_infra_iface(1, True, True), 1)

        offset = 0
        while offset < self.num_prefixes:
            block = weighted_choice(rng, cfg.stub_block_sizes)
            block = min(block, self.num_prefixes - offset)
            gateway_depth = max(3, weighted_choice(rng, cfg.gateway_depth_weights))
            transit = self._walk_transit(root, gateway_depth, rng)

            first_prefix = self.base_prefix + offset
            gateway_addr = prefix24_base(first_prefix) | 0x01
            gw_udp = rng.random() < cfg.core_udp_responsiveness
            gw_tcp = gw_udp and rng.random() >= cfg.tcp_silent_extra
            gw_dest = gw_udp and rng.random() < cfg.appliance_udp_unreachable
            gateway_iface = self._new_iface(gateway_addr, gateway_depth,
                                            gw_udp, gw_tcp, dest=gw_dest)

            stub = Stub(
                stub_id=len(self.stubs),
                first_offset=offset,
                block_size=block,
                transit=transit,
                gateway_iface=gateway_iface,
                gateway_depth=gateway_depth,
                dark_interior=rng.random() < cfg.dark_interior_probability,
                loop_unassigned=rng.random() < cfg.default_route_loop_probability,
                ttl_reset=rng.random() < cfg.ttl_reset_middlebox_probability,
                rewrite=rng.random() < cfg.rewrite_middlebox_probability,
                host_unreachable=rng.random() < cfg.host_unreachable_probability,
            )
            self.stubs.append(stub)
            stub_active = rng.random() < cfg.stub_active_probability
            # Interior depth is a property of the stub's architecture: all
            # its /24s sit behind (nearly) the same number of internal hops,
            # which is what makes adjacent blocks share hop distances and
            # proximity-span prediction accurate (paper §3.3.4).
            stub_hops = weighted_choice(rng, cfg.internal_hops)

            for local in range(block):
                prefix_index = first_prefix + local
                prefix_base = prefix24_base(prefix_index)
                special: Dict[int, int] = {}
                if local == 0:
                    special[0x01] = gateway_iface

                hop_count = stub_hops
                jitter = rng.random()
                if jitter < cfg.internal_hop_jitter / 2:
                    hop_count = max(0, hop_count - 1)
                elif jitter < cfg.internal_hop_jitter:
                    hop_count += 1
                internals: List[int] = []
                for j in range(hop_count):
                    octet = 254 - j
                    udp = (not stub.dark_interior
                           and rng.random() < cfg.internal_responsiveness)
                    tcp = udp and rng.random() >= cfg.tcp_silent_extra
                    dest = udp and rng.random() < cfg.appliance_udp_unreachable
                    iface = self._new_iface(prefix_base | octet,
                                            gateway_depth + 1 + j, udp, tcp,
                                            dest=dest)
                    internals.append(iface)
                    special[octet] = iface

                alt_last_hop = -1
                if internals and rng.random() < cfg.alt_last_hop_probability:
                    octet = 240
                    udp = (not stub.dark_interior
                           and rng.random() < cfg.internal_responsiveness)
                    tcp = udp and rng.random() >= cfg.tcp_silent_extra
                    dest = udp and rng.random() < cfg.appliance_udp_unreachable
                    alt_last_hop = self._new_iface(
                        prefix_base | octet,
                        self.iface_depth[internals[-1]], udp, tcp, dest=dest)
                    special[octet] = alt_last_hop

                forbidden = set(special)
                if stub_active and rng.random() < cfg.prefix_active_within_active_stub:
                    active = self._sample_active_hosts(rng, forbidden)
                else:
                    active = frozenset()
                if rng.random() < cfg.ping_only_prefix_probability:
                    pool = [octet for octet in range(2, 250)
                            if octet not in forbidden and octet not in active]
                    ping = frozenset(rng.sample(pool, min(3, len(pool))))
                else:
                    ping = frozenset()

                self.prefixes.append(PrefixInfo(
                    stub_id=stub.stub_id,
                    internal_ifaces=tuple(internals),
                    active_hosts=active,
                    ping_hosts=ping,
                    special_hosts=special,
                    flap=rng.random() < cfg.route_flap_probability,
                    alt_last_hop=alt_last_hop,
                ))
            offset += block

        # Fill hitlist picks (synthesized ISI hitlist; see hitlist.py for
        # the preference rule and the bias discussion).
        from .hitlist import synthesize_hitlist  # local import: avoids cycle
        synthesize_hitlist(self, random.Random(cfg.seed ^ 0x48495453))

    # ------------------------------------------------------------------ #
    # Ground-truth queries
    # ------------------------------------------------------------------ #

    def resolve_token(self, token: int, flow: int) -> int:
        """Resolve a hop token to an interface id for a given flow."""
        if token >= 0:
            return token
        group_id = lb_group_id(token)
        branches = self.lb_groups[group_id]
        digest = ((flow * _FLOW_HASH_MULT) ^ (group_id * _GROUP_HASH_MULT))
        branch = branches[(digest & 0x7FFFFFFF) % len(branches)]
        return branch[lb_offset(token)]

    def prefix_offset(self, dst: int) -> int:
        """Offset of ``dst``'s /24 in the scanned space, or -1 if outside."""
        offset = (dst >> 8) - self.base_prefix
        if 0 <= offset < self.num_prefixes:
            return offset
        return -1

    def _destination_depth(self, record: PrefixInfo, stub: Stub,
                           octet: int, shift: int) -> Tuple[int, bool]:
        """(depth, is_assigned) of the address ``octet`` in ``record``."""
        iface = record.special_hosts.get(octet)
        if iface is not None:
            return self.iface_depth[iface] + shift, bool(self.dest_resp[iface])
        depth = (stub.gateway_depth + shift + len(record.internal_ifaces) + 1)
        return depth, octet in record.active_hosts

    def hop_at(self, dst: int, ttl: int, flow: int = 0,
               epoch: int = 0) -> HopResult:
        """Ground truth for a probe: what sits at ``ttl`` toward ``dst``.

        ``flow`` selects load-balancer branches (FlashRoute uses the
        checksum-derived source port, so the flow is constant per
        destination within a scan).  ``epoch`` indexes route-dynamics
        epochs; flappy prefixes gain one silent hop in odd epochs.
        """
        if ttl < 1:
            return VOID_HOP
        offset = self.prefix_offset(dst)
        if offset < 0:
            return VOID_HOP
        record = self.prefixes[offset]
        stub = self.stubs[record.stub_id]
        shift = 1 if (record.flap and (epoch & 1)) else 0
        octet = dst & 0xFF
        dest_depth, assigned = self._destination_depth(record, stub, octet, shift)
        return self._resolved_hop(record, stub, octet, shift, dest_depth,
                                  assigned, ttl, flow)

    def _resolved_hop(self, record: PrefixInfo, stub: Stub, octet: int,
                      shift: int, dest_depth: int, assigned: bool,
                      ttl: int, flow: int) -> HopResult:
        """The per-TTL tail of :meth:`hop_at`, after the per-destination
        state (record, stub, flap shift, destination depth) is resolved.

        :class:`~repro.simnet.routecache.RouteCache` calls this once per TTL
        when materializing a flat route entry, so the cached and uncached
        paths share a single implementation by construction.
        """
        transit_len = len(stub.transit)
        gateway_depth = stub.gateway_depth + shift

        if ttl <= transit_len:
            iface = self.resolve_token(stub.transit[ttl - 1], flow)
            return HopResult(HopKind.ROUTER, iface, dest_depth=dest_depth)
        if ttl < gateway_depth:
            # The flap-inserted silent hop between transit and gateway.
            return VOID_HOP
        if ttl == gateway_depth:
            if dest_depth == gateway_depth:
                # The gateway itself is the destination: the packet is
                # delivered, not expired, so the outcome is its own
                # destination responsiveness.
                if assigned:
                    return HopResult(HopKind.DESTINATION, stub.gateway_iface,
                                     residual_ttl=1, dest_depth=dest_depth)
                return VOID_HOP
            return HopResult(HopKind.ROUTER, stub.gateway_iface,
                             dest_depth=dest_depth)

        # Beyond the gateway.  Packets to *any* address of the prefix —
        # assigned or not — are forwarded down the prefix's interior chain
        # (the subnet routers exist regardless of whether the final host
        # does); unassigned addresses die at the last-hop router.  This is
        # what lets scans of random (mostly dead) addresses discover
        # interior interfaces that gateway-addressed hitlist targets hide
        # (paper §5.1).
        if stub.ttl_reset:
            # The middlebox normalizes low TTLs upward: every probe that
            # crosses the gateway reaches the destination; interior routers
            # never see an expiry.
            if not assigned:
                return VOID_HOP
            boosted = max(ttl - gateway_depth, self.config.ttl_reset_value)
            residual = boosted - (dest_depth - gateway_depth - 1)
            return HopResult(HopKind.DESTINATION, -1,
                             residual_ttl=max(residual, 1),
                             dest_depth=dest_depth)
        if ttl < dest_depth:
            index = ttl - gateway_depth - 1
            internals = record.internal_ifaces
            if 0 <= index < len(internals):
                iface = internals[index]
                if (index == len(internals) - 1
                        and record.alt_last_hop >= 0
                        and octet >= 128
                        and octet not in record.special_hosts):
                    # The upper host half sits behind the other last-hop
                    # router (VLAN split; see PrefixInfo.alt_last_hop).
                    iface = record.alt_last_hop
                return HopResult(HopKind.ROUTER, iface,
                                 dest_depth=dest_depth)
            return VOID_HOP
        if not assigned:
            return self._unassigned_at_last_hop(record, stub, ttl,
                                                gateway_depth, dest_depth,
                                                flow)
        iface = record.special_hosts.get(octet, -1)
        return HopResult(HopKind.DESTINATION, iface,
                         residual_ttl=ttl - dest_depth + 1,
                         dest_depth=dest_depth)

    def _unassigned_at_last_hop(self, record: PrefixInfo, stub: Stub,
                                ttl: int, gateway_depth: int,
                                dest_depth: int, flow: int) -> HopResult:
        """Behaviour at/past the would-be host position of an unassigned
        address: the last-hop router gives up on it."""
        if stub.loop_unassigned and stub.transit:
            # Default route bounces packets between the last-hop router and
            # its upstream; probes keep expiring inside the loop.
            if record.internal_ifaces:
                last_hop = record.internal_ifaces[-1]
                upstream = (record.internal_ifaces[-2]
                            if len(record.internal_ifaces) > 1
                            else stub.gateway_iface)
            else:
                last_hop = stub.gateway_iface
                upstream = self.resolve_token(stub.transit[-1], flow)
            hops_in = ttl - dest_depth
            iface = last_hop if hops_in % 2 == 0 else upstream
            return HopResult(HopKind.LOOP_ROUTER, iface)
        if stub.host_unreachable:
            last_hop = (record.internal_ifaces[-1]
                        if record.internal_ifaces else stub.gateway_iface)
            return HopResult(HopKind.GATEWAY_UNREACHABLE, last_hop)
        return VOID_HOP

    # ------------------------------------------------------------------ #
    # Convenience views (analysis, tests)
    # ------------------------------------------------------------------ #

    def true_route(self, dst: int, flow: int = 0, epoch: int = 0,
                   max_ttl: int = 32) -> List[Optional[int]]:
        """Interface *addresses* at TTL 1..max_ttl toward ``dst``.

        ``None`` marks hops where nothing would ever answer (void, silent
        router, or the destination itself occupying that TTL and beyond).
        Responsiveness is applied: silent routers appear as ``None``.
        """
        route: List[Optional[int]] = []
        for ttl in range(1, max_ttl + 1):
            hop = self.hop_at(dst, ttl, flow=flow, epoch=epoch)
            if hop.kind in (HopKind.ROUTER, HopKind.LOOP_ROUTER) \
                    and self.udp_resp[hop.iface]:
                route.append(self.iface_addrs[hop.iface])
            else:
                route.append(None)
        return route

    def destination_distance(self, dst: int, epoch: int = 0) -> Optional[int]:
        """True hop distance of ``dst`` if it is assigned, else ``None``."""
        offset = self.prefix_offset(dst)
        if offset < 0:
            return None
        record = self.prefixes[offset]
        stub = self.stubs[record.stub_id]
        shift = 1 if (record.flap and (epoch & 1)) else 0
        depth, assigned = self._destination_depth(record, stub, dst & 0xFF,
                                                  shift)
        return depth if assigned else None

    def reachable_interfaces(self, max_ttl: int = 32,
                             include_lb_alternates: bool = True,
                             udp: bool = True) -> Set[int]:
        """Upper bound on discoverable interface ids within ``max_ttl``.

        Includes transit hops (all diamond members when
        ``include_lb_alternates``), gateways, and the interiors of prefixes
        that have an assigned address behind them.
        """
        resp = self.udp_resp if udp else self.tcp_resp
        found: Set[int] = set()

        def _add(iface: int) -> None:
            if resp[iface] and self.iface_depth[iface] <= max_ttl:
                found.add(iface)

        for stub in self.stubs:
            for token in stub.transit:
                if token >= 0:
                    _add(token)
                elif include_lb_alternates:
                    for branch in self.lb_groups[lb_group_id(token)]:
                        _add(branch[lb_offset(token)])
                else:
                    _add(self.lb_groups[lb_group_id(token)][0][lb_offset(token)])
            _add(stub.gateway_iface)
        for record in self.prefixes:
            stub = self.stubs[record.stub_id]
            if stub.ttl_reset:
                continue  # interiors hidden behind the middlebox
            for iface in record.internal_ifaces:
                _add(iface)
            if record.alt_last_hop >= 0:
                _add(record.alt_last_hop)
        return found

    def scanned_prefixes(self) -> Iterable[int]:
        """The /24 prefix indexes of the scanned space, in address order."""
        return range(self.base_prefix, self.base_prefix + self.num_prefixes)
