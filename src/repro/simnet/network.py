"""The probe-answering network: topology + dynamics.

:class:`SimulatedNetwork` wraps the static :class:`~repro.simnet.topology.
Topology` ground truth with everything that varies at probe time: interface
responsiveness per probe protocol, per-interface ICMP rate limiting, latency,
route-dynamics epochs, destination-rewriting middleboxes, and an optional
probe log for the intrusiveness analysis.

``send_probe`` is the single entry point every probing engine uses.  It is
deliberately scalar-argument (no per-probe object is allocated unless a
response exists) because full scans push through 10^5..10^7 probes.
"""

from __future__ import annotations

from typing import Optional

from ..net.icmp import IcmpResponse, ResponseKind
from ..net.packets import PROTO_TCP, PROTO_UDP, ProbeHeader, UDP_HEADER_LEN
from .engine import ProbeLog
from .entities import HopKind
from .latency import LatencyModel
from .ratelimit import IcmpRateLimiter
from .topology import Topology

_HOST_HASH_MULT = 2654435761


class SimulatedNetwork:
    """Answers probes against a topology, with dynamic per-scan state.

    Create one per scan (or call :meth:`reset` between scans) so rate-limit
    bins and counters start clean, mirroring independent real-world runs.
    """

    def __init__(self, topology: Topology, log_probes: bool = False,
                 rate_limit: Optional[int] = None) -> None:
        self.topology = topology
        cfg = topology.config
        self.latency = LatencyModel(cfg.hop_latency, cfg.latency_jitter)
        self.rate_limiter = IcmpRateLimiter(
            rate_limit if rate_limit is not None else cfg.icmp_rate_limit)
        self.probe_log: Optional[ProbeLog] = ProbeLog() if log_probes else None
        self.probes_sent = 0
        self.responses_generated = 0
        self.rewritten_responses = 0

    def reset(self) -> None:
        """Clear dynamic state between scans over the same topology."""
        self.rate_limiter.reset()
        if self.probe_log is not None:
            self.probe_log = ProbeLog()
        self.probes_sent = 0
        self.responses_generated = 0
        self.rewritten_responses = 0

    # ------------------------------------------------------------------ #

    def _epoch(self, send_time: float) -> int:
        return int(send_time / self.topology.config.flap_epoch_seconds)

    def _host_answers_tcp(self, dst: int) -> bool:
        digest = ((dst * _HOST_HASH_MULT) >> 13) & 0xFFFF
        return digest / 65536.0 < self.topology.config.host_tcp_rst

    def _rewritten_dst(self, dst: int) -> int:
        """Destination as rewritten by the stub's middlebox (same /24,
        different host octet, so the checksum-derived source port no longer
        matches, paper §5.3)."""
        return (dst & 0xFFFFFF00) | ((dst + 97) & 0xFF)

    def send_probe(self, dst: int, ttl: int, send_time: float,
                   src_port: int, dst_port: int = 33434, ipid: int = 0,
                   udp_length: int = UDP_HEADER_LEN, proto: int = PROTO_UDP,
                   flow: Optional[int] = None) -> Optional[IcmpResponse]:
        """Inject one probe; return its response, or ``None`` for silence.

        ``flow`` is the load-balancer flow identifier and defaults to the
        source port (per-flow balancers hash the 5-tuple; within one scan
        FlashRoute keeps ports constant per destination, so the flow only
        changes across discovery-optimized extra scans).
        """
        self.probes_sent += 1
        if self.probe_log is not None:
            self.probe_log.append(send_time, dst, ttl)

        topo = self.topology
        hop = topo.hop_at(dst, ttl, flow=flow if flow is not None else src_port,
                          epoch=self._epoch(send_time))
        kind = hop.kind
        if kind is HopKind.VOID:
            return None

        if kind in (HopKind.ROUTER, HopKind.LOOP_ROUTER):
            iface = hop.iface
            responsive = (topo.tcp_resp[iface] if proto == PROTO_TCP
                          else topo.udp_resp[iface])
            if not responsive:
                return None
            depth = ttl
            if not self.rate_limiter.allow(
                    iface, send_time + self.latency.one_way(depth, dst, ttl)):
                return None
            return self._respond(ResponseKind.TTL_EXCEEDED,
                                 topo.iface_addrs[iface], dst, ttl,
                                 residual=1, depth=depth,
                                 send_time=send_time, src_port=src_port,
                                 dst_port=dst_port, ipid=ipid,
                                 udp_length=udp_length, proto=proto)

        if kind is HopKind.GATEWAY_UNREACHABLE:
            iface = hop.iface
            responsive = (topo.tcp_resp[iface] if proto == PROTO_TCP
                          else topo.udp_resp[iface])
            if not responsive:
                return None
            stub = topo.stubs[topo.prefixes[topo.prefix_offset(dst)].stub_id]
            depth = stub.gateway_depth
            if not self.rate_limiter.allow(
                    iface, send_time + self.latency.one_way(depth, dst, ttl)):
                return None
            return self._respond(ResponseKind.HOST_UNREACHABLE,
                                 topo.iface_addrs[iface], dst, ttl,
                                 residual=1, depth=depth,
                                 send_time=send_time, src_port=src_port,
                                 dst_port=dst_port, ipid=ipid,
                                 udp_length=udp_length, proto=proto,
                                 maybe_rewrite=stub.rewrite)

        # Destination reached.
        depth = hop.dest_depth
        if proto == PROTO_TCP:
            if not self._host_answers_tcp(dst):
                return None
            response_kind = ResponseKind.TCP_RST
        else:
            response_kind = ResponseKind.PORT_UNREACHABLE
        if hop.iface >= 0:
            # A router interface probed directly: its ICMP generation is
            # subject to the same rate limiting.
            if not self.rate_limiter.allow(
                    hop.iface,
                    send_time + self.latency.one_way(depth, dst, ttl)):
                return None
        record = topo.prefixes[topo.prefix_offset(dst)]
        stub = topo.stubs[record.stub_id]
        return self._respond(response_kind, dst, dst, ttl,
                             residual=hop.residual_ttl, depth=depth,
                             send_time=send_time, src_port=src_port,
                             dst_port=dst_port, ipid=ipid,
                             udp_length=udp_length, proto=proto,
                             maybe_rewrite=stub.rewrite)

    def _respond(self, kind: ResponseKind, responder: int, dst: int,
                 ttl: int, residual: int, depth: int, send_time: float,
                 src_port: int, dst_port: int, ipid: int, udp_length: int,
                 proto: int, maybe_rewrite: bool = False) -> IcmpResponse:
        quoted_dst = dst
        if maybe_rewrite:
            quoted_dst = self._rewritten_dst(dst)
            self.rewritten_responses += 1
        quoted = ProbeHeader(src=self.topology.vantage_addr, dst=quoted_dst,
                             ttl=residual, ipid=ipid, proto=proto,
                             src_port=src_port, dst_port=dst_port,
                             udp_length=udp_length)
        self.responses_generated += 1
        arrival = send_time + self.latency.round_trip(depth, dst, ttl)
        return IcmpResponse(kind=kind, responder=responder, quoted=quoted,
                            arrival_time=arrival,
                            quoted_residual_ttl=residual)
