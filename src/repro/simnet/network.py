"""The probe-answering network: topology + dynamics.

:class:`SimulatedNetwork` wraps the static :class:`~repro.simnet.topology.
Topology` ground truth with everything that varies at probe time: interface
responsiveness per probe protocol, per-interface ICMP rate limiting, latency,
route-dynamics epochs, destination-rewriting middleboxes, and an optional
probe log for the intrusiveness analysis.

``send_probe`` is the single entry point every probing engine uses.  It is
deliberately scalar-argument (no per-probe object is allocated unless a
response exists) because full scans push through 10^5..10^7 probes.  By
default it is served from a :class:`~repro.simnet.routecache.RouteCache`
fast path: the route and every send-time-independent response decision are
resolved once per ``(dst, flow-class, flap-shift)`` key, so a probe costs a
table lookup plus (for responders only) rate limiting and response
construction.  ``send_probes`` batches a burst of probes between two drain
points, amortizing the per-destination lookups; engines use it for the
back-to-back probes of one ring-walk step.  Construct with
``use_route_cache=False`` (or flip :meth:`set_route_cache_enabled`) to run
the original resolution path — both paths are behavior-identical and the
equivalence tests assert it probe-for-probe.

Fault injection (:mod:`repro.simnet.faults`) composes with every serving
mode: when a :class:`~repro.simnet.faults.FaultModel` is enabled, resolved
responses pass through :meth:`FaultInjector.filter` at the exact point they
would be returned, on the cached, batched and uncached paths alike.  Fault
decisions are stateless per-probe hashes, so the same fault seed yields the
same fault sequence in every mode and the cached-vs-uncached equivalence
guarantee extends to faulted scans.  A disabled (default) model costs the
hot path nothing beyond one attribute test.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..net.icmp import IcmpResponse, ResponseKind
from ..net.packets import PROTO_TCP, PROTO_UDP, ProbeHeader, UDP_HEADER_LEN
from .engine import ProbeLog
from .entities import HopKind
from .faults import FaultInjector, FaultModel
from .latency import LatencyModel
from .ratelimit import _GENERATION_SHIFT, IcmpRateLimiter
from .routecache import ROUTE_CACHE_TTLS, RouteCache, host_answers_tcp
from .topology import Topology

#: One probe of a ``send_probes`` batch: (dst, ttl, send_time, src_port,
#: ipid, udp_length).  Destination port, protocol and flow are per-batch.
BatchProbe = Tuple[int, int, float, int, int, int]


class SimulatedNetwork:
    """Answers probes against a topology, with dynamic per-scan state.

    Create one per scan (or call :meth:`reset` between scans) so rate-limit
    bins and counters start clean, mirroring independent real-world runs.
    """

    __slots__ = ("topology", "latency", "rate_limiter", "route_cache",
                 "probe_log", "probes_sent", "responses_generated",
                 "rewritten_responses", "_flap_epoch_seconds", "_vantage",
                 "_stamp_len", "_lk", "faults")

    def __init__(self, topology: Topology, log_probes: bool = False,
                 rate_limit: Optional[int] = None,
                 use_route_cache: bool = True,
                 faults: Optional[FaultModel] = None) -> None:
        self.topology = topology
        cfg = topology.config
        model = faults if faults is not None else cfg.faults
        #: Fault-injection layer; ``None`` when the model injects nothing,
        #: so the default hot path pays only one attribute test.
        self.faults: Optional[FaultInjector] = (
            FaultInjector(model) if model.enabled else None)
        self.latency = LatencyModel(cfg.hop_latency, cfg.latency_jitter)
        self.rate_limiter = IcmpRateLimiter(
            rate_limit if rate_limit is not None else cfg.icmp_rate_limit,
            num_interfaces=len(topology.iface_addrs))
        self.route_cache: Optional[RouteCache] = (
            RouteCache(topology) if use_route_cache else None)
        #: Size of the limiter's array backing (never changes after
        #: construction; -1 for the dict fallback), hoisted for the inlined
        #: rate-limit check on the probe fast path.
        self._stamp_len = (len(self.rate_limiter._stamp)
                           if self.rate_limiter._stamp is not None else -1)
        self.probe_log: Optional[ProbeLog] = ProbeLog() if log_probes else None
        self.probes_sent = 0
        self.responses_generated = 0
        self.rewritten_responses = 0
        self._flap_epoch_seconds = cfg.flap_epoch_seconds
        self._vantage = topology.vantage_addr
        # Last-key memo for scalar send_probe: scans probe one destination
        # ~15-30 times back to back, so remembering the last outcome table
        # skips the key tuple + dict probe on the vast majority of calls.
        # Packed as one (dst, flow, parity, proto, table) tuple so the hit
        # path costs a single attribute load.
        self._lk: Optional[Tuple] = None

    def reset(self) -> None:
        """Clear dynamic state between scans over the same topology.

        The route cache survives: it is a pure function of the immutable
        topology (epochs are part of its key), so it stays warm across
        back-to-back scans exactly like real routes persist between runs.
        """
        self.rate_limiter.reset()
        if self.probe_log is not None:
            self.probe_log = ProbeLog()
        if self.faults is not None:
            self.faults.reset_counters()
        self.probes_sent = 0
        self.responses_generated = 0
        self.rewritten_responses = 0

    def stats(self) -> dict:
        """One nested view of every counter this network accumulates —
        sends, route-cache effectiveness, rate-limiter stalls and fault
        draws — for :func:`repro.obs.record_network`, ``metrics-out``
        files and the CLI's fault-telemetry output.  Pure reads; calling
        it never perturbs the hot path."""
        return {
            "probes_sent": self.probes_sent,
            "responses_generated": self.responses_generated,
            "rewritten_responses": self.rewritten_responses,
            "ratelimit": self.rate_limiter.stats(),
            "route_cache": (self.route_cache.stats()
                            if self.route_cache is not None else None),
            "faults": (self.faults.stats()
                       if self.faults is not None else None),
        }

    @property
    def drop_count(self) -> int:
        """Rate-limiter drops so far (the adaptive-rate controller's
        per-round backoff signal)."""
        return self.rate_limiter.dropped

    def export_dynamic_state(self, now: float) -> dict:
        """Serialize the per-scan dynamic state for a checkpoint.

        Covers everything that influences future probe outcomes or the
        final fault/limiter statistics: send counters, live rate-limiter
        bins (via :meth:`IcmpRateLimiter.export_bins`) and fault-injector
        counters.  The route cache and its hit counters are deliberately
        excluded — they are pure functions of the immutable topology and
        only affect performance, never responses.
        """
        state = {
            "probes_sent": self.probes_sent,
            "responses_generated": self.responses_generated,
            "rewritten_responses": self.rewritten_responses,
            "ratelimit": self.rate_limiter.export_bins(now),
            "faults": None,
        }
        if self.faults is not None:
            state["faults"] = self.faults.stats()
        return state

    def restore_dynamic_state(self, state: dict) -> None:
        """Restore counters and limiter bins from
        :meth:`export_dynamic_state` (checkpoint resume)."""
        self.probes_sent = state["probes_sent"]
        self.responses_generated = state["responses_generated"]
        self.rewritten_responses = state["rewritten_responses"]
        self.rate_limiter.restore_bins(state["ratelimit"])
        fault_state = state.get("faults")
        if fault_state is not None and self.faults is not None:
            self.faults.restore_counters(fault_state)

    def open_session(self, faults: Optional[FaultModel] = None,
                     use_route_cache: Optional[bool] = None,
                     rate_limit: Optional[int] = None,
                     log_probes: bool = False) -> "SimulatedNetwork":
        """A per-scan *session view* over this network's warm core.

        The view shares the immutable :class:`Topology`, the stateless
        :class:`LatencyModel` and (by default) the warm
        :class:`RouteCache` — everything that is a pure function of the
        topology — while owning every piece of dynamic per-scan state
        privately: fresh rate-limiter bins, zeroed send/response/fault
        counters, its own last-key memo and (when ``faults`` enables one)
        its own :class:`FaultInjector`.

        Sessions opened off one warm network are therefore **mutually
        invisible**: interleaving probes from two sessions — each on its
        own virtual clock, as the service daemon does — yields exactly
        the responses each session would see run back to back (pinned by
        ``tests/test_network_session.py``).  A bare shared network cannot
        promise that: its one-second rate-limiter bins are keyed by
        virtual send time, so two scans whose clocks overlap would fill
        each other's bins.

        ``use_route_cache=None`` inherits this network's serving mode
        (sharing the warm cache when one exists); ``True``/``False``
        force the cached/uncached path for this session only.  Sharing
        the cache is safe: outcome tables are deterministic pure
        functions of the topology, and lazily realized slots are
        idempotent, so concurrent sessions can only ever write the same
        values.
        """
        cfg = self.topology.config
        session = SimulatedNetwork.__new__(SimulatedNetwork)
        session.topology = self.topology
        model = faults if faults is not None else cfg.faults
        session.faults = FaultInjector(model) if model.enabled else None
        session.latency = self.latency
        session.rate_limiter = IcmpRateLimiter(
            rate_limit if rate_limit is not None else cfg.icmp_rate_limit,
            num_interfaces=len(self.topology.iface_addrs))
        if use_route_cache is None:
            session.route_cache = self.route_cache
        elif use_route_cache:
            session.route_cache = (self.route_cache
                                   if self.route_cache is not None
                                   else RouteCache(self.topology))
        else:
            session.route_cache = None
        session._stamp_len = (len(session.rate_limiter._stamp)
                              if session.rate_limiter._stamp is not None
                              else -1)
        session.probe_log = ProbeLog() if log_probes else None
        session.probes_sent = 0
        session.responses_generated = 0
        session.rewritten_responses = 0
        session._flap_epoch_seconds = cfg.flap_epoch_seconds
        session._vantage = self.topology.vantage_addr
        session._lk = None
        return session

    def set_route_cache_enabled(self, enabled: bool) -> bool:
        """Enable/disable the route-cache fast path; returns the previous
        setting.  Disabling drops the cache; re-enabling builds a cold one."""
        was = self.route_cache is not None
        if enabled and self.route_cache is None:
            self.route_cache = RouteCache(self.topology)
        elif not enabled:
            self.route_cache = None
        self._lk = None
        return was

    # ------------------------------------------------------------------ #

    def _epoch(self, send_time: float) -> int:
        return int(send_time / self._flap_epoch_seconds)

    def _host_answers_tcp(self, dst: int) -> bool:
        return host_answers_tcp(dst, self.topology.config.host_tcp_rst)

    def _rewritten_dst(self, dst: int) -> int:
        """Destination as rewritten by the stub's middlebox (same /24,
        different host octet, so the checksum-derived source port no longer
        matches, paper §5.3)."""
        return (dst & 0xFFFFFF00) | ((dst + 97) & 0xFF)

    def send_probe(self, dst: int, ttl: int, send_time: float,
                   src_port: int, dst_port: int = 33434, ipid: int = 0,
                   udp_length: int = UDP_HEADER_LEN, proto: int = PROTO_UDP,
                   flow: Optional[int] = None,
                   single: bool = False) -> Optional[IcmpResponse]:
        """Inject one probe; return its response, or ``None`` for silence.

        ``flow`` is the load-balancer flow identifier and defaults to the
        source port (per-flow balancers hash the 5-tuple; within one scan
        FlashRoute keeps ports constant per destination, so the flow only
        changes across discovery-optimized extra scans).

        ``single`` hints that no further probes will target this
        destination (e.g. a hitlist preprobe whose representative differs
        from the main-phase target): a cached outcome table is still used
        if one exists, but a miss resolves the probe directly instead of
        building a 32-slot table that nothing would amortize.  Purely a
        performance hint — responses are identical either way.
        """
        cache = self.route_cache
        if cache is None or not 1 <= ttl <= ROUTE_CACHE_TTLS:
            return self._send_probe_uncached(dst, ttl, send_time, src_port,
                                             dst_port, ipid, udp_length,
                                             proto, flow)
        self.probes_sent += 1
        if self.probe_log is not None:
            self.probe_log.append(send_time, dst, ttl)
        flow_id = src_port if flow is None else flow
        parity = int(send_time / self._flap_epoch_seconds) & 1
        lk = self._lk
        if (lk is not None and dst == lk[0] and flow_id == lk[1]
                and parity == lk[2] and proto == lk[3]):
            table = lk[4]
        else:
            tables = (cache.tcp_tables if proto == PROTO_TCP
                      else cache.udp_tables)
            table = tables.get((dst, flow_id, parity))
            if table is None:
                if single:
                    return self._send_probe_uncached(
                        dst, ttl, send_time, src_port, dst_port, ipid,
                        udp_length, proto, flow, counted=True)
                table = cache.outcome_table(dst, flow_id, parity, proto)
            else:
                cache.hits += 1
            self._lk = (dst, flow_id, parity, proto, table)
        outcome = table[ttl - 1]
        if outcome is None:
            return None
        if outcome.__class__ is not tuple:
            # LazyDest placeholder: realize this slot once, memoize it.
            outcome = outcome.realize(ttl)
            table[ttl - 1] = outcome
        kind, responder, iface, ow_delay, rt_delay, residual, quoted_dst, \
            rewrite = outcome
        if iface >= 0:
            # Inlined IcmpRateLimiter.allow (array branch): on the hot path
            # the call overhead itself is measurable.  The dict fallback and
            # the unit tests keep the method authoritative.
            limiter = self.rate_limiter
            if iface < self._stamp_len:
                stamp = limiter._stamp
                token = ((limiter._generation + 1) << _GENERATION_SHIFT) \
                    + int(send_time + ow_delay)
                if stamp[iface] != token:
                    stamp[iface] = token
                    limiter._count[iface] = 1
                else:
                    count = limiter._count[iface] + 1
                    limiter._count[iface] = count
                    if count > limiter.limit:
                        limiter.dropped += 1
                        limiter._overprobed.add(iface)
                        return None
            elif not limiter.allow(iface, send_time + ow_delay):
                return None
        if rewrite:
            self.rewritten_responses += 1
        self.responses_generated += 1
        # Direct slot stores instead of the two constructors: the response
        # objects are the last interpreter-frame calls left on the fast
        # path, and a scan allocates one pair per responding probe.
        quoted = ProbeHeader.__new__(ProbeHeader)
        quoted.src = self._vantage
        quoted.dst = quoted_dst
        quoted.ttl = residual
        quoted.ipid = ipid
        quoted.proto = proto
        quoted.src_port = src_port
        quoted.dst_port = dst_port
        quoted.udp_length = udp_length
        quoted.tcp_seq = 0
        quoted.payload = b""
        response = IcmpResponse.__new__(IcmpResponse)
        response.kind = kind
        response.responder = responder
        response.quoted = quoted
        response.arrival_time = send_time + rt_delay
        response.quoted_residual_ttl = residual
        response.is_duplicate = False
        response.dup = None
        faults = self.faults
        if faults is not None:
            return faults.filter(dst, ttl, send_time, response)
        return response

    def send_probes(self, probes: Iterable[BatchProbe],
                    dst_port: int = 33434, proto: int = PROTO_UDP,
                    flow: Optional[int] = None
                    ) -> List[Optional[IcmpResponse]]:
        """Inject a burst of probes; return one response slot per probe.

        ``probes`` yields ``(dst, ttl, send_time, src_port, ipid,
        udp_length)`` tuples, already paced by the caller's clock.  The
        burst must lie between two of the caller's drain points — batching
        never reorders or delays responses, it only amortizes the
        per-destination route lookups, which is why engines batch the
        back-to-back probes of one ring-walk step rather than whole rounds.
        Semantically equivalent to calling :meth:`send_probe` per tuple.
        """
        cache = self.route_cache
        if cache is None:
            send_one = self._send_probe_uncached
            return [send_one(dst, ttl, send_time, src_port, dst_port, ipid,
                             udp_length, proto, flow)
                    for dst, ttl, send_time, src_port, ipid, udp_length
                    in probes]

        results: List[Optional[IcmpResponse]] = []
        append = results.append
        log = self.probe_log
        tables = cache.tcp_tables if proto == PROTO_TCP else cache.udp_tables
        get_table = tables.get
        build_table = cache.outcome_table
        limiter = self.rate_limiter
        allow = limiter.allow
        stamp = limiter._stamp
        stamp_len = self._stamp_len
        count_arr = limiter._count
        limit = limiter.limit
        gen_base = (limiter._generation + 1) << _GENERATION_SHIFT
        epoch_seconds = self._flap_epoch_seconds
        vantage = self._vantage
        faults = self.faults
        sent = 0
        rewritten = 0
        generated = 0
        last_key = None
        table: Optional[Sequence] = None
        for dst, ttl, send_time, src_port, ipid, udp_length in probes:
            sent += 1
            if log is not None:
                log.append(send_time, dst, ttl)
            if not 1 <= ttl <= ROUTE_CACHE_TTLS:
                self.probes_sent += sent
                self.rewritten_responses += rewritten
                self.responses_generated += generated
                sent = rewritten = generated = 0
                append(self._send_probe_uncached(
                    dst, ttl, send_time, src_port, dst_port, ipid,
                    udp_length, proto, flow, counted=True))
                continue
            key = (dst, src_port if flow is None else flow,
                   int(send_time / epoch_seconds) & 1)
            if key != last_key:
                table = get_table(key)
                if table is None:
                    table = build_table(key[0], key[1], key[2], proto)
                else:
                    cache.hits += 1
                last_key = key
            outcome = table[ttl - 1]
            if outcome is None:
                append(None)
                continue
            if outcome.__class__ is not tuple:
                outcome = outcome.realize(ttl)
                table[ttl - 1] = outcome
            kind, responder, iface, ow_delay, rt_delay, residual, \
                quoted_dst, rewrite = outcome
            if iface >= 0:
                # Inlined IcmpRateLimiter.allow (array branch), hoisted
                # per-batch; dict fallback for unsized/oversize interfaces.
                if iface < stamp_len:
                    token = gen_base + int(send_time + ow_delay)
                    if stamp[iface] != token:
                        stamp[iface] = token
                        count_arr[iface] = 1
                    else:
                        count = count_arr[iface] + 1
                        count_arr[iface] = count
                        if count > limit:
                            limiter.dropped += 1
                            limiter._overprobed.add(iface)
                            append(None)
                            continue
                elif not allow(iface, send_time + ow_delay):
                    append(None)
                    continue
            if rewrite:
                rewritten += 1
            generated += 1
            quoted = ProbeHeader.__new__(ProbeHeader)
            quoted.src = vantage
            quoted.dst = quoted_dst
            quoted.ttl = residual
            quoted.ipid = ipid
            quoted.proto = proto
            quoted.src_port = src_port
            quoted.dst_port = dst_port
            quoted.udp_length = udp_length
            quoted.tcp_seq = 0
            quoted.payload = b""
            response = IcmpResponse.__new__(IcmpResponse)
            response.kind = kind
            response.responder = responder
            response.quoted = quoted
            response.arrival_time = send_time + rt_delay
            response.quoted_residual_ttl = residual
            response.is_duplicate = False
            response.dup = None
            if faults is not None:
                response = faults.filter(dst, ttl, send_time, response)
            append(response)
        self.probes_sent += sent
        self.rewritten_responses += rewritten
        self.responses_generated += generated
        return results

    def _send_probe_uncached(self, dst: int, ttl: int, send_time: float,
                             src_port: int, dst_port: int = 33434,
                             ipid: int = 0,
                             udp_length: int = UDP_HEADER_LEN,
                             proto: int = PROTO_UDP,
                             flow: Optional[int] = None,
                             counted: bool = False
                             ) -> Optional[IcmpResponse]:
        """The original (cache-free) resolution path, kept verbatim both as
        the ``use_route_cache=False`` escape hatch and as the ground truth
        the equivalence tests compare the fast path against."""
        if not counted:
            self.probes_sent += 1
            if self.probe_log is not None:
                self.probe_log.append(send_time, dst, ttl)

        topo = self.topology
        hop = topo.hop_at(dst, ttl, flow=flow if flow is not None else src_port,
                          epoch=self._epoch(send_time))
        kind = hop.kind
        if kind is HopKind.VOID:
            return None

        if kind in (HopKind.ROUTER, HopKind.LOOP_ROUTER):
            iface = hop.iface
            responsive = (topo.tcp_resp[iface] if proto == PROTO_TCP
                          else topo.udp_resp[iface])
            if not responsive:
                return None
            depth = ttl
            if not self.rate_limiter.allow(
                    iface, send_time + self.latency.one_way(depth, dst, ttl)):
                return None
            return self._respond(ResponseKind.TTL_EXCEEDED,
                                 topo.iface_addrs[iface], dst, ttl,
                                 residual=1, depth=depth,
                                 send_time=send_time, src_port=src_port,
                                 dst_port=dst_port, ipid=ipid,
                                 udp_length=udp_length, proto=proto)

        if kind is HopKind.GATEWAY_UNREACHABLE:
            iface = hop.iface
            responsive = (topo.tcp_resp[iface] if proto == PROTO_TCP
                          else topo.udp_resp[iface])
            if not responsive:
                return None
            stub = topo.stubs[topo.prefixes[topo.prefix_offset(dst)].stub_id]
            depth = stub.gateway_depth
            if not self.rate_limiter.allow(
                    iface, send_time + self.latency.one_way(depth, dst, ttl)):
                return None
            return self._respond(ResponseKind.HOST_UNREACHABLE,
                                 topo.iface_addrs[iface], dst, ttl,
                                 residual=1, depth=depth,
                                 send_time=send_time, src_port=src_port,
                                 dst_port=dst_port, ipid=ipid,
                                 udp_length=udp_length, proto=proto,
                                 maybe_rewrite=stub.rewrite)

        # Destination reached.
        depth = hop.dest_depth
        if proto == PROTO_TCP:
            if not self._host_answers_tcp(dst):
                return None
            response_kind = ResponseKind.TCP_RST
        else:
            response_kind = ResponseKind.PORT_UNREACHABLE
        if hop.iface >= 0:
            # A router interface probed directly: its ICMP generation is
            # subject to the same rate limiting.
            if not self.rate_limiter.allow(
                    hop.iface,
                    send_time + self.latency.one_way(depth, dst, ttl)):
                return None
        record = topo.prefixes[topo.prefix_offset(dst)]
        stub = topo.stubs[record.stub_id]
        return self._respond(response_kind, dst, dst, ttl,
                             residual=hop.residual_ttl, depth=depth,
                             send_time=send_time, src_port=src_port,
                             dst_port=dst_port, ipid=ipid,
                             udp_length=udp_length, proto=proto,
                             maybe_rewrite=stub.rewrite)

    def _respond(self, kind: ResponseKind, responder: int, dst: int,
                 ttl: int, residual: int, depth: int, send_time: float,
                 src_port: int, dst_port: int, ipid: int, udp_length: int,
                 proto: int,
                 maybe_rewrite: bool = False) -> Optional[IcmpResponse]:
        quoted_dst = dst
        if maybe_rewrite:
            quoted_dst = self._rewritten_dst(dst)
            self.rewritten_responses += 1
        quoted = ProbeHeader(src=self.topology.vantage_addr, dst=quoted_dst,
                             ttl=residual, ipid=ipid, proto=proto,
                             src_port=src_port, dst_port=dst_port,
                             udp_length=udp_length)
        self.responses_generated += 1
        arrival = send_time + self.latency.round_trip(depth, dst, ttl)
        response = IcmpResponse(kind=kind, responder=responder, quoted=quoted,
                                arrival_time=arrival,
                                quoted_residual_ttl=residual)
        faults = self.faults
        if faults is not None:
            return faults.filter(dst, ttl, send_time, response)
        return response
