"""Packet capture: run any scan while writing real wire bytes to pcap.

FlashRoute's most performant mode leaves response logging to an external
sniffer (paper §4.2.3).  :class:`CapturingNetwork` plays that sniffer: it
wraps a :class:`~repro.simnet.network.SimulatedNetwork`, serializes every
probe and every response to byte-exact IPv4 packets, and streams them into
a pcap file that tcpdump/Wireshark/scapy can open.
"""

from __future__ import annotations

from typing import BinaryIO, List, Optional

from ..net.icmp import IcmpResponse, ResponseKind, pack_icmp_error
from ..net.packets import PROTO_TCP, PROTO_UDP, ProbeHeader, TCPHeader, IPv4Header
from ..net.pcap import PcapWriter
from .network import SimulatedNetwork


def response_wire_bytes(response: IcmpResponse, vantage: int) -> bytes:
    """Wire bytes of a response as the vantage point's sniffer sees it."""
    if response.kind is ResponseKind.TCP_RST:
        # A RST has no ICMP quotation: ports swapped, no payload.
        quoted = response.quoted
        tcp = TCPHeader(src_port=quoted.dst_port, dst_port=quoted.src_port,
                        seq=0, ack=quoted.tcp_seq, flags=0x14)  # RST|ACK
        body = tcp.pack()
        outer = IPv4Header(src=response.responder, dst=vantage,
                           proto=PROTO_TCP, ttl=64,
                           total_length=20 + len(body))
        return outer.pack() + body
    return pack_icmp_error(response.kind, response.responder, vantage,
                           response.quoted.quotation())


class CapturingNetwork:
    """A transparent proxy that captures a scan's traffic to pcap.

    Drop-in for :class:`SimulatedNetwork`: every engine in this library
    only calls :meth:`send_probe` and reads attributes, both of which are
    forwarded.
    """

    def __init__(self, network: SimulatedNetwork,
                 stream: BinaryIO) -> None:
        self._network = network
        self._writer = PcapWriter(stream)

    @property
    def packets_captured(self) -> int:
        return self._writer.count

    def __getattr__(self, name: str):
        return getattr(self._network, name)

    def send_probe(self, dst: int, ttl: int, send_time: float,
                   src_port: int, dst_port: int = 33434, ipid: int = 0,
                   udp_length: int = 8, proto: int = PROTO_UDP,
                   flow: Optional[int] = None,
                   single: bool = False) -> Optional[IcmpResponse]:
        vantage = self._network.topology.vantage_addr
        probe = ProbeHeader(src=vantage, dst=dst, ttl=ttl, ipid=ipid,
                            proto=proto, src_port=src_port,
                            dst_port=dst_port, udp_length=udp_length)
        self._writer.write(send_time, probe.pack())
        response = self._network.send_probe(
            dst, ttl, send_time, src_port, dst_port=dst_port, ipid=ipid,
            udp_length=udp_length, proto=proto, flow=flow, single=single)
        if response is not None:
            self._writer.write(response.arrival_time,
                               response_wire_bytes(response, vantage))
            if response.dup is not None:
                # Injected duplicate replies are real wire traffic too.
                self._writer.write(response.dup.arrival_time,
                                   response_wire_bytes(response.dup, vantage))
        return response

    def send_probes(self, probes, dst_port: int = 33434,
                    proto: int = PROTO_UDP,
                    flow: Optional[int] = None) -> List[Optional[IcmpResponse]]:
        """Batched counterpart of :meth:`send_probe`.

        Explicit (not left to ``__getattr__``) so batched engines don't
        bypass the sniffer — but the probes are forwarded through the
        inner network's *batch* path, not unrolled to scalar sends: the
        batch path is what builds the route cache's memoized tables, so
        unrolling would change ``simnet.cache.*`` accounting (and the
        fault/cache columns ``--loss`` runs attach to the result) the
        moment a pcap writer is plugged in.  Probe wire bytes are
        written at their send times, responses at their arrivals.
        """
        vantage = self._network.topology.vantage_addr
        writer = self._writer
        for dst, ttl, send_time, src_port, ipid, udp_length in probes:
            probe = ProbeHeader(src=vantage, dst=dst, ttl=ttl, ipid=ipid,
                                proto=proto, src_port=src_port,
                                dst_port=dst_port, udp_length=udp_length)
            writer.write(send_time, probe.pack())
        responses = self._network.send_probes(
            probes, dst_port=dst_port, proto=proto, flow=flow)
        for response in responses:
            if response is not None:
                writer.write(response.arrival_time,
                             response_wire_bytes(response, vantage))
                if response.dup is not None:
                    # Injected duplicate replies are real wire traffic too.
                    writer.write(response.dup.arrival_time,
                                 response_wire_bytes(response.dup, vantage))
        return responses
