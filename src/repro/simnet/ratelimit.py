"""Per-interface ICMP rate limiting.

Ravaioli et al. [19] found most routers cap ICMP generation at 500 or fewer
replies per second.  The paper both respects this (its Table 4 methodology
counts an interface as overprobed in any one-second interval in which it is
asked for more responses than the limit) and exploits it as the motivation
for spreading probes.  We implement the same one-second-bin semantics.
"""

from __future__ import annotations

from typing import Dict, Tuple


class IcmpRateLimiter:
    """One-second-bin rate limiter shared by all interfaces of a scan.

    The first ``limit`` requests of an interface in each one-second bin are
    answered; the rest are dropped and counted.  Matching the paper's
    analysis, bins are aligned to whole virtual seconds.
    """

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError("rate limit must be positive")
        self.limit = limit
        self._bins: Dict[int, Tuple[int, int]] = {}
        self.dropped = 0
        self._overprobed: set = set()

    def allow(self, iface: int, now: float) -> bool:
        """Account one ICMP generation request at virtual time ``now``."""
        second = int(now)
        current = self._bins.get(iface)
        if current is None or current[0] != second:
            self._bins[iface] = (second, 1)
            return True
        count = current[1] + 1
        self._bins[iface] = (second, count)
        if count > self.limit:
            self.dropped += 1
            self._overprobed.add(iface)
            return False
        return True

    @property
    def overprobed_interfaces(self) -> frozenset:
        """Interfaces that exceeded the limit in at least one bin."""
        return frozenset(self._overprobed)

    def reset(self) -> None:
        """Clear all dynamic state (between scans)."""
        self._bins.clear()
        self.dropped = 0
        self._overprobed.clear()
