"""Per-interface ICMP rate limiting.

Ravaioli et al. [19] found most routers cap ICMP generation at 500 or fewer
replies per second.  The paper both respects this (its Table 4 methodology
counts an interface as overprobed in any one-second interval in which it is
asked for more responses than the limit) and exploits it as the motivation
for spreading probes.  We implement the same one-second-bin semantics.

``allow`` is on the per-probe hot path (once per responding probe), so the
bookkeeping is two flat ``array('q')`` lookups when the interface count is
known up front: a *stamp* array holding a generation-tagged second and a
*count* array.  The stamp token is ``((generation + 1) << 34) + second`` —
``reset()`` just bumps the generation, instantly invalidating every bin
without touching the arrays (zeroed stamps can never match, since tokens
start at generation 1).  Constructed without ``num_interfaces`` (ad-hoc
uses, unit tests) it falls back to an equivalent dict.
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, Tuple

#: Seconds fit in 34 bits for any plausible virtual clock; the generation
#: lives above them so stamps from before a reset can never collide.
_GENERATION_SHIFT = 34


class IcmpRateLimiter:
    """One-second-bin rate limiter shared by all interfaces of a scan.

    The first ``limit`` requests of an interface in each one-second bin are
    answered; the rest are dropped and counted.  Matching the paper's
    analysis, bins are aligned to whole virtual seconds.
    """

    def __init__(self, limit: int,
                 num_interfaces: Optional[int] = None) -> None:
        if limit <= 0:
            raise ValueError("rate limit must be positive")
        self.limit = limit
        self._generation = 0
        if num_interfaces is not None:
            self._stamp: Optional[array] = array("q", [0]) * num_interfaces
            self._count: Optional[array] = array("q", [0]) * num_interfaces
        else:
            self._stamp = None
            self._count = None
        self._bins: Dict[int, Tuple[int, int]] = {}
        self.dropped = 0
        self._overprobed: set = set()

    def allow(self, iface: int, now: float) -> bool:
        """Account one ICMP generation request at virtual time ``now``."""
        token = ((self._generation + 1) << _GENERATION_SHIFT) + int(now)
        stamp = self._stamp
        if stamp is not None and 0 <= iface < len(stamp):
            if stamp[iface] != token:
                stamp[iface] = token
                self._count[iface] = 1
                return True
            count = self._count[iface] + 1
            self._count[iface] = count
            if count > self.limit:
                self.dropped += 1
                self._overprobed.add(iface)
                return False
            return True
        # Dict fallback: unsized limiter, or interface beyond the hint.
        current = self._bins.get(iface)
        if current is None or current[0] != token:
            self._bins[iface] = (token, 1)
            return True
        count = current[1] + 1
        self._bins[iface] = (token, count)
        if count > self.limit:
            self.dropped += 1
            self._overprobed.add(iface)
            return False
        return True

    @property
    def overprobed_interfaces(self) -> frozenset:
        """Interfaces that exceeded the limit in at least one bin."""
        return frozenset(self._overprobed)

    @property
    def drop_count(self) -> int:
        """Total requests dropped since construction/reset.

        This is the drop signal the adaptive-rate controller
        (:class:`repro.core.resilience.AdaptiveRateController`) samples
        once per round; engines take per-round deltas of it.
        """
        return self.dropped

    def export_bins(self, now: float) -> Dict[str, object]:
        """Serialize the live bins for a checkpoint.

        Only bins still capable of influencing future decisions are
        captured: current-generation bins whose second is >= ``int(now)``
        (older bins can never match again because the clock is
        monotonic).  Seconds are stored generation-free; ``restore_bins``
        re-tags them with the restoring limiter's generation.
        """
        gen_base = (self._generation + 1) << _GENERATION_SHIFT
        horizon = int(now)
        live = []
        stamp = self._stamp
        if stamp is not None:
            count = self._count
            for iface in range(len(stamp)):
                token = stamp[iface]
                if token >= gen_base and token - gen_base >= horizon:
                    live.append([iface, token - gen_base, count[iface]])
        for iface, (token, bin_count) in self._bins.items():
            if token >= gen_base and token - gen_base >= horizon:
                live.append([iface, token - gen_base, bin_count])
        live.sort()
        return {"limit": self.limit, "dropped": self.dropped,
                "overprobed": sorted(self._overprobed), "bins": live}

    def restore_bins(self, state: Dict[str, object]) -> None:
        """Restore counters and live bins from :meth:`export_bins`."""
        self.dropped = state["dropped"]
        self._overprobed = set(state["overprobed"])
        gen_base = (self._generation + 1) << _GENERATION_SHIFT
        stamp = self._stamp
        count = self._count
        for iface, second, bin_count in state["bins"]:
            token = gen_base + second
            if stamp is not None and 0 <= iface < len(stamp):
                stamp[iface] = token
                count[iface] = bin_count
            else:
                self._bins[iface] = (token, bin_count)

    def stats(self) -> Dict[str, int]:
        """Observability counters (folded into ``simnet.ratelimit.*`` by
        :func:`repro.obs.record_network`)."""
        return {"limit": self.limit, "dropped": self.dropped,
                "overprobed_interfaces": len(self._overprobed)}

    def reset(self) -> None:
        """Clear all dynamic state (between scans).

        O(1) for the array bins: bumping the generation changes every
        future stamp token, so stale bins — including a partially filled
        bin mid-second — can never be mistaken for the current one.
        """
        self._generation += 1
        self._bins.clear()
        self.dropped = 0
        self._overprobed.clear()
