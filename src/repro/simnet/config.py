"""Configuration of the simulated Internet.

Every behavioural knob the FlashRoute paper's evaluation depends on is a
field here, with defaults calibrated so that a generated topology shows the
same qualitative structure the paper measured on the real Internet from the
CWRU vantage point: tree-like routes with heavy sharing near the source,
route lengths centred in the mid-teens, sparse destination responsiveness,
spatially correlated hop distances, load-balancer diamonds, silent stretches,
TTL-normalizing middleboxes, and an ICMP rate limit of 500 responses per
second per interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..net.addr import ip_to_int
from .faults import FaultModel


@dataclass
class TopologyConfig:
    """Parameters of the synthetic routed topology.

    The scanned destination space is ``num_prefixes`` contiguous /24 blocks
    starting at ``base_prefix_addr`` (the paper scans all 2^24 /24s; we scan
    a scaled, contiguous slice and keep all algorithms identical).
    """

    #: Number of /24 destination prefixes in the scanned space.
    num_prefixes: int = 4096

    #: First address of the scanned space; must be /24-aligned.
    base_prefix_addr: int = field(default_factory=lambda: ip_to_int("20.0.0.0"))

    #: Seed for the topology generator; everything downstream is
    #: deterministic in this seed.
    seed: int = 20201027  # IMC '20 started Oct 27 2020

    # ------------------------------------------------------------------ #
    # Stub networks
    # ------------------------------------------------------------------ #

    #: Distribution of stub block sizes in /24 units: (size, weight) pairs.
    #: Models stub networks advertising /24 .. /16 blocks; adjacent /24s in
    #: one block share their transit path, which is what makes proximity-span
    #: distance prediction work (paper §3.3.3).
    stub_block_sizes: Tuple[Tuple[int, int], ...] = (
        (1, 12), (2, 12), (4, 16), (8, 18), (16, 16), (32, 12), (64, 8),
        (128, 4), (256, 2),
    )

    #: Host activity is clustered at the stub level (whole networks are
    #: responsive or dark, which is also why measured preprobe distances
    #: cluster in the address space): a stub is "active" with the first
    #: probability; within an active stub each /24 holds active hosts with
    #: the second.  The marginal per-prefix rate is their product (~0.27).
    stub_active_probability: float = 0.32
    prefix_active_within_active_stub: float = 0.85

    #: Given an active prefix, density of active host octets (expected
    #: fraction of the 254 usable addresses that answer UDP:33434).
    host_density: float = 0.135

    #: Per-*stub* distribution of internal (intra-stub) hops behind the
    #: gateway: (hop_count, weight).  All /24s of a stub share this depth —
    #: that uniformity is what makes proximity-span prediction accurate
    #: (Fig. 4) — up to a small per-prefix jitter.
    internal_hops: Tuple[Tuple[int, int], ...] = (
        (0, 14), (1, 18), (2, 22), (3, 18), (4, 14), (5, 9), (6, 5),
    )

    #: Probability that one /24 deviates by +-1 hop from its stub's
    #: interior depth.
    internal_hop_jitter: float = 0.22

    #: Probability that a /24 with interior hops is split across two
    #: last-hop routers (lower/upper host halves).  Two representatives of
    #: the same prefix then see different final hops — the source of the
    #: near-destination divergence in Fig. 8.
    alt_last_hop_probability: float = 0.65

    #: Fraction of stubs whose internal routers never answer (firewalled
    #: interior); creates the "silent tail" routes that make GapLimit matter.
    dark_interior_probability: float = 0.12

    #: Responsiveness of internal (intra-stub) routers in non-dark stubs.
    internal_responsiveness: float = 0.82

    #: Fraction of prefixes holding hosts that answer pings but not UDP
    #: high ports (hitlist candidates invisible to preprobing).
    ping_only_prefix_probability: float = 0.30

    #: Given an active prefix without an in-prefix appliance, probability
    #: that the hitlist's most-ping-responsive pick is also a UDP responder.
    hitlist_prefers_udp_responder: float = 0.30

    #: Probability that a gateway/internal appliance answers UDP:33434
    #: aimed *at itself* with port-unreachable (appliances typically respond
    #: to pings and generate TTL-exceeded but firewall their own UDP high
    #: ports).  Keeps directly measured preprobe distances from being
    #: dominated by uniformly spread gateways.
    appliance_udp_unreachable: float = 0.20

    #: Fraction of stubs that forward packets for unassigned addresses along
    #: a default route back to the ISP, creating a forwarding loop
    #: (paper §5.1 measures 1.7 % of such routes containing loops).
    default_route_loop_probability: float = 0.02

    #: Fraction of stubs fronted by a TTL-normalizing middlebox
    #: (paper §3.3.2, Fig. 3: ~3.3 % of one-probe distance measurements are
    #: off by more than one hop).
    ttl_reset_middlebox_probability: float = 0.033

    #: TTL value such middleboxes raise low incoming TTLs to.
    ttl_reset_value: int = 30

    #: Fraction of stubs fronted by a destination-rewriting middlebox
    #: (paper §5.3 observes 0.007–0.054 % of responses with a mismatched
    #: quoted destination).
    rewrite_middlebox_probability: float = 0.012

    #: Fraction of stubs that answer unassigned addresses with ICMP
    #: host-unreachable from the gateway instead of silence.
    host_unreachable_probability: float = 0.05

    #: Probability that an active host answers a TCP-ACK probe with a RST
    #: (lower than UDP responsiveness; UDP probing discovers more, §4.2.1).
    host_tcp_rst: float = 0.75

    #: Fraction of destinations whose route length flaps by one hop over
    #: time (route dynamicity; the paper attributes most ±1-hop distance
    #: discrepancies to it, Fig. 3).
    route_flap_probability: float = 0.14

    # ------------------------------------------------------------------ #
    # Core / transit tree
    # ------------------------------------------------------------------ #

    #: Target depth (TTL of the stub gateway) distribution: (depth, weight).
    #: Centred in the mid-teens with a tail beyond 20, matching typical
    #: vantage-point distance distributions; the tail is what differentiates
    #: split-TTL 16 from 32.
    gateway_depth_weights: Tuple[Tuple[int, int], ...] = (
        (8, 1), (9, 2), (10, 3), (11, 5), (12, 7), (13, 9), (14, 11),
        (15, 12), (16, 11), (17, 10), (18, 9), (19, 8), (20, 7), (21, 6),
        (22, 5), (23, 4), (24, 3), (25, 2), (26, 2), (27, 1), (28, 1),
        (30, 1),
    )

    #: Probability of branching to a brand-new child while walking the core
    #: tree at depth ``d`` is ``min(1, branch_base + (d / branch_depth_scale)
    #: ** branch_exponent)``: tiny near the root (heavy path sharing, the
    #: Doubletree premise), exploding toward the edge, where most *unique*
    #: interfaces therefore live — which is what makes Yarrp-16's fill mode
    #: lose a large share of them (§4.2.1).
    branch_base: float = 0.02
    branch_depth_scale: float = 22.0
    branch_exponent: float = 3.0

    #: Fraction of core routers that answer UDP probes with TTL-exceeded.
    core_udp_responsiveness: float = 0.88

    #: Routers within this many hops of the vantage point respond at the
    #: higher near-core rate and never sit in silent tunnels: the campus /
    #: regional first hops answer reliably, and at small simulation scales a
    #: single silent funnel node would otherwise distort every backward
    #: probing comparison.
    near_core_depth: int = 6
    near_core_responsiveness: float = 0.97

    #: Transit routers at or beyond this depth respond at the lower rate:
    #: metro/last-mile segments are markedly less responsive than the core.
    #: This is the main reason Yarrp-16's fill mode (inherent gap limit 1)
    #: loses so many of the deep interfaces that FlashRoute's GapLimit-5
    #: forward probing still reaches.
    deep_responsiveness_knee: int = 14
    deep_udp_responsiveness: float = 0.60

    #: Additional fraction of the UDP-responsive routers that ignore TCP
    #: probes (UDP discovers more interfaces, paper §4.2.1 / [16]).
    tcp_silent_extra: float = 0.035

    #: Probability that a newly created transit router starts an MPLS-like
    #: silent tunnel, and the tunnel length distribution.  Correlated silent
    #: runs are what give the GapLimit curve (Fig. 6) its knee at 5.
    silent_run_probability: float = 0.105
    silent_run_lengths: Tuple[Tuple[int, int], ...] = (
        (1, 28), (2, 26), (3, 20), (4, 13), (5, 8), (6, 4), (8, 1),
    )

    #: Fraction of transit routers that are per-flow load balancers, and the
    #: number of parallel branches in each diamond.
    load_balancer_probability: float = 0.09
    load_balancer_branches: Tuple[Tuple[int, int], ...] = ((2, 60), (3, 30), (4, 10))

    #: Diamonds span several hops (MDA studies find multi-level diamonds
    #: common); distribution of the diamond depth in hops.
    load_balancer_depths: Tuple[Tuple[int, int], ...] = ((1, 40), (2, 35), (3, 25))

    #: First address of the infrastructure (router interface) space; kept
    #: disjoint from the scanned destination space.
    infrastructure_base_addr: int = field(
        default_factory=lambda: ip_to_int("60.0.0.0"))

    # ------------------------------------------------------------------ #
    # Dynamics
    # ------------------------------------------------------------------ #

    #: ICMP responses allowed per interface per one-second bin
    #: (paper §4.2.2, upper bound from [19]).
    icmp_rate_limit: int = 500

    #: One-way per-hop latency in seconds, and jitter span.
    hop_latency: float = 0.002
    latency_jitter: float = 0.004

    #: Seconds per route-dynamics epoch (flappy routes change length when
    #: the epoch counter changes parity).  Long enough that most routes are
    #: stable within one scan — churn acts mainly *between* measurement
    #: passes, as in the paper's Fig. 3 comparison.
    flap_epoch_seconds: float = 1800.0

    #: Injected faults (probe/response loss, reordering, duplicates,
    #: blackouts); the default model injects nothing.  Seeded independently
    #: of the topology seed so one topology can be scanned under many fault
    #: draws.  A :class:`~repro.simnet.network.SimulatedNetwork` can also
    #: override this per-instance via its ``faults=`` argument.
    faults: FaultModel = field(default_factory=FaultModel)

    def __post_init__(self) -> None:
        if self.num_prefixes <= 0:
            raise ValueError("num_prefixes must be positive")
        if self.base_prefix_addr & 0xFF:
            raise ValueError("base_prefix_addr must be /24-aligned")
        if self.base_prefix_addr // 256 + self.num_prefixes > 2**24:
            raise ValueError("scanned space extends past the IPv4 space")
        overlap_start = self.infrastructure_base_addr
        scan_end = self.base_prefix_addr + self.num_prefixes * 256
        if self.base_prefix_addr <= overlap_start < scan_end:
            raise ValueError("infrastructure space overlaps the scanned space")
        if not 0 < self.icmp_rate_limit:
            raise ValueError("icmp_rate_limit must be positive")


def weighted_choice(rng, pairs: Tuple[Tuple[int, int], ...]) -> int:
    """Draw from a ``(value, weight)`` table using ``rng``."""
    total = sum(weight for _value, weight in pairs)
    point = rng.random() * total
    acc = 0.0
    for value, weight in pairs:
        acc += weight
        if point < acc:
            return value
    return pairs[-1][0]


def scaled_probing_rate(num_prefixes: int, paper_rate: float = 100_000.0,
                        paper_prefixes: int = 2**24) -> float:
    """Scale the paper's probing rate to a smaller scanned space.

    The paper probes 100 Kpps against ~2^24 /24s; virtual scan *times* keep
    the paper's ratios when the rate shrinks with the address space.  A floor
    keeps round pacing from degenerating on tiny test topologies.
    """
    rate = paper_rate * num_prefixes / paper_prefixes
    return max(rate, 1.0)


#: Named scenario presets used by the experiment drivers.
SCENARIOS: Dict[str, TopologyConfig] = {
    "tiny": TopologyConfig(num_prefixes=256, seed=7),
    "small": TopologyConfig(num_prefixes=1024, seed=11),
    "default": TopologyConfig(num_prefixes=4096, seed=20201027),
    "bench": TopologyConfig(num_prefixes=8192, seed=20201027),
}
