"""Static entities of the simulated topology.

The topology is stored in flat, index-addressed structures (parallel lists
keyed by interface id, stub id and scanned-prefix offset) rather than object
graphs: a scan resolves one hop per probe on its hot path, and the paper's
experiments issue hundreds of thousands of probes per run.

Hop tokens
----------
A transit path is a tuple of *hop tokens*.  A token ``>= 0`` is an interface
id; a token ``< 0`` encodes a load-balancer diamond: group id ``-(token + 1)``
whose member interface is selected per flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple


#: Maximum depth (hop count) of a load-balancer diamond; bounds the token
#: encoding below.
MAX_DIAMOND_DEPTH = 8


def lb_token(group_id: int, offset: int = 0) -> int:
    """Encode a (diamond id, hop offset within the diamond) as a negative
    hop token.  Real per-flow diamonds span several hops; every hop level of
    the diamond carries its own token."""
    if not 0 <= offset < MAX_DIAMOND_DEPTH:
        raise ValueError(f"diamond offset out of range: {offset}")
    return -(group_id * MAX_DIAMOND_DEPTH + offset + 1)


def lb_group_id(token: int) -> int:
    """Decode a negative hop token back into a load-balancer group id."""
    if token >= 0:
        raise ValueError(f"{token} is a plain interface token")
    return (-token - 1) // MAX_DIAMOND_DEPTH


def lb_offset(token: int) -> int:
    """Decode the hop offset within the diamond from a negative token."""
    if token >= 0:
        raise ValueError(f"{token} is a plain interface token")
    return (-token - 1) % MAX_DIAMOND_DEPTH


@dataclass
class Stub:
    """A stub network owning a contiguous run of /24 prefixes.

    ``transit`` holds the hop tokens at TTL ``1 .. len(transit)``; the
    gateway interface sits at TTL ``len(transit) + 1``.
    """

    __slots__ = ("stub_id", "first_offset", "block_size", "transit",
                 "gateway_iface", "gateway_depth", "dark_interior",
                 "loop_unassigned", "ttl_reset", "rewrite",
                 "host_unreachable")

    stub_id: int
    first_offset: int
    block_size: int
    transit: Tuple[int, ...]
    gateway_iface: int
    gateway_depth: int
    dark_interior: bool
    loop_unassigned: bool
    ttl_reset: bool
    rewrite: bool
    host_unreachable: bool


class PrefixInfo:
    """Per-/24 state: which stub it belongs to, its interior, its hosts.

    Attributes:
        stub_id: owning stub.
        internal_ifaces: interface ids of intra-stub routers at depths
            ``gateway_depth + 1 .. gateway_depth + k`` traversed by packets
            to this prefix's ordinary hosts.
        active_hosts: host octets that answer UDP high-port probes with
            ICMP port-unreachable.
        ping_hosts: host octets that answer pings but not UDP (hitlist
            candidates that look dead to FlashRoute's preprobing).
        special_hosts: host octet -> interface id for router interfaces
            whose address lives inside this prefix (the stub gateway and
            this prefix's internal routers).
        flap: whether routes to this prefix gain a silent hop in odd
            route-dynamics epochs.
        hitlist_host: host octet the synthesized ISI-style hitlist lists for
            this prefix (always set; may be unresponsive).
    """

    __slots__ = ("stub_id", "internal_ifaces", "active_hosts", "ping_hosts",
                 "special_hosts", "flap", "hitlist_host", "alt_last_hop")

    def __init__(self, stub_id: int, internal_ifaces: Tuple[int, ...],
                 active_hosts: FrozenSet[int], ping_hosts: FrozenSet[int],
                 special_hosts: Dict[int, int], flap: bool,
                 hitlist_host: int = 0, alt_last_hop: int = -1) -> None:
        self.stub_id = stub_id
        self.internal_ifaces = internal_ifaces
        self.active_hosts = active_hosts
        self.ping_hosts = ping_hosts
        self.special_hosts = special_hosts
        self.flap = flap
        self.hitlist_host = hitlist_host
        #: Interface id of a second last-hop router serving the upper half
        #: of the /24's host space (VLAN split), or -1.  Different
        #: addresses of one prefix can therefore sit behind different
        #: last-hop routers — the source of the near-destination
        #: interface-set divergence in the paper's Fig. 8.
        self.alt_last_hop = alt_last_hop


class HopKind(enum.Enum):
    """What a probe with a given (destination, TTL, flow) hits."""

    #: Expired at a router; ``iface`` identifies it (it may still stay
    #: silent if the interface is unresponsive or rate limited).
    ROUTER = "router"
    #: Reached the destination, which answers (port unreachable / RST).
    DESTINATION = "destination"
    #: Reached a gateway that answers host-unreachable for an unassigned
    #: address.
    GATEWAY_UNREACHABLE = "gateway_unreachable"
    #: Expired inside a forwarding loop between the stub and its ISP.
    LOOP_ROUTER = "loop_router"
    #: Fell off the route (beyond an unassigned destination's drop point, or
    #: past a TTL-normalizing middlebox); nothing will ever answer.
    VOID = "void"


@dataclass
class HopResult:
    """Ground-truth outcome of one probe, before responsiveness filters.

    ``residual_ttl`` is only meaningful for destination-reaching kinds: the
    TTL the probe carried on arrival (after any middlebox normalization),
    which is what gets quoted back and drives the one-probe distance
    measurement.
    """

    __slots__ = ("kind", "iface", "residual_ttl", "dest_depth")

    kind: HopKind
    iface: int
    residual_ttl: int
    dest_depth: int

    def __init__(self, kind: HopKind, iface: int = -1, residual_ttl: int = 0,
                 dest_depth: int = 0) -> None:
        self.kind = kind
        self.iface = iface
        self.residual_ttl = residual_ttl
        self.dest_depth = dest_depth


#: Singleton for the common silent outcome, to avoid allocating on misses.
VOID_HOP = HopResult(HopKind.VOID)
