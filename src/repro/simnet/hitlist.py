"""Synthetic ISI Census hitlist with the bias the paper uncovers (§5.1).

The real hitlist [18] records, for every routable /24, the address most
responsive to ICMP pings over a long-running census.  The paper's finding is
that those addresses skew toward gateway appliances at the entrance of stub
networks, so tracerouting them measures shorter routes and misses interior
interfaces.  We synthesize a hitlist with exactly that selection behaviour:

1. if the stub's gateway appliance lives in the prefix and responds, pick it;
2. else if the prefix holds an in-prefix internal router that responds and is
   "appliance-like" (the shallowest one), sometimes pick it;
3. else pick among the prefix's ping-responsive hosts — which only sometimes
   coincide with the hosts that answer UDP probes;
4. else pick a stable pseudo-random (dead) address, since the census always
   lists something for a routable prefix.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .topology import Topology


def synthesize_hitlist(topology: "Topology", rng: random.Random) -> None:
    """Fill ``hitlist_host`` on every prefix record of ``topology``."""
    cfg = topology.config
    for record in topology.prefixes:
        stub = topology.stubs[record.stub_id]
        pick = None

        gateway_octet = None
        appliance_octets: List[int] = []
        for octet, iface in record.special_hosts.items():
            if iface == stub.gateway_iface:
                gateway_octet = octet
            else:
                appliance_octets.append(octet)

        if gateway_octet is not None and topology.udp_resp[stub.gateway_iface]:
            pick = gateway_octet
        elif appliance_octets and rng.random() < 0.45:
            responsive = [octet for octet in sorted(appliance_octets)
                          if topology.udp_resp[record.special_hosts[octet]]]
            if responsive:
                pick = responsive[0]
        if pick is None and record.active_hosts:
            if rng.random() < cfg.hitlist_prefers_udp_responder:
                pick = min(record.active_hosts)
        if pick is None and record.ping_hosts:
            pick = min(record.ping_hosts)
        if pick is None:
            pick = rng.randrange(2, 250)
        record.hitlist_host = pick


def hitlist_addresses(topology: "Topology") -> Dict[int, int]:
    """Map of /24 prefix index -> the synthesized hitlist address."""
    result: Dict[int, int] = {}
    for offset, record in enumerate(topology.prefixes):
        prefix_index = topology.base_prefix + offset
        result[prefix_index] = (prefix_index << 8) | record.hitlist_host
    return result
