"""Virtual-time machinery shared by all probing engines.

The paper's tools decouple probe sending from response receiving with
threads.  We reproduce the same information flow deterministically: a
:class:`VirtualClock` advances as probes are emitted (spaced ``1/pps``
apart), responses are scheduled on a :class:`ResponseQueue` at their
computed arrival times, and each engine drains the queue up to the current
virtual time before taking its next scheduling decision — exactly the
feedback a receiving thread could have delivered by then, no more.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Iterable, Iterator, List, Optional, Tuple

from ..net.icmp import IcmpResponse


class VirtualClock:
    """A monotonically advancing virtual time in seconds."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += seconds
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Move to ``timestamp`` if it is in the future; never rewinds."""
        if timestamp > self.now:
            self.now = timestamp
        return self.now


class ResponseQueue:
    """Min-heap of in-flight responses ordered by arrival time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, IcmpResponse]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, response: IcmpResponse) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (response.arrival_time, self._seq, response))
        # An injected duplicate (repro.simnet.faults) rides chained on its
        # original; deliver it as an independent arrival.  getattr: the v6
        # layer pushes its own response type, which carries no fault slots.
        dup = getattr(response, "dup", None)
        if dup is not None:
            self._seq += 1
            heapq.heappush(self._heap, (dup.arrival_time, self._seq, dup))

    def push_many(self, responses: Iterable[Optional[IcmpResponse]]) -> None:
        """Push a batch, skipping ``None`` slots — accepts the result of
        ``SimulatedNetwork.send_probes`` directly.  Arrival-time ties keep
        send order, same as pushing one by one.  Chained duplicate
        responses are unrolled into their own heap entries."""
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        for response in responses:
            if response is not None:
                seq += 1
                push(heap, (response.arrival_time, seq, response))
                dup = getattr(response, "dup", None)
                if dup is not None:
                    seq += 1
                    push(heap, (dup.arrival_time, seq, dup))
        self._seq = seq

    def pop_until(self, timestamp: float) -> Iterator[IcmpResponse]:
        """Yield responses whose arrival time is <= ``timestamp``, in order."""
        heap = self._heap
        while heap and heap[0][0] <= timestamp:
            yield heapq.heappop(heap)[2]

    def drain(self) -> Iterator[IcmpResponse]:
        """Yield every remaining response in arrival order."""
        heap = self._heap
        while heap:
            yield heapq.heappop(heap)[2]

    def snapshot(self) -> List[IcmpResponse]:
        """Non-destructive view of the in-flight responses in pop order.

        Used by checkpointing: the heap is *not* drained, and because
        every injected duplicate was already unrolled into its own heap
        entry at push time, the snapshot lists each delivery exactly
        once (chained ``dup`` references on originals are ignored).
        """
        return [entry[2] for entry in sorted(self._heap)]

    def load(self, responses: Iterable[IcmpResponse]) -> None:
        """Rebuild the queue from a :meth:`snapshot` (checkpoint resume).

        Responses are pushed raw, *without* duplicate unrolling — the
        snapshot already lists duplicates as independent entries — and in
        snapshot order, so arrival-time ties replay identically.
        """
        self._heap = []
        self._seq = 0
        heap = self._heap
        for response in responses:
            self._seq += 1
            heapq.heappush(heap, (response.arrival_time, self._seq, response))


class ProbeLog:
    """Compact append-only log of (send_time, destination, ttl) triples.

    Table 4's intrusiveness methodology replays each tool's real probe
    timeline against an independently discovered topology; a full /24-scan
    log holds millions of entries, so destinations and TTLs are packed into
    one unsigned 64-bit array instead of tuples.
    """

    def __init__(self) -> None:
        self._times = array("d")
        self._packed = array("Q")

    def __len__(self) -> int:
        return len(self._times)

    def append(self, send_time: float, dst: int, ttl: int) -> None:
        self._times.append(send_time)
        self._packed.append((dst << 8) | (ttl & 0xFF))

    def __iter__(self) -> Iterator[Tuple[float, int, int]]:
        for send_time, packed in zip(self._times, self._packed):
            yield send_time, packed >> 8, packed & 0xFF
