"""Flat route-resolution cache: the simulator's probe fast path.

Every probing engine funnels through ``SimulatedNetwork.send_probe`` →
``Topology.hop_at``, and a full scan probes each destination ~15–32 times
with an identical ``(prefix, flow, epoch)`` key — so re-resolving the
prefix record, stub, flap shift and load-balancer tokens per probe is
almost entirely redundant work.  Yarrp (Beverly, IMC 2016) and Doubletree
both hinge on keeping per-probe cost O(1) and tiny; this module gives the
simulator the same discipline.

On first touch of a key the cache resolves the *full hop vector* once —
one :class:`~repro.simnet.entities.HopResult` per TTL ``1..ROUTE_CACHE_TTLS``,
built by the exact same code path :meth:`Topology.hop_at` uses
(:meth:`Topology._resolved_hop`) so cached and uncached answers agree by
construction — and stores it as a flat, index-addressed table.  ``hop_at``
then serves every subsequent query for that key with a dict probe plus a
list index, returning the *pre-built* ``HopResult`` objects (the silent
outcome is the shared ``VOID_HOP`` singleton), i.e. zero allocations.

For ``send_probe`` the cache goes further: per probe protocol it derives
an *outcome table* that folds in every send-time-independent decision of
the response path — interface responsiveness, the responder's and quoted
addresses (middlebox rewrite applied), which interface is charged against
the ICMP rate limiter, the one-way and round-trip delays (jitter is keyed
on probe identity, so it is per-slot constant), and the quoted residual
TTL.  A probe that will never be answered costs one dict probe plus a
list index; a responding probe additionally pays only rate limiting and
the construction of its response object.

Cache keys and epoch-awareness
------------------------------
Hop vectors are stored under the *normalized* key
``(dst, flow-class, flap-shift)``:

* ``flow`` only influences routing through per-flow load-balancer
  diamonds, so stubs whose transit contains no diamond collapse every flow
  to class 0 (one shared vector per destination);
* route-flap epochs are folded to their observable effect — the 0/1 silent
  hop shift — so a flappy prefix owns exactly two vectors and an epoch
  change *invalidates by key*, never by flushing.

The per-protocol outcome tables (the ``send_probe`` hot path) are keyed
``(dst, flow, epoch & 1)`` *without* normalization: deriving the
flow-class or the flap flag would itself cost a prefix-record lookup per
probe.  The parity bit is a conservative over-split — a non-flappy
destination probed in both parities builds the same table twice — but a
real scan touches each destination with one flow and (at 100 Kpps) one or
two epochs, so the working set stays ~one table per destination while the
lookup is a single dict probe.

The cache is a pure function of the immutable :class:`Topology`; it is
safe to share across scans and never needs invalidation beyond the epoch
key.  ``SimulatedNetwork(use_route_cache=False)`` (or the
``--no-route-cache`` CLI flag / ``FlashRouteConfig.route_cache``) bypasses
it entirely for A/B experiments and debugging.

Fault injection (:mod:`repro.simnet.faults`) never touches the cache:
outcome tables stay fault-free, and ``SimulatedNetwork`` applies the
fault filter *after* the lookup, to the response the table produced.
Fault decisions are stateless hashes of probe identity, so cached and
uncached serving modes see identical fault sequences for a given seed
and the tables remain shareable across fault models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..net.icmp import ResponseKind
from ..net.packets import PROTO_TCP
from .entities import VOID_HOP, HopResult
from .latency import LatencyModel
from .latency import _HASH_MULT as _JITTER_TTL_MULT
from .latency import _JITTER_INC, _JITTER_MULT
from .topology import Topology

#: TTLs materialized per cache entry: the 5-bit probe encoding bounds
#: probed TTLs to 1..32.  Larger TTLs fall back to the uncached path.
ROUTE_CACHE_TTLS = 32

_HOST_HASH_MULT = 2654435761


def host_answers_tcp(dst: int, host_tcp_rst: float) -> bool:
    """Deterministic per-host coin flip: does ``dst`` answer TCP-ACK with a
    RST?  (Shared with the uncached ``SimulatedNetwork`` path.)"""
    digest = ((dst * _HOST_HASH_MULT) >> 13) & 0xFFFF
    return digest / 65536.0 < host_tcp_rst


def rewritten_dst(dst: int) -> int:
    """Destination as rewritten by a stub's middlebox (same /24, different
    host octet, so the checksum-derived source port no longer matches,
    paper §5.3).  Shared with the uncached path."""
    return (dst & 0xFFFFFF00) | ((dst + 97) & 0xFF)


#: One slot of a per-protocol outcome table, or ``None`` for silence:
#: (response kind, responder address, rate-limited interface id or -1,
#:  one-way delay, round-trip delay, quoted residual TTL, quoted
#:  destination address, middlebox-rewrite flag).  Slots in the at/past-
#: destination region hold a shared :class:`LazyDest` placeholder until
#: their first probe realizes (and memoizes) the concrete tuple.
Outcome = Optional[Tuple[ResponseKind, int, int, float, float, int, int,
                         bool]]

#: Shared all-silent table served for destinations outside the scanned
#: space (the uncached path returns ``None`` for them too).  A tuple, so
#: sharing one instance across keys is mutation-safe.
SILENT_TABLE: Sequence[Outcome] = (None,) * ROUTE_CACHE_TTLS


class _RouteEntry:
    """The materialized hop vector for one ``(dst, flow-class, shift)``."""

    __slots__ = ("hops",)

    def __init__(self, hops: Tuple[HopResult, ...]) -> None:
        #: Flat per-TTL table: ``hops[ttl - 1]`` is the ground-truth
        #: :class:`HopResult` (``VOID_HOP`` singleton for silence).
        self.hops = hops


class LazyDest:
    """Placeholder for the at/past-destination region of an outcome table.

    Once a probe's TTL reaches the destination, every higher TTL yields the
    same response except for the residual TTL and the per-TTL jitter — yet
    the region spans up to half the table while a scan typically probes
    only a few of its slots (the preprobe TTL and the first hits past the
    destination).  So the builder drops one shared ``LazyDest`` into all of
    the region's slots, and the network realizes the concrete outcome tuple
    per slot on first probe, memoizing it back into the (mutable) table.
    """

    __slots__ = ("kind", "dst", "iface", "ow_base", "rt_base", "dest_depth",
                 "quoted_dst", "rewrite", "jit", "half_span", "span")

    def __init__(self, kind: ResponseKind, dst: int, iface: int,
                 ow_base: float, rt_base: float, dest_depth: int,
                 quoted_dst: int, rewrite: bool, jit: int,
                 half_span: float, span: float) -> None:
        self.kind = kind
        self.dst = dst
        self.iface = iface
        self.ow_base = ow_base
        self.rt_base = rt_base
        self.dest_depth = dest_depth
        self.quoted_dst = quoted_dst
        self.rewrite = rewrite
        self.jit = jit
        self.half_span = half_span
        self.span = span

    def realize(self, ttl: int) -> Tuple:
        """The concrete outcome tuple for one TTL of the region."""
        h = self.jit + ttl * _JITTER_TTL_MULT
        return (self.kind, self.dst, self.iface,
                self.ow_base + self.half_span
                * (((h >> 8) & 0xFFFF) / 65536.0),
                self.rt_base + self.span
                * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                ttl - self.dest_depth + 1, self.quoted_dst, self.rewrite)


class RouteCache:
    """Memoized flat route tables over an immutable :class:`Topology`.

    ``udp_tables``/``tcp_tables`` are deliberately public plain dicts:
    ``SimulatedNetwork`` keeps direct references and probes them inline,
    calling back into :meth:`outcome_table` only on a miss.
    """

    __slots__ = ("_topology", "_latency", "_entries", "_stub_has_lb",
                 "_host_tcp_rst", "_transit_templates", "udp_tables",
                 "tcp_tables", "hits", "misses")

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        cfg = topology.config
        #: Same parameters as the network's model -> identical floats.
        self._latency = LatencyModel(cfg.hop_latency, cfg.latency_jitter)
        self._entries: Dict[Tuple[int, int, int], _RouteEntry] = {}
        #: Flow only matters when the stub's transit contains a diamond.
        self._stub_has_lb = tuple(
            any(token < 0 for token in stub.transit)
            for stub in topology.stubs)
        self._host_tcp_rst = cfg.host_tcp_rst
        #: stub_id -> (transit ifaces with LB slots as -1, LB slot
        #: indices).  Only load-balancer tokens depend on the flow, so the
        #: rest of a stub's transit resolves once, not once per destination.
        self._transit_templates: Dict[
            int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        #: (dst, flow, epoch & 1) -> outcome table, per probe protocol.
        self.udp_tables: Dict[Tuple[int, int, int],
                              Sequence[Outcome]] = {}
        self.tcp_tables: Dict[Tuple[int, int, int],
                              Sequence[Outcome]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def topology(self) -> Topology:
        return self._topology

    def stats(self) -> Dict[str, int]:
        """Cache effectiveness counters (for benchmarks and reports).

        ``hits``/``misses`` count at *table* granularity on the hot path:
        a miss per outcome-table build, a hit per lookup served from an
        already-built table.  The engines' last-key memo skips the lookup
        entirely for back-to-back probes of one destination, so hits
        undercount raw probes by design — the cheap path is not charged
        for its own accounting."""
        return {"entries": len(self._entries),
                "udp_tables": len(self.udp_tables),
                "tcp_tables": len(self.tcp_tables),
                "hits": self.hits, "misses": self.misses}

    def clear(self) -> None:
        """Drop all entries (memory pressure valve; never required for
        correctness — epochs invalidate via the key)."""
        self._entries.clear()
        self._transit_templates.clear()
        self.udp_tables.clear()
        self.tcp_tables.clear()

    # ------------------------------------------------------------------ #
    # Hop vectors
    # ------------------------------------------------------------------ #

    def _entry(self, dst: int, flow: int, epoch: int) -> Optional[_RouteEntry]:
        """The hop-vector entry for a scanned destination, or ``None`` when
        ``dst`` lies outside the scanned space."""
        topo = self._topology
        offset = (dst >> 8) - topo.base_prefix
        if offset < 0 or offset >= topo.num_prefixes:
            return None
        record = topo.prefixes[offset]
        shift = 1 if (record.flap and (epoch & 1)) else 0
        flow_class = flow if self._stub_has_lb[record.stub_id] else 0
        key = (dst, flow_class, shift)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        stub = topo.stubs[record.stub_id]
        octet = dst & 0xFF
        dest_depth, assigned = topo._destination_depth(record, stub, octet,
                                                       shift)
        resolved = topo._resolved_hop
        entry = _RouteEntry(tuple(
            resolved(record, stub, octet, shift, dest_depth, assigned,
                     ttl, flow)
            for ttl in range(1, ROUTE_CACHE_TTLS + 1)))
        self._entries[key] = entry
        return entry

    def hop_at(self, dst: int, ttl: int, flow: int = 0,
               epoch: int = 0) -> HopResult:
        """Drop-in for :meth:`Topology.hop_at`, served from the flat
        tables (allocation-free after the first touch of a key)."""
        if ttl < 1:
            return VOID_HOP
        if ttl > ROUTE_CACHE_TTLS:
            return self._topology.hop_at(dst, ttl, flow=flow, epoch=epoch)
        entry = self._entry(dst, flow, epoch)
        if entry is None:
            return VOID_HOP
        return entry.hops[ttl - 1]

    # ------------------------------------------------------------------ #
    # Outcome tables (the send_probe fast path)
    # ------------------------------------------------------------------ #

    def outcome_table(self, dst: int, flow: int, parity: int,
                      proto: int) -> Sequence[Outcome]:
        """Build, store and return the outcome table for one hot-path key
        ``(dst, flow, parity)``.  Called by the network on a table miss.

        This is a *fused* single pass over the route structure: it walks
        transit → gateway → interior → destination directly (the same
        branch order as :meth:`Topology._resolved_hop`) and folds in
        responsiveness, addresses, rate-limiter charging, latency and
        middlebox rewriting slot by slot, without materializing
        intermediate :class:`HopResult` objects.  Delays are per-slot
        constants because the jitter is keyed on probe identity
        ``(dst, ttl)``, which the slot fixes; the inlined arithmetic below
        reproduces :class:`LatencyModel`'s expressions operation-for-
        operation, so the floats are bit-identical to the uncached path's.
        The equivalence tests compare both paths probe-for-probe and
        scan-for-scan.
        """
        self.misses += 1
        tables = self.tcp_tables if proto == PROTO_TCP else self.udp_tables
        topo = self._topology
        offset = (dst >> 8) - topo.base_prefix
        if offset < 0 or offset >= topo.num_prefixes:
            # Epoch-independent: serve both parities from the one table.
            tables[(dst, flow, 0)] = SILENT_TABLE
            tables[(dst, flow, 1)] = SILENT_TABLE
            return SILENT_TABLE
        record = topo.prefixes[offset]
        stub = topo.stubs[record.stub_id]
        shift = 1 if (record.flap and parity) else 0
        octet = dst & 0xFF
        dest_depth, assigned = topo._destination_depth(record, stub, octet,
                                                       shift)
        tcp = proto == PROTO_TCP
        resp = topo.tcp_resp if tcp else topo.udp_resp
        iface_addrs = topo.iface_addrs
        rewrite = stub.rewrite
        quoted_dst = rewritten_dst(dst) if rewrite else dst
        stub_id = record.stub_id
        template = self._transit_templates.get(stub_id)
        if template is None:
            tokens = stub.transit
            lb_slots = tuple(i for i, token in enumerate(tokens)
                             if token < 0)
            template = (tuple(token if token >= 0 else -1
                              for token in tokens), lb_slots)
            self._transit_templates[stub_id] = template
        transit, lb_slots = template
        if lb_slots:
            # Per-flow fix-up of just the load-balancer slots.
            resolve = topo.resolve_token
            tokens = stub.transit
            patched = list(transit)
            for i in lb_slots:
                patched[i] = resolve(tokens[i], flow)
            transit = patched
        transit_len = len(transit)
        gateway_depth = stub.gateway_depth + shift
        gateway_iface = stub.gateway_iface
        internals = record.internal_ifaces
        num_internals = len(internals)
        special_hosts = record.special_hosts
        if tcp:
            dest_silent = not host_answers_tcp(dst, self._host_tcp_rst)
            dest_kind = ResponseKind.TCP_RST
        else:
            dest_silent = False
            dest_kind = ResponseKind.PORT_UNREACHABLE
        ttl_exceeded = ResponseKind.TTL_EXCEEDED

        # Inlined LatencyModel.one_way/round_trip: base tables indexed by
        # depth plus the jitter hash with the dst term folded into `jit`
        # (integer addition is exact, so the floats are unchanged).
        latency = self._latency
        ow_base = latency._one_way_base
        rt_base = latency._round_trip_base
        half_span = latency._half_span
        span = latency.jitter_span
        jit = dst * _JITTER_MULT + _JITTER_INC
        # Destination delays vary only through the per-TTL jitter; the
        # depth-indexed bases are loop constants.
        dest_ow_base = (ow_base[dest_depth] if dest_depth < len(ow_base)
                        else latency.hop_latency * dest_depth)
        dest_rt_base = (rt_base[dest_depth] if dest_depth < len(rt_base)
                        else (2.0 * latency.hop_latency) * dest_depth)

        # The TTL axis partitions into contiguous segments (transit →
        # silent gap → gateway → interior → at/past destination), so
        # instead of a per-slot branch cascade the table starts all-silent
        # and each segment's loop fills only its responsive slots.  The
        # segment boundaries reproduce :meth:`Topology._resolved_hop`'s
        # branch priority: transit wins below ``transit_len``, the gateway
        # slot only exists above it, everything beyond starts after both.
        table: List[Outcome] = [None] * ROUTE_CACHE_TTLS

        # Transit routers: depth == ttl.
        for ttl in range(1, min(transit_len, ROUTE_CACHE_TTLS) + 1):
            iface = transit[ttl - 1]
            if resp[iface]:
                h = jit + ttl * _JITTER_TTL_MULT
                table[ttl - 1] = (
                    ttl_exceeded, iface_addrs[iface], iface,
                    ow_base[ttl] + half_span
                    * (((h >> 8) & 0xFFFF) / 65536.0),
                    rt_base[ttl] + span
                    * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                    1, dst, False)

        # The gateway slot (the flap-inserted gap below it stays silent).
        if transit_len < gateway_depth <= ROUTE_CACHE_TTLS:
            ttl = gateway_depth
            h = jit + ttl * _JITTER_TTL_MULT
            if dest_depth == gateway_depth:
                # The gateway itself is the destination: delivered, not
                # expired.
                if assigned and not dest_silent:
                    table[ttl - 1] = (
                        dest_kind, dst, gateway_iface,
                        dest_ow_base + half_span
                        * (((h >> 8) & 0xFFFF) / 65536.0),
                        dest_rt_base + span
                        * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                        1, quoted_dst, rewrite)
            elif resp[gateway_iface]:
                table[ttl - 1] = (
                    ttl_exceeded, iface_addrs[gateway_iface], gateway_iface,
                    ow_base[ttl] + half_span
                    * (((h >> 8) & 0xFFFF) / 65536.0),
                    rt_base[ttl] + span
                    * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                    1, dst, False)

        beyond = max(transit_len, gateway_depth) + 1

        if stub.ttl_reset:
            # TTL-normalizing middlebox: everything that crosses the
            # gateway is delivered; no limiter (no router expiry).
            if assigned and not dest_silent:
                reset_value = topo.config.ttl_reset_value
                interior_len = dest_depth - gateway_depth - 1
                for ttl in range(beyond, ROUTE_CACHE_TTLS + 1):
                    residual = max(ttl - gateway_depth, reset_value) \
                        - interior_len
                    h = jit + ttl * _JITTER_TTL_MULT
                    table[ttl - 1] = (
                        dest_kind, dst, -1,
                        dest_ow_base + half_span
                        * (((h >> 8) & 0xFFFF) / 65536.0),
                        dest_rt_base + span
                        * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                        max(residual, 1), quoted_dst, rewrite)
            result: Sequence[Outcome] = table
            tables[(dst, flow, parity)] = result
            if not record.flap:
                # Parity only matters through the flap shift: a stable
                # prefix shares one table across epochs, so a scan whose
                # virtual time crosses epoch boundaries never rebuilds.
                tables[(dst, flow, 1 - parity)] = result
            return result

        # Interior chain: internals[ttl - gateway_depth - 1], with the
        # VLAN-split alternate last hop for the upper host half.
        alt = (record.alt_last_hop if record.alt_last_hop >= 0
               and octet >= 128 and octet not in special_hosts else -1)
        for ttl in range(max(beyond, gateway_depth + 1),
                         min(dest_depth - 1, gateway_depth + num_internals,
                             ROUTE_CACHE_TTLS) + 1):
            index = ttl - gateway_depth - 1
            iface = internals[index]
            if index == num_internals - 1 and alt >= 0:
                iface = alt
            if resp[iface]:
                h = jit + ttl * _JITTER_TTL_MULT
                table[ttl - 1] = (
                    ttl_exceeded, iface_addrs[iface], iface,
                    ow_base[ttl] + half_span
                    * (((h >> 8) & 0xFFFF) / 65536.0),
                    rt_base[ttl] + span
                    * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                    1, dst, False)

        at_dest = max(beyond, dest_depth)
        if assigned:
            if not dest_silent and at_dest <= ROUTE_CACHE_TTLS:
                # The longest segment of the table, yet a scan probes only
                # a few of its slots (preprobe + first hits past the
                # destination): fill it with one shared placeholder that
                # the network realizes per slot on first probe.
                lazy = LazyDest(dest_kind, dst,
                                special_hosts.get(octet, -1),
                                dest_ow_base, dest_rt_base, dest_depth,
                                quoted_dst, rewrite, jit, half_span, span)
                table[at_dest - 1:] = \
                    [lazy] * (ROUTE_CACHE_TTLS - at_dest + 1)
        elif stub.loop_unassigned and transit_len:
            # Default-route loop: probes keep expiring between the last-hop
            # router and its upstream, alternating by hop parity.
            if internals:
                last_hop = internals[-1]
                upstream = (internals[-2] if num_internals > 1
                            else gateway_iface)
            else:
                last_hop = gateway_iface
                upstream = transit[-1]
            for ttl in range(at_dest, ROUTE_CACHE_TTLS + 1):
                iface = (last_hop if (ttl - dest_depth) % 2 == 0
                         else upstream)
                if resp[iface]:
                    h = jit + ttl * _JITTER_TTL_MULT
                    table[ttl - 1] = (
                        ttl_exceeded, iface_addrs[iface], iface,
                        ow_base[ttl] + half_span
                        * (((h >> 8) & 0xFFFF) / 65536.0),
                        rt_base[ttl] + span
                        * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                        1, dst, False)
        elif stub.host_unreachable:
            last_hop = internals[-1] if internals else gateway_iface
            if resp[last_hop]:
                # The uncached path charges the *unshifted* gateway depth
                # for latency here; the responder address and the delay
                # bases are per-slot constants, only the jitter varies.
                depth = stub.gateway_depth
                unreachable = ResponseKind.HOST_UNREACHABLE
                last_addr = iface_addrs[last_hop]
                gw_ow_base = ow_base[depth]
                gw_rt_base = rt_base[depth]
                for ttl in range(at_dest, ROUTE_CACHE_TTLS + 1):
                    h = jit + ttl * _JITTER_TTL_MULT
                    table[ttl - 1] = (
                        unreachable, last_addr, last_hop,
                        gw_ow_base + half_span
                        * (((h >> 8) & 0xFFFF) / 65536.0),
                        gw_rt_base + span
                        * ((((h + 1) >> 8) & 0xFFFF) / 65536.0),
                        1, quoted_dst, rewrite)
        result = table
        tables[(dst, flow, parity)] = result
        if not record.flap:
            tables[(dst, flow, 1 - parity)] = result
        return result
