"""Round-trip-time model.

RTTs only need to be *plausible and deterministic*: FlashRoute derives them
from the probe-encoded millisecond timestamp, and the tests verify the
decoder recovers exactly what the simulator imposed.  We charge a fixed
per-hop latency both ways plus a deterministic pseudo-random jitter keyed on
the probe identity, so repeated runs are identical without a shared RNG.

The per-depth base delays are precomputed into flat tables at construction:
``send_probe`` calls :meth:`LatencyModel.one_way`/``round_trip`` once or
twice per responding probe, and the depth multiplications are the same for
every probe at a given depth.  The tables store the *exact* floats the
original expressions produce (same operations, same order), so cached and
uncached scans remain bit-identical.
"""

from __future__ import annotations

_JITTER_MULT = 1103515245
_JITTER_INC = 12345
_HASH_MULT = 2654435761

#: Depths precomputed at construction; anything deeper (not reachable with
#: the 32-TTL probe encoding, but kept correct anyway) is computed on demand.
_TABLE_DEPTHS = 64


def jitter_fraction(dst: int, ttl: int, salt: int = 0) -> float:
    """Deterministic jitter in [0, 1) keyed on probe identity."""
    value = (dst * _JITTER_MULT + ttl * _HASH_MULT + salt + _JITTER_INC)
    return ((value >> 8) & 0xFFFF) / 65536.0


class LatencyModel:
    """Computes one-way and round-trip delays for a probe."""

    __slots__ = ("hop_latency", "jitter_span", "_half_span",
                 "_one_way_base", "_round_trip_base")

    def __init__(self, hop_latency: float, jitter_span: float) -> None:
        if hop_latency <= 0:
            raise ValueError("hop_latency must be positive")
        if jitter_span < 0:
            raise ValueError("latency_jitter must be non-negative")
        self.hop_latency = hop_latency
        self.jitter_span = jitter_span
        # 0.5 * span and 2.0 * latency are the left-to-right partial
        # products of the original expressions, so table entries are
        # float-for-float what the unfolded arithmetic yields.
        self._half_span = 0.5 * jitter_span
        self._one_way_base = tuple(
            hop_latency * max(depth, 1) for depth in range(_TABLE_DEPTHS))
        self._round_trip_base = tuple(
            (2.0 * hop_latency) * max(depth, 1)
            for depth in range(_TABLE_DEPTHS))

    def one_way(self, depth: int, dst: int, ttl: int) -> float:
        """Vantage point -> responder delay for a probe expiring at depth."""
        if 0 <= depth < _TABLE_DEPTHS:
            base = self._one_way_base[depth]
        else:
            base = self.hop_latency * max(depth, 1)
        value = (dst * _JITTER_MULT + ttl * _HASH_MULT + _JITTER_INC)
        return base + self._half_span * (((value >> 8) & 0xFFFF) / 65536.0)

    def round_trip(self, depth: int, dst: int, ttl: int) -> float:
        """Probe departure -> response arrival delay."""
        if 0 <= depth < _TABLE_DEPTHS:
            base = self._round_trip_base[depth]
        else:
            base = (2.0 * self.hop_latency) * max(depth, 1)
        value = (dst * _JITTER_MULT + ttl * _HASH_MULT + 1 + _JITTER_INC)
        return base + self.jitter_span * (((value >> 8) & 0xFFFF) / 65536.0)
