"""Round-trip-time model.

RTTs only need to be *plausible and deterministic*: FlashRoute derives them
from the probe-encoded millisecond timestamp, and the tests verify the
decoder recovers exactly what the simulator imposed.  We charge a fixed
per-hop latency both ways plus a deterministic pseudo-random jitter keyed on
the probe identity, so repeated runs are identical without a shared RNG.
"""

from __future__ import annotations

_JITTER_MULT = 1103515245
_JITTER_INC = 12345


def jitter_fraction(dst: int, ttl: int, salt: int = 0) -> float:
    """Deterministic jitter in [0, 1) keyed on probe identity."""
    value = (dst * _JITTER_MULT + ttl * 2654435761 + salt + _JITTER_INC)
    return ((value >> 8) & 0xFFFF) / 65536.0


class LatencyModel:
    """Computes one-way and round-trip delays for a probe."""

    def __init__(self, hop_latency: float, jitter_span: float) -> None:
        if hop_latency <= 0:
            raise ValueError("hop_latency must be positive")
        if jitter_span < 0:
            raise ValueError("latency_jitter must be non-negative")
        self.hop_latency = hop_latency
        self.jitter_span = jitter_span

    def one_way(self, depth: int, dst: int, ttl: int) -> float:
        """Vantage point -> responder delay for a probe expiring at depth."""
        return (self.hop_latency * max(depth, 1)
                + 0.5 * self.jitter_span * jitter_fraction(dst, ttl))

    def round_trip(self, depth: int, dst: int, ttl: int) -> float:
        """Probe departure -> response arrival delay."""
        return (2.0 * self.hop_latency * max(depth, 1)
                + self.jitter_span * jitter_fraction(dst, ttl, salt=1))
