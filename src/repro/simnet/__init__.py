"""Simulated Internet substrate.

Replaces the paper's real-Internet vantage point (see DESIGN.md §2): a
seeded synthetic topology with tree-like routes, stub networks, per-flow
load balancers, middleboxes, ICMP rate limiting, and a virtual clock under
which probing engines run deterministically.
"""

from .capture import CapturingNetwork, response_wire_bytes
from .config import SCENARIOS, TopologyConfig, scaled_probing_rate, weighted_choice
from .engine import ProbeLog, ResponseQueue, VirtualClock
from .entities import HopKind, HopResult, PrefixInfo, Stub, lb_group_id, lb_offset, lb_token
from .faults import FaultInjector, FaultModel
from .hitlist import hitlist_addresses, synthesize_hitlist
from .latency import LatencyModel, jitter_fraction
from .network import SimulatedNetwork
from .ratelimit import IcmpRateLimiter
from .topology import Topology

__all__ = [
    "CapturingNetwork",
    "response_wire_bytes",
    "SCENARIOS",
    "TopologyConfig",
    "scaled_probing_rate",
    "weighted_choice",
    "ProbeLog",
    "ResponseQueue",
    "VirtualClock",
    "HopKind",
    "HopResult",
    "PrefixInfo",
    "Stub",
    "lb_group_id",
    "lb_offset",
    "lb_token",
    "FaultInjector",
    "FaultModel",
    "hitlist_addresses",
    "synthesize_hitlist",
    "LatencyModel",
    "jitter_fraction",
    "SimulatedNetwork",
    "IcmpRateLimiter",
    "Topology",
]
