"""Deterministic, seeded fault injection for the simulated network.

The paper's robustness claims all hinge on how tools behave when the
network misbehaves: the gap limit of 5 exists to tolerate unresponsive
hops during forward probing (§4.2), ICMP rate limiting distorts discovery
(§5.3), Doubletree stop sets must survive missing responses (Donnet et
al.), and Yarrp motivates statelessness by loss tolerance outright.  This
module supplies the misbehaviour: a :class:`FaultModel` describing probe
loss, response loss, bounded reordering, duplicate TTL-exceeded replies
and transient router blackouts, and a :class:`FaultInjector` that applies
it to resolved probes.

Design rules (they are what make fault injection testable):

* **Stateless per-probe draws.**  Every fault decision is a pure hash of
  ``(fault seed, destination, TTL, send time)`` — no RNG stream, no
  ordering dependence.  The same seed therefore yields the same fault
  sequence whether probes are resolved by the uncached path, the flat
  route cache, or the batch entry point, and regardless of how many
  *other* probes were injected in between.  Cached-vs-uncached
  equivalence survives fault injection by construction.
* **Post-lookup application.**  Faults apply to the *resolved* outcome of
  a probe (`SimulatedNetwork` calls :meth:`FaultInjector.filter` exactly
  where a response object is about to be returned), so they compose with
  the route cache's memoized outcome tables without invalidating them.
  The one approximation this buys: a probe lost on the forward path still
  charges the responder's ICMP rate limiter, because the limiter decision
  is part of the (cached) lookup.  Loss rates and rate limits are both
  small, and the alternative — pre-lookup loss — would make cached and
  uncached limiter state diverge.
* **Silence is free.**  A probe whose resolution is already silent cannot
  be observed to be lost, so the injector is only consulted when a
  response exists; the ``probes_lost`` counter counts lost probes *that
  would otherwise have been answered*.

The injector's counters (``probes_lost``, ``responses_lost``,
``blackout_drops``, ``duplicates_injected``) are observability only; the
per-scan accounting engines report lives in
:class:`~repro.core.results.ScanResult` (``duplicate_responses`` and the
derived ``route_holes()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.icmp import IcmpResponse, ResponseKind

_MASK64 = (1 << 64) - 1

#: Per-fault-kind salts: independent decisions for one probe come from
#: independent hash streams.
_SALT_PROBE_LOSS = 0xA24BAED4963EE407
_SALT_RESPONSE_LOSS = 0x9FB21C651E98DF25
_SALT_DUPLICATE = 0xD6E8FEB86659FD93
_SALT_DUP_DELAY = 0x2545F4914F6CDD1D
_SALT_REORDER = 0x27220A95FE31A2B1
_SALT_REORDER_DUP = 0x8824AD5BA2B7289D
_SALT_BLACKOUT_PICK = 0x452821E638D01377
_SALT_BLACKOUT_PHASE = 0xBE5466CF34E90C6C

#: A duplicate TTL-exceeded reply trails the original by this much plus a
#: deterministic per-probe jitter (seconds): close enough to interleave
#: with neighbouring responses, far enough to be a distinct arrival.
_DUPLICATE_DELAY_BASE = 0.0005
_DUPLICATE_DELAY_SPAN = 0.002


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: avalanche an integer key to 64 uniform bits."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


@dataclass(frozen=True)
class FaultModel:
    """Declarative description of the injected faults.

    All probabilities are per-probe and independent; a default-constructed
    model injects nothing (``enabled`` is False) and a network built with
    it is bit-identical to one built with no model at all.
    """

    #: Probability a probe is lost before reaching any responder.
    probe_loss: float = 0.0

    #: Probability a generated response is lost on the way back.
    response_loss: float = 0.0

    #: Upper bound (seconds) of a uniform extra delay added to each
    #: response's arrival time; > 0 lets responses overtake one another
    #: (a bounded reordering window).
    reorder_window: float = 0.0

    #: Probability a TTL-exceeded reply is duplicated (routers under load
    #: and some middleboxes emit doubles).
    duplicate_probability: float = 0.0

    #: Fraction of responders that suffer periodic transient blackouts.
    blackout_fraction: float = 0.0

    #: Blackout cycle length and the silent window inside each cycle,
    #: in virtual seconds.
    blackout_period: float = 60.0
    blackout_duration: float = 5.0

    #: Seed of every fault decision; scans with equal seeds (and equal
    #: probe streams) see identical fault sequences.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("probe_loss", "response_loss", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value!r}")
        if not 0.0 <= self.blackout_fraction <= 1.0:
            raise ValueError("blackout_fraction must be in [0, 1], got "
                             f"{self.blackout_fraction!r}")
        if self.reorder_window < 0:
            raise ValueError("reorder_window must be non-negative")
        if self.blackout_period <= 0:
            raise ValueError("blackout_period must be positive")
        if not 0 <= self.blackout_duration <= self.blackout_period:
            raise ValueError(
                "blackout_duration must be in [0, blackout_period]")

    @property
    def enabled(self) -> bool:
        """True when the model can change at least one probe's outcome."""
        return bool(self.probe_loss or self.response_loss
                    or self.reorder_window or self.duplicate_probability
                    or (self.blackout_fraction and self.blackout_duration))

    @classmethod
    def symmetric_loss(cls, loss: float, seed: int = 0,
                       **overrides) -> "FaultModel":
        """The ``--loss`` model: each probe and each response is lost
        independently with probability ``loss`` (end-to-end response rate
        ``(1 - loss)^2`` for a responsive hop)."""
        return cls(probe_loss=loss, response_loss=loss, seed=seed,
                   **overrides)


class FaultInjector:
    """Applies a :class:`FaultModel` to resolved probes.

    One injector per :class:`~repro.simnet.network.SimulatedNetwork`; it
    is stateless apart from observability counters, so sharing or
    resetting it never changes outcomes.
    """

    __slots__ = ("model", "_seed", "probes_lost", "responses_lost",
                 "blackout_drops", "duplicates_injected", "reordered")

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self._seed = _mix64(model.seed * 0x9E3779B97F4A7C15 + 1)
        self.probes_lost = 0
        self.responses_lost = 0
        self.blackout_drops = 0
        self.duplicates_injected = 0
        self.reordered = 0

    def reset_counters(self) -> None:
        self.probes_lost = 0
        self.responses_lost = 0
        self.blackout_drops = 0
        self.duplicates_injected = 0
        self.reordered = 0

    def stats(self) -> dict:
        return {"probes_lost": self.probes_lost,
                "responses_lost": self.responses_lost,
                "blackout_drops": self.blackout_drops,
                "duplicates_injected": self.duplicates_injected,
                "reordered": self.reordered}

    def restore_counters(self, state: dict) -> None:
        """Restore observability counters from a checkpoint; fault *draws*
        are stateless, so this never changes outcomes."""
        self.probes_lost = state["probes_lost"]
        self.responses_lost = state["responses_lost"]
        self.blackout_drops = state["blackout_drops"]
        self.duplicates_injected = state["duplicates_injected"]
        self.reordered = state["reordered"]

    # ------------------------------------------------------------------ #

    def _unit(self, key: int, salt: int) -> float:
        """Uniform [0, 1) draw for one (probe, fault-kind) pair."""
        return _mix64(self._seed ^ key ^ salt) / 18446744073709551616.0

    def _blacked_out(self, responder: int, send_time: float) -> bool:
        model = self.model
        pick = _mix64(self._seed ^ (responder * 0x9E3779B97F4A7C15)
                      ^ _SALT_BLACKOUT_PICK) / 18446744073709551616.0
        if pick >= model.blackout_fraction:
            return False
        phase = _mix64(self._seed ^ (responder * 0xC2B2AE3D27D4EB4F)
                       ^ _SALT_BLACKOUT_PHASE) / 18446744073709551616.0
        period = model.blackout_period
        return (send_time + phase * period) % period < model.blackout_duration

    def filter(self, dst: int, ttl: int, send_time: float,
               response: IcmpResponse) -> Optional[IcmpResponse]:
        """The (possibly faulted) observable outcome of one resolved probe.

        Called by the network at every point a response object is about to
        be returned — scalar, batched, cached and uncached paths alike.
        Mutating ``response`` is safe: the network constructs a fresh
        object per responding probe.
        """
        model = self.model
        # Probe identity key; send times are bit-identical across serving
        # modes, so the derived integer key (ns resolution) is too.
        key = ((dst * 0xFF51AFD7ED558CCD)
               ^ (ttl * 0xC4CEB9FE1A85EC53)
               ^ int(send_time * 1e9)) & _MASK64
        if model.probe_loss and \
                self._unit(key, _SALT_PROBE_LOSS) < model.probe_loss:
            self.probes_lost += 1
            return None
        if response is None:
            return None
        if model.blackout_fraction and \
                self._blacked_out(response.responder, send_time):
            self.blackout_drops += 1
            return None
        if model.response_loss and \
                self._unit(key, _SALT_RESPONSE_LOSS) < model.response_loss:
            self.responses_lost += 1
            return None
        if model.duplicate_probability \
                and response.kind is ResponseKind.TTL_EXCEEDED \
                and self._unit(key, _SALT_DUPLICATE) \
                < model.duplicate_probability:
            clone = IcmpResponse(
                kind=response.kind, responder=response.responder,
                quoted=response.quoted,
                arrival_time=response.arrival_time + _DUPLICATE_DELAY_BASE
                + self._unit(key, _SALT_DUP_DELAY) * _DUPLICATE_DELAY_SPAN,
                quoted_residual_ttl=response.quoted_residual_ttl)
            clone.is_duplicate = True
            response.dup = clone
            self.duplicates_injected += 1
        if model.reorder_window:
            response.arrival_time += \
                self._unit(key, _SALT_REORDER) * model.reorder_window
            dup = response.dup
            if dup is not None:
                dup.arrival_time += self._unit(
                    key, _SALT_REORDER_DUP) * model.reorder_window
            self.reordered += 1
        return response

    def explain(self, dst: int, ttl: int, send_time: float,
                responder: Optional[int] = None) -> Optional[str]:
        """Which fault (if any) :meth:`filter` would charge to this probe.

        Replays the same stateless hash draws in the same order as
        :meth:`filter` — ``probe_loss``, then blackout, then
        ``response_loss`` — without touching any counter, so post-hoc
        tools (``scan-diff``) can attribute a silent probe to its cause
        from nothing but the fault seed and the probe's identity.
        Blackouts need the ``responder`` that *would* have answered;
        without it that check is skipped.  Returns ``"probe_loss"``,
        ``"blackout"``, ``"response_loss"`` or ``None``.
        """
        model = self.model
        key = ((dst * 0xFF51AFD7ED558CCD)
               ^ (ttl * 0xC4CEB9FE1A85EC53)
               ^ int(send_time * 1e9)) & _MASK64
        if model.probe_loss and \
                self._unit(key, _SALT_PROBE_LOSS) < model.probe_loss:
            return "probe_loss"
        if model.blackout_fraction and responder is not None \
                and self._blacked_out(responder, send_time):
            return "blackout"
        if model.response_loss and \
                self._unit(key, _SALT_RESPONSE_LOSS) < model.response_loss:
            return "response_loss"
        return None
