"""The IPv6 extension (paper §5.4, prototyped).

Sparse hash-based control state, target-list-driven scanning, payload-based
probe encoding — the redesign the paper says IPv6 requires, running over a
simulated sparse v6 Internet.
"""

from .dcb_store import Dcb6, SparseDCBStore
from .encoding6 import (
    DecodedProbe6,
    Encoding6Error,
    ProbeMarking6,
    addr6_checksum,
    decode_payload6,
    destination_intact6,
    encode_probe6,
    flow_source_port6,
    rtt_ms6,
)
from .prober6 import FlashRoute6, FlashRoute6Config, exhaustive_scan6
from .topology6 import (
    Response6,
    SimulatedNetwork6,
    Site6,
    Subnet6,
    Topology6,
    TopologyConfig6,
)

__all__ = [
    "Dcb6",
    "SparseDCBStore",
    "DecodedProbe6",
    "Encoding6Error",
    "ProbeMarking6",
    "addr6_checksum",
    "decode_payload6",
    "destination_intact6",
    "encode_probe6",
    "flow_source_port6",
    "rtt_ms6",
    "FlashRoute6",
    "FlashRoute6Config",
    "exhaustive_scan6",
    "Response6",
    "SimulatedNetwork6",
    "Site6",
    "Subnet6",
    "Topology6",
    "TopologyConfig6",
]
