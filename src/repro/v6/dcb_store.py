"""Sparse destination control state for IPv6 (paper §5.4).

The IPv4 scanner indexes its DCBs with a flat 2^24-slot array, which "will
no longer be possible" for IPv6: allocated space is sparse [20] and the
prefix universe (2^64 /64s) dwarfs any array.  The redesign the paper
anticipates is implemented here: a hash-based store — a dict of per-target
blocks keyed by the /64 subnet — that still satisfies both thread's
demands from §3.4:

* the receive path locates any block in O(1) from the subnet of the quoted
  destination (dict lookup instead of array indexing);
* the send path walks a shuffled circular ring threaded through the blocks
  and unlinks finished ones in O(1) (explicit next/prev keys instead of
  array indexes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from ..core.permutation import FeistelPermutation


@dataclass
class Dcb6:
    """One IPv6 destination's control block (Listing 1, 128-bit edition)."""

    __slots__ = ("destination", "split_ttl", "next_backward", "next_forward",
                 "forward_horizon", "dest_reached", "removed",
                 "next_key", "prev_key")

    destination: int
    split_ttl: int
    next_backward: int
    next_forward: int
    forward_horizon: int
    dest_reached: bool
    removed: bool
    next_key: int
    prev_key: int


class SparseDCBStore:
    """Hash-based DCB store with an overlaid shuffled ring."""

    def __init__(self, destinations: Iterable[int], split_ttl: int,
                 gap_limit: int, seed: int = 1) -> None:
        if not 1 <= split_ttl <= 255:
            raise ValueError("split_ttl out of byte range")
        ordered: List[int] = []
        self._blocks: Dict[int, Dcb6] = {}
        for destination in destinations:
            key = destination >> 64
            if key in self._blocks:
                # One target per /64, like the IPv4 scanner's one per /24.
                continue
            ordered.append(key)
            self._blocks[key] = Dcb6(
                destination=destination,
                split_ttl=split_ttl,
                next_backward=split_ttl,
                next_forward=split_ttl + 1,
                forward_horizon=split_ttl + gap_limit,
                dest_reached=False,
                removed=True,  # linked below
                next_key=key,
                prev_key=key,
            )
        if not ordered:
            raise ValueError("need at least one destination")

        permutation = FeistelPermutation(len(ordered), seed)
        sequence = [ordered[position] for position in permutation]
        previous = sequence[-1]
        for key in sequence:
            block = self._blocks[key]
            block.prev_key = previous
            self._blocks[previous].next_key = key
            block.removed = False
            previous = key
        self._head: Optional[int] = sequence[0]
        self._live = len(sequence)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._live

    def __contains__(self, key: int) -> bool:
        return key in self._blocks

    def get(self, key: int) -> Optional[Dcb6]:
        """O(1) receive-path lookup by /64 subnet key."""
        return self._blocks.get(key)

    @property
    def head(self) -> Optional[int]:
        return self._head

    def remove(self, key: int) -> None:
        """Unlink a finished destination from the ring in O(1)."""
        block = self._blocks[key]
        if block.removed:
            return
        if block.next_key == key:
            self._head = None
        else:
            self._blocks[block.prev_key].next_key = block.next_key
            self._blocks[block.next_key].prev_key = block.prev_key
            if self._head == key:
                self._head = block.next_key
        block.removed = True
        self._live -= 1

    def iter_ring(self) -> Iterator[int]:
        """One trip around the ring; tolerant of removing the yielded key."""
        count = self._live
        key = self._head
        while count > 0 and key is not None:
            nxt = self._blocks[key].next_key
            yield key
            key = nxt
            count -= 1

    def set_distance(self, key: int, distance: int, gap_limit: int) -> None:
        block = self._blocks[key]
        block.split_ttl = distance
        block.next_backward = distance
        block.next_forward = distance + 1
        block.forward_horizon = distance + gap_limit

    def memory_footprint(self) -> int:
        """Approximate bytes of the sparse store — proportional to the
        *target list*, not to the 2^64 /64 universe."""
        import sys

        total = sys.getsizeof(self._blocks)
        for key, block in self._blocks.items():
            total += sys.getsizeof(key)
            total += sys.getsizeof(block)
        return total
