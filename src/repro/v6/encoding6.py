"""Probe encoding for the IPv6 extension.

IPv6 headers have no identification field, so the IPv4 trick of hiding
state in the IPID is unavailable.  Like Yarrp6, the v6 probes carry their
state in bytes the ICMPv6 error quotes back — ICMPv6 errors return as much
of the invoking packet as fits in the minimum MTU, so a small UDP payload
always survives.  The layout mirrors the IPv4 encoding semantically:

* payload bytes 0..1 — initial TTL (6 bits) and a preprobe flag;
* payload bytes 2..3 — 16-bit millisecond timestamp;
* UDP source port   — Internet checksum of the 16 destination bytes
  (Paris flow id + in-flight rewrite detection, as in §3.1/§5.3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..net.checksum import internet_checksum

TIMESTAMP_WRAP_MS = 1 << 16
_PREPROBE_BIT = 0x40
_TTL_MASK = 0x3F

MAX_ENCODABLE_TTL_V6 = 63


class Encoding6Error(ValueError):
    """Raised when fields cannot carry the requested values."""


@dataclass(frozen=True)
class ProbeMarking6:
    """Header/payload values encoding one IPv6 probe's state."""

    payload: bytes
    src_port: int


@dataclass(frozen=True)
class DecodedProbe6:
    """State recovered from a quoted IPv6 probe."""

    initial_ttl: int
    is_preprobe: bool
    timestamp_ms: int
    dst: int
    src_port: int


def addr6_checksum(addr: int) -> int:
    """Checksum of the 16 destination bytes, folded to [1024, 65535]."""
    if not 0 <= addr < 2**128:
        raise Encoding6Error(f"address out of range: {addr:#x}")
    checksum = internet_checksum(addr.to_bytes(16, "big"))
    if checksum < 1024:
        checksum += 1024
    return checksum


def flow_source_port6(addr: int, scan_offset: int = 0) -> int:
    """Source port for extra-scan flow variation (§5.2 in v6)."""
    port = addr6_checksum(addr) + scan_offset
    window = 65536 - 1024
    return 1024 + (port - 1024) % window


def encode_probe6(dst: int, initial_ttl: int, send_time: float,
                  is_preprobe: bool = False,
                  scan_offset: int = 0) -> ProbeMarking6:
    """Compute the payload and source port for one v6 probe."""
    if not 1 <= initial_ttl <= MAX_ENCODABLE_TTL_V6:
        raise Encoding6Error(
            f"initial TTL {initial_ttl} does not fit in 6 bits")
    flags = initial_ttl & _TTL_MASK
    if is_preprobe:
        flags |= _PREPROBE_BIT
    timestamp = int(send_time * 1000.0) % TIMESTAMP_WRAP_MS
    payload = struct.pack("!BBH", flags, 0, timestamp)
    return ProbeMarking6(payload=payload,
                         src_port=flow_source_port6(dst, scan_offset))


def decode_payload6(payload: bytes, dst: int,
                    src_port: int) -> DecodedProbe6:
    """Recover the encoded state from a quoted probe payload."""
    if len(payload) < 4:
        raise Encoding6Error("quoted payload too short")
    flags, _reserved, timestamp = struct.unpack("!BBH", payload[:4])
    return DecodedProbe6(
        initial_ttl=flags & _TTL_MASK,
        is_preprobe=bool(flags & _PREPROBE_BIT),
        timestamp_ms=timestamp,
        dst=dst,
        src_port=src_port,
    )


def destination_intact6(decoded: DecodedProbe6, scan_offset: int = 0) -> bool:
    """True if the quoted destination still matches its checksum port."""
    return flow_source_port6(decoded.dst, scan_offset) == decoded.src_port


def rtt_ms6(decoded: DecodedProbe6, receive_time: float) -> float:
    """Round-trip time from the quoted timestamp, wrap-safe (< ~65.5 s)."""
    now_ms = int(receive_time * 1000.0)
    return float((now_ms - decoded.timestamp_ms) % TIMESTAMP_WRAP_MS)
