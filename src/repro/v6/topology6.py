"""Sparse IPv6 topology and probe oracle.

IPv6 scanning is target-list-driven: there is no enumerable /24-style
space, only seed addresses from hitlists, passive traces and DNS (Yarrp6's
approach, which the paper's §5.4 extension would follow).  The simulated
v6 Internet therefore consists of *sites* (each a /48, the common end-site
allocation) that announce a handful of sparsely numbered /64 subnets; the
"seed list" is one known address per announced subnet.

Routes reuse the IPv4 simulator's structure — a shared transit tree, a
site border router, a subnet router — with IPv6 addresses (128-bit ints)
throughout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.addr6 import addr_in_subnet64, ip6_to_int
from ..net.icmp import ResponseKind
from ..simnet.latency import LatencyModel
from ..simnet.ratelimit import IcmpRateLimiter

#: Documentation prefix for the simulated sites (2001:db8::/32).
SITE_SPACE_BASE = ip6_to_int("2001:db8::")
#: Infrastructure (router interface) space, disjoint from site space.
INFRA_SPACE_BASE = ip6_to_int("2001:db8:ffff::")

_FLOW_HASH_MULT = 2654435761


@dataclass
class TopologyConfig6:
    """Knobs of the simulated IPv6 Internet."""

    num_sites: int = 64
    seed: int = 2018  # Yarrp6's IMC year

    #: Announced /64 subnets per site: (count, weight).
    subnets_per_site: Tuple[Tuple[int, int], ...] = (
        (1, 30), (2, 30), (4, 25), (8, 12), (16, 3),
    )

    #: Border-router depth distribution (v6 paths skew slightly longer).
    border_depth_weights: Tuple[Tuple[int, int], ...] = (
        (8, 2), (10, 5), (12, 9), (14, 12), (16, 12), (18, 10), (20, 7),
        (22, 4), (24, 2), (26, 1),
    )

    #: Tree branching, as in the IPv4 generator.
    branch_base: float = 0.02
    branch_depth_scale: float = 22.0
    branch_exponent: float = 3.0

    router_responsiveness: float = 0.85
    #: Fraction of seed targets that answer UDP probes directly.
    target_responsiveness: float = 0.45

    icmp_rate_limit: int = 500
    hop_latency: float = 0.002
    latency_jitter: float = 0.004

    def __post_init__(self) -> None:
        if self.num_sites <= 0:
            raise ValueError("num_sites must be positive")


class _Node:
    __slots__ = ("iface", "depth", "children")

    def __init__(self, iface: int, depth: int) -> None:
        self.iface = iface
        self.depth = depth
        self.children: List["_Node"] = []


@dataclass
class Subnet6:
    """One announced /64: its router interface and the seed target."""

    __slots__ = ("subnet", "site_id", "router_iface", "target",
                 "target_responds")

    subnet: int
    site_id: int
    router_iface: int
    target: int
    target_responds: bool


@dataclass
class Site6:
    """A /48 end site: shared transit path plus a border router."""

    __slots__ = ("site_id", "prefix48", "transit", "border_iface",
                 "border_depth")

    site_id: int
    prefix48: int
    transit: Tuple[int, ...]
    border_iface: int
    border_depth: int


class Topology6:
    """The generated IPv6 ground truth."""

    def __init__(self, config: TopologyConfig6) -> None:
        self.config = config
        self.iface_addrs: List[int] = []
        self.iface_depth: List[int] = []
        self.responsive = bytearray()
        self.sites: List[Site6] = []
        #: /64 subnet index -> Subnet6.
        self.subnets: Dict[int, Subnet6] = {}
        self.vantage_addr = INFRA_SPACE_BASE - 1
        self._next_infra = INFRA_SPACE_BASE
        self._generate(random.Random(config.seed))

    # ------------------------------------------------------------------ #

    def _new_iface(self, addr: int, depth: int, responds: bool) -> int:
        iface = len(self.iface_addrs)
        self.iface_addrs.append(addr)
        self.iface_depth.append(depth)
        self.responsive.append(1 if responds else 0)
        return iface

    def _new_infra_iface(self, depth: int, rng: random.Random,
                         always: bool = False) -> int:
        addr = self._next_infra
        self._next_infra += 1
        responds = always or rng.random() < self.config.router_responsiveness
        return self._new_iface(addr, depth, responds)

    def _branch_probability(self, depth: int) -> float:
        cfg = self.config
        return min(1.0, cfg.branch_base
                   + (depth / cfg.branch_depth_scale) ** cfg.branch_exponent)

    def _generate(self, rng: random.Random) -> None:
        from ..simnet.config import weighted_choice

        cfg = self.config
        root = _Node(self._new_infra_iface(1, rng, always=True), 1)

        for site_id in range(cfg.num_sites):
            border_depth = weighted_choice(rng, cfg.border_depth_weights)
            node = root
            tokens = [root.iface]
            for depth in range(2, border_depth):
                if not node.children or \
                        rng.random() < self._branch_probability(depth):
                    child = _Node(self._new_infra_iface(depth, rng), depth)
                    node.children.append(child)
                else:
                    child = rng.choice(node.children)
                tokens.append(child.iface)
                node = child

            prefix48 = SITE_SPACE_BASE + (site_id << 80)
            border_addr = prefix48 | 1
            border_iface = self._new_iface(
                border_addr, border_depth,
                rng.random() < cfg.router_responsiveness)
            site = Site6(site_id=site_id, prefix48=prefix48,
                         transit=tuple(tokens), border_iface=border_iface,
                         border_depth=border_depth)
            self.sites.append(site)

            # Sparse subnet numbering: the announced /64s sit at scattered
            # 16-bit subnet ids, not 0..k — the sparsity [20] that rules
            # out array-indexed control state.
            count = weighted_choice(rng, cfg.subnets_per_site)
            subnet_ids = rng.sample(range(1, 0xFFFF), count)
            for subnet_id in subnet_ids:
                subnet_prefix = (prefix48 | (subnet_id << 64)) >> 64
                router_addr = addr_in_subnet64(subnet_prefix, 1)
                router_iface = self._new_iface(
                    router_addr, border_depth + 1,
                    rng.random() < cfg.router_responsiveness)
                # The seed target: a stable address in the subnet (what a
                # hitlist/trace would have revealed).
                target = addr_in_subnet64(subnet_prefix,
                                          rng.getrandbits(64) | 0x1)
                self.subnets[subnet_prefix] = Subnet6(
                    subnet=subnet_prefix, site_id=site_id,
                    router_iface=router_iface, target=target,
                    target_responds=(rng.random()
                                     < cfg.target_responsiveness))

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #

    def seed_targets(self) -> Dict[int, int]:
        """/64 subnet index -> the seed target address (the 'hitlist')."""
        return {subnet: record.target
                for subnet, record in self.subnets.items()}

    def destination_distance(self, dst: int) -> Optional[int]:
        record = self.subnets.get(dst >> 64)
        if record is None or not record.target_responds:
            return None
        if dst != record.target:
            return None
        return self.sites[record.site_id].border_depth + 2

    def hop_iface_at(self, dst: int, ttl: int) -> Optional[int]:
        """Interface id at ``ttl`` toward ``dst``; None when off-route or
        at/beyond the destination."""
        record = self.subnets.get(dst >> 64)
        if record is None or ttl < 1:
            return None
        site = self.sites[record.site_id]
        if ttl < site.border_depth:
            transit = site.transit
            return transit[ttl - 1] if ttl <= len(transit) else None
        if ttl == site.border_depth:
            return site.border_iface
        if ttl == site.border_depth + 1:
            return record.router_iface
        return None

    def reachable_interfaces(self) -> set:
        found = set()
        for site in self.sites:
            for iface in site.transit:
                if self.responsive[iface]:
                    found.add(iface)
            if self.responsive[site.border_iface]:
                found.add(site.border_iface)
        for record in self.subnets.values():
            if self.responsive[record.router_iface]:
                found.add(record.router_iface)
        return found


@dataclass
class Response6:
    """One response to an IPv6 probe."""

    __slots__ = ("kind", "responder", "quoted_dst", "quoted_payload",
                 "quoted_src_port", "quoted_residual_ttl", "arrival_time")

    kind: ResponseKind
    responder: int
    quoted_dst: int
    quoted_payload: bytes
    quoted_src_port: int
    quoted_residual_ttl: int
    arrival_time: float


class SimulatedNetwork6:
    """Probe oracle over a :class:`Topology6` (mirrors the IPv4 network)."""

    def __init__(self, topology: Topology6,
                 rate_limit: Optional[int] = None) -> None:
        self.topology = topology
        cfg = topology.config
        self.latency = LatencyModel(cfg.hop_latency, cfg.latency_jitter)
        self.rate_limiter = IcmpRateLimiter(
            rate_limit if rate_limit is not None else cfg.icmp_rate_limit,
            num_interfaces=len(topology.iface_addrs))
        self.probes_sent = 0
        self.responses_generated = 0

    def send_probes(self, probes: List[Tuple[int, int, float, int, bytes]],
                    flow: Optional[int] = None) -> List[Optional["Response6"]]:
        """Batched counterpart of :meth:`send_probe`: one response slot per
        ``(dst, hop_limit, send_time, src_port, payload)`` tuple.  The v6
        oracle resolves routes from a flat per-site structure already, so
        batching here amortizes only the call overhead — semantics are
        identical to scalar sends."""
        send_one = self.send_probe
        return [send_one(dst, hop_limit, send_time, src_port,
                         payload=payload, flow=flow)
                for dst, hop_limit, send_time, src_port, payload in probes]

    def send_probe(self, dst: int, hop_limit: int, send_time: float,
                   src_port: int, payload: bytes = b"",
                   flow: Optional[int] = None) -> Optional[Response6]:
        self.probes_sent += 1
        topo = self.topology
        record = topo.subnets.get(dst >> 64)
        if record is None:
            return None
        site = topo.sites[record.site_id]
        dest_depth = site.border_depth + 2
        jitter_key = dst & 0xFFFFFFFF

        if hop_limit < dest_depth:
            iface = topo.hop_iface_at(dst, hop_limit)
            if iface is None or not topo.responsive[iface]:
                return None
            arrival = send_time + self.latency.one_way(hop_limit, jitter_key,
                                                       hop_limit)
            if not self.rate_limiter.allow(iface, arrival):
                return None
            self.responses_generated += 1
            return Response6(
                kind=ResponseKind.TTL_EXCEEDED,
                responder=topo.iface_addrs[iface],
                quoted_dst=dst, quoted_payload=payload,
                quoted_src_port=src_port, quoted_residual_ttl=1,
                arrival_time=send_time + self.latency.round_trip(
                    hop_limit, jitter_key, hop_limit))

        if dst == record.target and record.target_responds:
            self.responses_generated += 1
            residual = hop_limit - dest_depth + 1
            return Response6(
                kind=ResponseKind.PORT_UNREACHABLE,
                responder=dst, quoted_dst=dst, quoted_payload=payload,
                quoted_src_port=src_port, quoted_residual_ttl=residual,
                arrival_time=send_time + self.latency.round_trip(
                    dest_depth, jitter_key, hop_limit))
        return None
