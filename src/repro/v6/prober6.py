"""FlashRoute6: the paper's §5.4 IPv6 extension, prototyped.

Same probing strategy as the IPv4 scanner — preprobing, round-based
backward/forward exploration, Doubletree stop set, GapLimit — over the
redesigned sparse control state (:class:`~repro.v6.dcb_store.
SparseDCBStore`) and a target list instead of an enumerable prefix space.

Two deliberate differences, both consequences of IPv6 sparsity the paper
anticipates:

* no proximity-span prediction: adjacent /64 indexes carry no locality in
  a sparsely allocated space, so preprobing distances apply only to the
  destinations that answered;
* target selection comes from a seed list (hitlists/traces), never from
  enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..core.results import ScanResult
from ..net.icmp import ResponseKind
from ..simnet.engine import ResponseQueue, VirtualClock
from .dcb_store import SparseDCBStore
from .encoding6 import (
    decode_payload6,
    destination_intact6,
    encode_probe6,
    rtt_ms6,
)
from .topology6 import Response6, SimulatedNetwork6

_SETTLE_SECONDS = 1.0
_PREPROBE_TTL = 32


@dataclass
class FlashRoute6Config:
    """Knobs of the v6 scanner (a subset of the IPv4 config)."""

    split_ttl: int = 16
    gap_limit: int = 5
    max_ttl: int = 32
    preprobe: bool = True
    redundancy_removal: bool = True
    probing_rate: float = 1000.0
    round_seconds: float = 1.0
    seed: int = 1
    scan_offset: int = 0
    max_rounds: int = 4096

    def __post_init__(self) -> None:
        if not 1 <= self.split_ttl <= self.max_ttl:
            raise ValueError("split_ttl must be within [1, max_ttl]")
        if self.gap_limit < 0:
            raise ValueError("gap_limit must be non-negative")
        if not 1 <= self.max_ttl <= 63:
            raise ValueError("max_ttl must fit the 6-bit v6 encoding")
        if self.probing_rate <= 0:
            raise ValueError("probing_rate must be positive")


class FlashRoute6:
    """The IPv6 scanner: create once, call :meth:`scan` per run."""

    def __init__(self, config: Optional[FlashRoute6Config] = None) -> None:
        self.config = config if config is not None else FlashRoute6Config()

    def scan(self, network: SimulatedNetwork6,
             targets: Optional[Dict[int, int]] = None,
             stop_set: Optional[Set[int]] = None,
             tool_name: str = "FlashRoute6") -> ScanResult:
        config = self.config
        if targets is None:
            targets = network.topology.seed_targets()
        if not targets:
            raise ValueError("the v6 scanner needs a non-empty target list")

        store = SparseDCBStore(targets.values(), config.split_ttl,
                               config.gap_limit, seed=config.seed)
        clock = VirtualClock()
        queue = ResponseQueue()
        send_gap = 1.0 / config.probing_rate
        stop = stop_set if stop_set is not None else set()
        result = ScanResult(tool=tool_name, num_targets=len(targets),
                            granularity=64)
        result.targets = dict(targets)

        def send(dst: int, ttl: int, preprobe: bool) -> None:
            marking = encode_probe6(dst, ttl, clock.now, is_preprobe=preprobe,
                                    scan_offset=config.scan_offset)
            response = network.send_probe(dst, ttl, clock.now,
                                          marking.src_port,
                                          payload=marking.payload)
            result.probes_sent += 1
            if preprobe:
                result.preprobe_probes += 1
            result.ttl_probe_histogram[ttl] += 1
            if response is not None:
                queue.push(response)  # type: ignore[arg-type]
            clock.advance(send_gap)

        def send_batch(items) -> None:
            # The back-to-back probes of one ring-walk step, emitted through
            # the batch entry point (same pacing and encodings as scalar).
            probes = []
            for dst, ttl in items:
                marking = encode_probe6(dst, ttl, clock.now,
                                        is_preprobe=False,
                                        scan_offset=config.scan_offset)
                probes.append((dst, ttl, clock.now, marking.src_port,
                               marking.payload))
                result.ttl_probe_histogram[ttl] += 1
                clock.advance(send_gap)
            result.probes_sent += len(probes)
            queue.push_many(network.send_probes(probes))

        measured: Dict[int, int] = {}

        def process(response: Response6) -> None:
            decoded = decode_payload6(response.quoted_payload,
                                      response.quoted_dst,
                                      response.quoted_src_port)
            if not destination_intact6(decoded, config.scan_offset):
                result.mismatched_quotes += 1
                return
            key = decoded.dst >> 64
            block = store.get(key)
            if block is None:
                return
            result.responses += 1
            result.response_kinds[response.kind.value] += 1
            result.add_rtt(rtt_ms6(decoded, response.arrival_time))

            if decoded.is_preprobe:
                if response.kind is ResponseKind.PORT_UNREACHABLE \
                        and response.responder == decoded.dst:
                    distance = decoded.initial_ttl \
                        - response.quoted_residual_ttl + 1
                    if 1 <= distance <= config.max_ttl:
                        measured[key] = distance
                return

            if response.kind is ResponseKind.TTL_EXCEEDED:
                ttl = decoded.initial_ttl
                result.add_hop(key, ttl, response.responder)
                horizon = ttl + config.gap_limit
                if horizon > block.forward_horizon:
                    block.forward_horizon = horizon
                if ttl <= block.split_ttl and block.next_backward > 0:
                    if ttl == 1:
                        block.next_backward = 0
                    elif (config.redundancy_removal
                          and response.responder in stop):
                        block.next_backward = 0
                stop.add(response.responder)
                return
            if response.kind.is_unreachable:
                block.dest_reached = True
                if response.responder == decoded.dst:
                    distance = decoded.initial_ttl \
                        - response.quoted_residual_ttl + 1
                    if distance >= 1:
                        result.record_destination(key, distance)

        def drain() -> None:
            for response in queue.pop_until(clock.now):
                process(response)

        # Preprobing: measure-only (no proximity prediction in sparse v6).
        if config.preprobe:
            for key in store.iter_ring():
                drain()
                send(store.get(key).destination, _PREPROBE_TTL,
                     preprobe=True)
            clock.advance(_SETTLE_SECONDS)
            drain()
            for key, distance in measured.items():
                store.set_distance(key, distance, config.gap_limit)

        # Main rounds.
        while len(store) > 0 and result.rounds < config.max_rounds:
            result.rounds += 1
            round_start = clock.now
            for key in store.iter_ring():
                drain()
                block = store.get(key)
                if block.removed:
                    continue
                pair = []
                if block.next_backward >= 1:
                    pair.append((block.destination, block.next_backward))
                    block.next_backward -= 1
                if not block.dest_reached:
                    limit = min(block.forward_horizon, config.max_ttl)
                    if block.next_forward <= limit:
                        pair.append((block.destination, block.next_forward))
                        block.next_forward += 1
                if pair:
                    send_batch(pair)
                sent = bool(pair)
                if not sent and block.next_backward == 0 and (
                        block.dest_reached
                        or block.next_forward > min(block.forward_horizon,
                                                    config.max_ttl)):
                    store.remove(key)
            clock.advance_to(round_start + config.round_seconds)
            drain()
        result.aborted = result.rounds >= config.max_rounds and len(store) > 0

        clock.advance(_SETTLE_SECONDS)
        drain()
        result.duration = clock.now
        return result


def exhaustive_scan6(network: SimulatedNetwork6,
                     targets: Optional[Dict[int, int]] = None,
                     max_ttl: int = 32,
                     probing_rate: float = 1000.0) -> ScanResult:
    """Yarrp6-style exhaustive baseline: one probe per (target, hop)."""
    config = FlashRoute6Config(split_ttl=max_ttl, gap_limit=0,
                               preprobe=False, redundancy_removal=False,
                               max_ttl=max_ttl, probing_rate=probing_rate)
    return FlashRoute6(config).scan(network, targets=targets,
                                    tool_name="exhaustive-v6")
