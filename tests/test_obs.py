"""The observability subsystem (repro.obs): metrics registry, tracer,
progress reporter, and the determinism/zero-overhead contracts the
telemetry wiring must keep."""

import io
import json

import pytest

from repro.core import FlashRoute, FlashRouteConfig
from repro.core.output import result_to_dict
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    POW2_BUCKETS,
    ProgressReporter,
    ScanTracer,
    Stopwatch,
    Telemetry,
    deterministic_snapshot,
    load_snapshot,
    read_trace,
    validate_trace,
)
from repro.simnet import (
    FaultModel,
    SimulatedNetwork,
    Topology,
    TopologyConfig,
)

CFG = TopologyConfig(num_prefixes=96, seed=13)


@pytest.fixture(scope="module")
def topology():
    return Topology(CFG)


def run_scan(topology, telemetry=None, faults=None, use_route_cache=True,
             seed=1):
    network = SimulatedNetwork(topology, faults=faults,
                               use_route_cache=use_route_cache)
    config = FlashRouteConfig(split_ttl=16, gap_limit=5, seed=seed)
    result = FlashRoute(config, telemetry=telemetry).scan(network)
    if telemetry is not None:
        telemetry.record_network(network)
    return result


# --------------------------------------------------------------------- #
# MetricsRegistry
# --------------------------------------------------------------------- #

class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a.count")
        reg.inc("a.count", 4)
        reg.set_gauge("a.level", 2.5)
        reg.set_gauge("a.level", 3.0)
        assert reg.counter("a.count") == 5
        assert reg.counter("missing") == 0
        assert reg.gauge("a.level") == 3.0
        assert reg.gauge("missing") is None

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        for value in (1, 3, 1000, 10**9):
            reg.observe("h", value)
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["sum"] == 1 + 3 + 1000 + 10**9
        # Overflow slot caught the out-of-range value.
        assert hist["counts"][-1] == 1

    def test_histogram_bound_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.observe("h", 1, buckets=POW2_BUCKETS)
        with pytest.raises(ValueError):
            reg.observe("h", 1, buckets=(1, 2, 3))

    def test_unsorted_bounds_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.observe("h", 1, buckets=(5, 1))

    def test_snapshot_is_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        reg.inc("m")
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]
        assert reg.names() == ["a", "m", "z"]

    def test_save_segregates_wall_clock(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("scan.probes.total", 7)
        path = str(tmp_path / "metrics.json")
        reg.save(path, extra_wall={"elapsed_cpu": 0.25})
        loaded = load_snapshot(path)
        assert loaded["counters"]["scan.probes.total"] == 7
        assert "written_unix" in loaded["wall"]
        assert loaded["wall"]["elapsed_cpu"] == 0.25
        # The deterministic view drops the wall section entirely.
        assert "wall" not in deterministic_snapshot(loaded)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ValueError):
            load_snapshot(str(path))

    def test_deterministic_snapshot_excludes_prefixes(self):
        reg = MetricsRegistry()
        reg.inc("scan.probes.total", 3)
        reg.inc("simnet.cache.hits", 9)
        reg.set_gauge("simnet.cache.entries", 2)
        view = deterministic_snapshot(reg.snapshot(),
                                      exclude_prefixes=("simnet.cache.",))
        assert view["counters"] == {"scan.probes.total": 3}
        assert view["gauges"] == {}


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #

class TestScanTracer:
    def test_round_trip_and_validate(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = ScanTracer(path=path)
        scan_id = tracer.begin("scan", "demo", 0.0, targets=4)
        phase_id = tracer.begin("phase", "main", 1.0)
        tracer.event("checkpoint", 1.5, probes=10)
        tracer.end("phase", "main", 2.0)
        tracer.end("scan", "demo", 3.0, probes=20)
        tracer.close()

        events = read_trace(path)
        validate_trace(events)
        assert events[0]["schema"] == "repro.obs.trace/1"
        begins = [e for e in events if e["ev"] == "begin"]
        assert [e["name"] for e in begins] == ["demo", "main"]
        # Parent linkage: phase nests under scan, the event under phase.
        assert begins[1]["parent"] == scan_id
        point = next(e for e in events if e["ev"] == "event")
        assert point["parent"] == phase_id
        # Extra fields ride along verbatim.
        assert begins[0]["targets"] == 4
        assert point["probes"] == 10

    def test_stream_constructor(self):
        stream = io.StringIO()
        tracer = ScanTracer(stream=stream)
        tracer.begin("scan", "s", 0.0)
        tracer.end("scan", "s", 1.0)
        tracer.close()
        lines = [json.loads(line) for line in
                 stream.getvalue().splitlines()]
        validate_trace(lines)
        assert tracer.events_written == 3

    def test_requires_exactly_one_destination(self, tmp_path):
        with pytest.raises(ValueError):
            ScanTracer()
        with pytest.raises(ValueError):
            ScanTracer(stream=io.StringIO(),
                       path=str(tmp_path / "t.jsonl"))

    def test_validate_rejects_bad_nesting(self):
        header = {"ev": "trace", "schema": "repro.obs.trace/1",
                  "vt": 0.0, "wt": 0.0}
        begin = {"ev": "begin", "span": "scan", "name": "a", "vt": 0.0}
        wrong_end = {"ev": "end", "span": "scan", "name": "b", "vt": 1.0}
        with pytest.raises(ValueError):
            validate_trace([header, begin, wrong_end])
        with pytest.raises(ValueError):
            validate_trace([header, begin])  # left open
        with pytest.raises(ValueError):
            validate_trace([begin])  # no header

    def test_null_tracer_is_inert(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("scan", "x", 0.0) == 0
        NULL_TRACER.end("scan", "x", 1.0)
        NULL_TRACER.event("y", 2.0)
        NULL_TRACER.close()


# --------------------------------------------------------------------- #
# Progress
# --------------------------------------------------------------------- #

class TestProgressReporter:
    def test_keys_off_virtual_time(self):
        stream = io.StringIO()
        progress = ProgressReporter(interval=10.0, stream=stream)
        assert progress.due(0.0)
        assert progress.maybe_report(0.0, {"probes": 5})
        # Not due again until 10 virtual seconds later, no matter how
        # many checkpoints happen in between.
        assert not progress.maybe_report(3.0, {"probes": 6})
        assert not progress.due(9.99)
        assert progress.maybe_report(12.0, {"probes": 1234})
        assert progress.lines_emitted == 2
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[progress] t=0.0s probes=5"
        assert lines[1] == "[progress] t=12.0s probes=1,234"

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(interval=0.0)


class TestStopwatch:
    def test_elapsed_is_monotone(self):
        with Stopwatch() as watch:
            mid = watch.elapsed
        assert 0.0 <= mid <= watch.elapsed
        final = watch.elapsed
        assert watch.elapsed == final  # frozen after exit


# --------------------------------------------------------------------- #
# Scan-level telemetry contracts
# --------------------------------------------------------------------- #

class TestScanTelemetry:
    def test_metrics_cover_engine_and_network(self, topology):
        telemetry = Telemetry()
        result = run_scan(topology, telemetry=telemetry)
        reg = telemetry.registry
        assert reg.counter("scan.probes.total") == result.probes_sent
        assert reg.counter("scan.rounds") == result.rounds
        assert (reg.counter("scan.interfaces.discovered")
                == result.interface_count())
        assert reg.counter("simnet.probes_sent") == result.probes_sent
        # Stop-reason attribution: every retired destination stopped for
        # some recorded reason.
        stops = (reg.counter("scan.forward_stops.gap_limit")
                 + reg.counter("scan.forward_stops.max_ttl")
                 + reg.counter("scan.forward_stops.dest_reached"))
        assert stops > 0
        assert reg.gauge("scan.duration_virtual_seconds") == result.duration
        hist = reg.snapshot()["histograms"]["scan.ring.occupancy_per_round"]
        assert hist["count"] == result.rounds

    def test_same_seed_same_snapshot(self, topology):
        first = Telemetry()
        second = Telemetry()
        run_scan(topology, telemetry=first)
        run_scan(topology, telemetry=second)
        assert first.registry.snapshot() == second.registry.snapshot()

    def test_cached_vs_uncached_identical_modulo_cache(self, topology):
        cached = Telemetry()
        uncached = Telemetry()
        run_scan(topology, telemetry=cached, use_route_cache=True)
        run_scan(topology, telemetry=uncached, use_route_cache=False)
        exclude = ("simnet.cache.",)
        assert (deterministic_snapshot(cached.registry.snapshot(), exclude)
                == deterministic_snapshot(uncached.registry.snapshot(),
                                          exclude))
        # The excluded prefix is the only difference.
        assert (cached.registry.gauge("simnet.cache.enabled") == 1)
        assert (uncached.registry.gauge("simnet.cache.enabled") == 0)

    def test_faulted_scan_snapshot_deterministic(self, topology):
        def faulted():
            telemetry = Telemetry()
            faults = FaultModel(probe_loss=0.05, response_loss=0.05,
                                duplicate_probability=0.02, seed=7)
            run_scan(topology, telemetry=telemetry, faults=faults)
            return telemetry.registry.snapshot()

        first = faulted()
        assert first == faulted()
        assert (first["counters"]["simnet.faults.probes_lost"]
                + first["counters"]["simnet.faults.responses_lost"]) > 0

    def test_disabled_telemetry_result_unchanged(self, topology):
        plain = run_scan(topology)
        telemetry = Telemetry()
        instrumented = run_scan(topology, telemetry=telemetry)
        assert result_to_dict(plain) == result_to_dict(instrumented)
        assert json.dumps(plain.as_row(), sort_keys=True, default=str) == \
            json.dumps(instrumented.as_row(), sort_keys=True, default=str)

    def test_trace_spans_validate_and_are_deterministic(self, topology,
                                                        tmp_path):
        def traced(name):
            path = str(tmp_path / f"{name}.jsonl")
            telemetry = Telemetry(tracer=ScanTracer(path=path))
            run_scan(topology, telemetry=telemetry)
            telemetry.close()
            return read_trace(path)

        events = traced("a")
        validate_trace(events)
        names = [e["name"] for e in events if e["ev"] == "begin"]
        assert names[0].startswith("FlashRoute")
        assert "preprobe" in names and "main" in names
        assert any(name.startswith("round-") for name in names)

        def strip_wall(evts):
            return [{k: v for k, v in e.items() if k != "wt"}
                    for e in evts]

        assert strip_wall(events) == strip_wall(traced("b"))

    def test_progress_lines_reproducible(self, topology):
        def lines():
            stream = io.StringIO()
            telemetry = Telemetry(
                progress=ProgressReporter(interval=5.0, stream=stream))
            run_scan(topology, telemetry=telemetry)
            return stream.getvalue()

        first = lines()
        assert first == lines()
        assert first.startswith("[progress] t=")
        assert "interfaces=" in first

    def test_simnet_stats_rows(self, topology):
        faults = FaultModel(probe_loss=0.05, seed=7)
        network = SimulatedNetwork(topology, faults=faults)
        config = FlashRouteConfig(split_ttl=16, gap_limit=5, seed=1)
        result = FlashRoute(config).scan(network)
        bare = result.as_row()
        assert "cache_hits" not in bare
        result.attach_simnet_stats(network.stats())
        row = result.as_row()
        assert row["cache_hits"] == network.stats()["route_cache"]["hits"]
        assert row["probes_lost"] >= 0
        assert row["rate_limited_drops"] == 0


class TestBaselineTelemetry:
    @pytest.mark.parametrize("tool", ["yarrp-16", "scamper-16",
                                      "traceroute"])
    def test_registry_tools_record(self, topology, tool, tmp_path):
        from repro.core.scanner import ScannerOptions, create_scanner

        path = str(tmp_path / "trace.jsonl")
        stream = io.StringIO()
        telemetry = Telemetry(
            tracer=ScanTracer(path=path),
            progress=ProgressReporter(interval=5.0, stream=stream))
        scanner = create_scanner(tool, ScannerOptions(seed=1,
                                                      telemetry=telemetry))
        network = SimulatedNetwork(topology)
        result = scanner.scan(network)
        telemetry.record_network(network)
        telemetry.close()
        assert (telemetry.registry.counter("scan.probes.total")
                == result.probes_sent)
        assert (telemetry.registry.counter("simnet.probes_sent")
                == result.probes_sent)
        events = read_trace(path)
        validate_trace(events)
        assert any(e["span"] == "scan" for e in events[1:])
        assert telemetry.progress.lines_emitted > 0
