"""Text rendering helpers."""

import pytest

from repro.analysis.report import (
    fraction_within,
    render_distribution,
    render_pdf_cdf,
    render_table,
    sparkline,
)


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["Tool", "Probes"], [["FlashRoute", 1234567]])
        assert "Tool" in text
        assert "FlashRoute" in text
        assert "1,234,567" in text

    def test_title(self):
        text = render_table(["a"], [["b"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment(self):
        text = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[-1]) >= len("a-much-longer-cell")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        assert "3.14" in render_table(["x"], [[3.14159]])


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_ends_high(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_length_matches(self):
        assert len(sparkline(list(range(10)))) == 10


class TestDistributions:
    def test_render_distribution_lists_keys(self):
        text = render_distribution({1: 0.5, 2: 0.25}, "title", percent=True)
        assert "50.00%" in text
        assert "title" in text

    def test_render_pdf_cdf_accumulates(self):
        text = render_pdf_cdf({0: 0.6, 1: 0.4}, "fig")
        assert "100.00%" in text
        assert "60.00%" in text

    def test_fraction_within(self):
        pdf = {-2: 0.1, -1: 0.2, 0: 0.4, 1: 0.2, 2: 0.1}
        assert fraction_within(pdf, 0) == pytest.approx(0.4)
        assert fraction_within(pdf, 1) == pytest.approx(0.8)
        assert fraction_within(pdf, 2) == pytest.approx(1.0)
