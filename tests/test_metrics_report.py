"""Metrics-file summaries and diffs (repro.obs.report + the CLI/tools
wrappers)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    diff_rows,
    flatten_snapshot,
    metrics_report,
    render_diff,
    render_summary,
)


def write_metrics(path, values, histogram=None):
    reg = MetricsRegistry()
    for name, value in values.items():
        reg.inc(name, value)
    if histogram:
        for value in histogram:
            reg.observe("h.sizes", value)
    reg.save(str(path))
    return str(path)


class TestFlatten:
    def test_counters_gauges_and_histograms(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set_gauge("g", 1.5)
        reg.observe("h", 10)
        reg.observe("h", 20)
        flat = flatten_snapshot(reg.snapshot())
        assert flat == {"c": 3, "g": 1.5, "h.count": 2, "h.sum": 30}


class TestDiffRows:
    def test_union_and_deltas(self):
        left = MetricsRegistry()
        left.inc("shared", 10)
        left.inc("only_a", 1)
        right = MetricsRegistry()
        right.inc("shared", 13)
        right.inc("only_b", 2)
        rows = {name: (a, b, delta) for name, a, b, delta
                in diff_rows(left.snapshot(), right.snapshot())}
        assert rows["shared"] == (10, 13, 3)
        assert rows["only_a"] == (1, None, None)
        assert rows["only_b"] == (None, 2, None)


class TestRendering:
    def test_summary_table(self, tmp_path):
        path = write_metrics(tmp_path / "m.json", {"scan.probes.total": 1234})
        text = metrics_report(path)
        assert "snapshot summary" in text
        assert "scan.probes.total" in text
        assert "1,234" in text

    def test_diff_table(self, tmp_path):
        a = write_metrics(tmp_path / "a.json",
                          {"scan.probes.total": 100, "scan.rounds": 9})
        b = write_metrics(tmp_path / "b.json",
                          {"scan.probes.total": 80, "scan.rounds": 9})
        text = metrics_report(a, b)
        assert "snapshot diff" in text
        assert "-20" in text  # the probes delta, negative

    def test_changed_only_hides_equal_rows(self, tmp_path):
        a = write_metrics(tmp_path / "a.json",
                          {"same": 5, "moved": 1})
        b = write_metrics(tmp_path / "b.json",
                          {"same": 5, "moved": 4})
        text = metrics_report(a, b, changed_only=True)
        assert "moved" in text
        assert "same" not in text

    def test_histograms_diff_via_count_and_sum(self, tmp_path):
        a = write_metrics(tmp_path / "a.json", {}, histogram=[1, 2])
        b = write_metrics(tmp_path / "b.json", {}, histogram=[1, 2, 50])
        text = metrics_report(a, b, changed_only=True)
        assert "h.sizes.count" in text
        assert "h.sizes.sum" in text

    def test_render_functions_accept_snapshots(self):
        reg = MetricsRegistry()
        reg.inc("x", 1)
        snap = reg.snapshot()
        assert "x" in render_summary(snap)
        assert "Delta" in render_diff(snap, snap)


class TestToolsScript:
    def test_main(self, tmp_path, capsys):
        import importlib

        module = importlib.import_module("tools.metrics_report")
        path = write_metrics(tmp_path / "m.json", {"scan.rounds": 3})
        assert module.main([path]) == 0
        out = capsys.readouterr().out
        assert "scan.rounds" in out

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            metrics_report(str(tmp_path / "nope.json"))
