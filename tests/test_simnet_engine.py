"""Virtual clock, response queue, probe log, rate limiter, latency model."""

import pytest
from hypothesis import given, strategies as st

from repro.net.icmp import IcmpResponse, ResponseKind
from repro.net.packets import ProbeHeader
from repro.simnet.engine import ProbeLog, ResponseQueue, VirtualClock
from repro.simnet.latency import LatencyModel, jitter_fraction
from repro.simnet.ratelimit import IcmpRateLimiter


def _response(arrival):
    quoted = ProbeHeader(src=0, dst=1, ttl=1, ipid=0)
    return IcmpResponse(kind=ResponseKind.TTL_EXCEEDED, responder=2,
                        quoted=quoted, arrival_time=arrival,
                        quoted_residual_ttl=1)


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_advance_to_future(self):
        clock = VirtualClock(2.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(2.0)
        clock.advance_to(1.0)
        assert clock.now == 2.0

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestResponseQueue:
    def test_pops_in_arrival_order(self):
        queue = ResponseQueue()
        queue.push(_response(3.0))
        queue.push(_response(1.0))
        queue.push(_response(2.0))
        times = [r.arrival_time for r in queue.pop_until(10.0)]
        assert times == [1.0, 2.0, 3.0]

    def test_pop_until_respects_deadline(self):
        queue = ResponseQueue()
        queue.push(_response(1.0))
        queue.push(_response(5.0))
        assert len(list(queue.pop_until(2.0))) == 1
        assert len(queue) == 1

    def test_ties_preserve_insertion_order(self):
        queue = ResponseQueue()
        first = _response(1.0)
        second = _response(1.0)
        queue.push(first)
        queue.push(second)
        popped = list(queue.pop_until(1.0))
        assert popped[0] is first and popped[1] is second

    def test_drain_empties(self):
        queue = ResponseQueue()
        for arrival in (4.0, 2.0, 9.0):
            queue.push(_response(arrival))
        assert [r.arrival_time for r in queue.drain()] == [2.0, 4.0, 9.0]
        assert len(queue) == 0


class TestProbeLog:
    def test_round_trip(self):
        log = ProbeLog()
        log.append(0.5, 0x14000001, 7)
        log.append(1.5, 0x14000002, 32)
        assert list(log) == [(0.5, 0x14000001, 7), (1.5, 0x14000002, 32)]

    def test_len(self):
        log = ProbeLog()
        for i in range(10):
            log.append(float(i), i, 1)
        assert len(log) == 10

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=255)), max_size=50))
    def test_packing_lossless(self, entries):
        log = ProbeLog()
        for send_time, dst, ttl in entries:
            log.append(send_time, dst, ttl)
        assert list(log) == entries


class TestRateLimiter:
    def test_allows_up_to_limit(self):
        limiter = IcmpRateLimiter(3)
        assert [limiter.allow(1, 0.1) for _ in range(5)] == \
            [True, True, True, False, False]

    def test_bins_align_to_whole_seconds(self):
        limiter = IcmpRateLimiter(1)
        assert limiter.allow(1, 0.9)
        assert not limiter.allow(1, 0.99)
        assert limiter.allow(1, 1.01)

    def test_interfaces_independent(self):
        limiter = IcmpRateLimiter(1)
        assert limiter.allow(1, 0.0)
        assert limiter.allow(2, 0.0)

    def test_dropped_counter(self):
        limiter = IcmpRateLimiter(2)
        for _ in range(5):
            limiter.allow(7, 0.0)
        assert limiter.dropped == 3
        assert limiter.overprobed_interfaces == frozenset({7})

    def test_reset(self):
        limiter = IcmpRateLimiter(1)
        limiter.allow(1, 0.0)
        limiter.allow(1, 0.0)
        limiter.reset()
        assert limiter.dropped == 0
        assert limiter.allow(1, 0.0)

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            IcmpRateLimiter(0)


class TestLatencyModel:
    def test_round_trip_scales_with_depth(self):
        model = LatencyModel(hop_latency=0.002, jitter_span=0.0)
        assert model.round_trip(10, 1, 1) > model.round_trip(2, 1, 1)

    def test_one_way_is_half_ish(self):
        model = LatencyModel(hop_latency=0.002, jitter_span=0.0)
        assert model.one_way(8, 1, 1) == pytest.approx(
            model.round_trip(8, 1, 1) / 2)

    def test_deterministic(self):
        model = LatencyModel(0.002, 0.004)
        assert model.round_trip(5, 99, 7) == model.round_trip(5, 99, 7)

    def test_jitter_fraction_in_range(self):
        for dst in range(0, 1000, 37):
            assert 0.0 <= jitter_fraction(dst, 5) < 1.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LatencyModel(0.0, 0.0)
        with pytest.raises(ValueError):
            LatencyModel(0.001, -1.0)
