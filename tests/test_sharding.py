"""Sharded scanning: the byte-stable merge is the whole contract.

The acceptance pin: merged N-shard output is byte-identical to the
single-worker (``shards=1``) run of the same plan — result fingerprint,
deterministic metrics snapshot, and event logs (JSONL and binary) — at
N in {2, 4}, cached and uncached, with and without faults, composed with
retries, and across an interrupt/resume cycle.
"""

import pickle

import pytest

from repro.core.resilience import (
    CheckpointError,
    ScanInterrupted,
    load_checkpoint,
)
from repro.core.results import ScanResult
from repro.core import sharding
from repro.core.sharding import (
    DEFAULT_SLICES,
    ShardError,
    ShardPlan,
    build_slice_targets,
    load_sharded_state,
    merge_results,
    merge_simnet_stats,
    run_sharded_scan,
    slice_assignment,
)
from repro.core.targets import random_targets
from repro.obs.events import (
    BINARY_MAGIC,
    event_log_header,
    merge_event_logs,
    strip_event_header,
)
from repro.obs.metrics import METRICS_SCHEMA, deterministic_snapshot, \
    merge_snapshots
from repro.simnet.config import TopologyConfig
from repro.simnet.topology import Topology

_PREFIXES = 96
_SEED = 11


def _plan(**overrides) -> ShardPlan:
    settings = dict(tool="flashroute-16",
                    topology=TopologyConfig(num_prefixes=_PREFIXES,
                                            seed=_SEED),
                    collect_metrics=True, events_format="jsonl")
    settings.update(overrides)
    return ShardPlan(**settings)


def _deterministic(outcome):
    """The byte-stable triple a sharded run must reproduce exactly."""
    return (outcome.result.fingerprint(),
            deterministic_snapshot(outcome.metrics_snapshot),
            outcome.events_payload)


class TestByteStableMerge:
    @pytest.mark.parametrize("use_route_cache", [True, False])
    @pytest.mark.parametrize("faulty", [False, True])
    def test_worker_count_invariance(self, use_route_cache, faulty):
        overrides = {"use_route_cache": use_route_cache}
        if faulty:
            overrides.update(loss=0.03, blackout=0.05, fault_seed=9)
        baseline = _deterministic(
            run_sharded_scan(_plan(shards=1, **overrides)))
        for shards in (2, 4):
            outcome = run_sharded_scan(_plan(shards=shards, **overrides))
            assert _deterministic(outcome) == baseline, \
                f"shards={shards} diverged from the single-worker run"

    def test_binary_events_invariant(self):
        baseline = run_sharded_scan(_plan(shards=1,
                                          events_format="binary"))
        sharded = run_sharded_scan(_plan(shards=4,
                                         events_format="binary"))
        assert isinstance(baseline.events_payload, bytes)
        assert baseline.events_payload.startswith(BINARY_MAGIC)
        assert sharded.events_payload == baseline.events_payload
        assert sharded.result.fingerprint() == \
            baseline.result.fingerprint()

    def test_composes_with_retries(self):
        overrides = dict(loss=0.05, fault_seed=7, retries=2)
        baseline = _deterministic(
            run_sharded_scan(_plan(shards=1, **overrides)))
        assert _deterministic(
            run_sharded_scan(_plan(shards=4, **overrides))) == baseline

    def test_events_ring_invariant(self):
        overrides = dict(events_ring=64)
        baseline = run_sharded_scan(_plan(shards=1, **overrides))
        sharded = run_sharded_scan(_plan(shards=2, **overrides))
        assert sharded.events_payload == baseline.events_payload
        # The ring kept the header plus at most 64 event lines.
        assert len(baseline.events_payload.splitlines()) <= 65

    def test_every_tool_merges_identically(self):
        for tool in ("yarrp-32-udp-sim", "scamper-16", "traceroute"):
            baseline = run_sharded_scan(
                _plan(tool=tool, shards=1, collect_metrics=False,
                      events_format=None))
            sharded = run_sharded_scan(
                _plan(tool=tool, shards=2, collect_metrics=False,
                      events_format=None))
            assert sharded.result.fingerprint() == \
                baseline.result.fingerprint(), tool
            assert sharded.simnet_stats == baseline.simnet_stats, tool

    def test_shard_index_runs_partition_the_scan(self):
        full = run_sharded_scan(_plan(shards=1, collect_metrics=False,
                                      events_format=None))
        partials = [
            run_sharded_scan(_plan(shards=2, shard_index=index,
                                   collect_metrics=False,
                                   events_format=None))
            for index in range(2)
        ]
        assert sum(p.result.probes_sent for p in partials) == \
            full.result.probes_sent
        recombined = merge_results(
            [p.result for p in partials])
        assert recombined.fingerprint() == full.result.fingerprint()

    def test_pool_path_reports_slice_stats(self):
        outcome = run_sharded_scan(_plan(shards=4))
        assert outcome.slices_total == DEFAULT_SLICES
        assert len(outcome.slice_stats) == DEFAULT_SLICES
        assert [entry["slice"] for entry in outcome.slice_stats] == \
            list(range(DEFAULT_SLICES))
        for entry in outcome.slice_stats:
            assert entry["pid"] is not None
            assert entry["cpu_seconds"] >= 0
            assert entry["probes"] > 0


class TestShardedCheckpoint:
    def _interrupt_after(self, count):
        def hook(finished):
            if finished >= count:
                raise KeyboardInterrupt
        return hook

    def test_interrupt_resume_is_byte_identical(self, tmp_path):
        plan = _plan(shards=1, loss=0.02, fault_seed=3)
        baseline = _deterministic(run_sharded_scan(plan))
        path = str(tmp_path / "scan.ckpt")
        with pytest.raises(ScanInterrupted) as exc_info:
            run_sharded_scan(plan, checkpoint_path=path,
                             slice_hook=self._interrupt_after(5))
        assert exc_info.value.checkpoint_path == path
        document = load_checkpoint(path)
        assert document["engine"] == sharding.SHARDED_ENGINE
        resumed = run_sharded_scan(plan,
                                   resume_state=document["state"])
        assert resumed.slices_resumed == 5
        assert _deterministic(resumed) == baseline

    def test_interrupt_resume_binary_events(self, tmp_path):
        plan = _plan(shards=2, events_format="binary")
        baseline = run_sharded_scan(plan)
        path = str(tmp_path / "scan.ckpt")
        with pytest.raises(ScanInterrupted):
            run_sharded_scan(plan, checkpoint_path=path,
                             slice_hook=self._interrupt_after(3))
        state = load_checkpoint(path)["state"]
        resumed = run_sharded_scan(plan, resume_state=state)
        assert resumed.events_payload == baseline.events_payload
        assert resumed.result.fingerprint() == \
            baseline.result.fingerprint()

    def test_resume_rejects_mismatched_plan(self, tmp_path):
        plan = _plan(shards=1)
        path = str(tmp_path / "scan.ckpt")
        with pytest.raises(ScanInterrupted):
            run_sharded_scan(plan, checkpoint_path=path,
                             slice_hook=self._interrupt_after(2))
        state = load_checkpoint(path)["state"]
        with pytest.raises(CheckpointError):
            load_sharded_state(_plan(tool="scamper-16"), state)
        with pytest.raises(CheckpointError):
            load_sharded_state(_plan(slices=8), state)
        with pytest.raises(CheckpointError):
            load_sharded_state(plan, dict(state, engine="flashroute"))

    def test_interrupt_without_checkpoint_reraises(self):
        with pytest.raises(KeyboardInterrupt):
            run_sharded_scan(_plan(shards=1),
                             slice_hook=self._interrupt_after(2))


class TestFailurePropagation:
    def test_worker_error_becomes_shard_error(self, monkeypatch):
        real = sharding._execute_slice

        def broken(plan, topology, targets, slice_index):
            if slice_index == 3:
                raise RuntimeError("synthetic slice failure")
            return real(plan, topology, targets, slice_index)

        monkeypatch.setattr(sharding, "_execute_slice", broken)
        monkeypatch.setattr(sharding, "_WORKER", {})
        with pytest.raises(ShardError) as exc_info:
            run_sharded_scan(_plan(shards=1, collect_metrics=False,
                                   events_format=None))
        assert exc_info.value.slice_index == 3
        assert "synthetic slice failure" in exc_info.value.worker_traceback


class TestSliceConstruction:
    def test_slice_assignment_partitions_prefixes(self):
        assignment = slice_assignment(_PREFIXES, _SEED, DEFAULT_SLICES)
        assert len(assignment) == _PREFIXES
        assert set(assignment) == set(range(DEFAULT_SLICES))
        sizes = [assignment.count(index)
                 for index in range(DEFAULT_SLICES)]
        assert max(sizes) - min(sizes) <= 1

    def test_slice_assignment_deterministic(self):
        assert slice_assignment(500, 7, 16) == slice_assignment(500, 7, 16)

    def test_build_slice_targets_partitions_full_draw(self):
        plan = _plan(shards=1)
        topology = Topology(plan.topology)
        per_slice = build_slice_targets(topology, plan)
        assert len(per_slice) == plan.slices
        union = {}
        total = 0
        for targets in per_slice:
            total += len(targets)
            union.update(targets)
        full = random_targets(topology, 1, granularity=24)
        assert total == len(union) == len(full)
        assert union == full

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            _plan(shards=0)
        with pytest.raises(ValueError):
            _plan(slices=0)
        with pytest.raises(ValueError):
            _plan(shards=4, slices=2)
        with pytest.raises(ValueError):
            _plan(shards=2, shard_index=2)
        with pytest.raises(ValueError):
            _plan(events_format="csv")

    def test_plan_is_picklable(self):
        plan = _plan(shards=4, loss=0.1, events_format="binary")
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestMergeHelpers:
    def _result(self, **overrides):
        result = ScanResult(tool="FlashRoute-16", granularity=24)
        for key, value in overrides.items():
            setattr(result, key, value)
        return result

    def test_merge_results_sums_and_unions(self):
        a = self._result(num_targets=2, probes_sent=10, responses=8,
                         duration=1.5, rounds=3,
                         routes={1: {(9, 0xA)}}, targets={1: 0x0101011D})
        b = self._result(num_targets=3, probes_sent=20, responses=15,
                         duration=2.5, rounds=2,
                         routes={2: {(9, 0xB)}}, targets={2: 0x0202021D})
        merged = merge_results([a, b])
        assert merged.num_targets == 5
        assert merged.probes_sent == 30
        assert merged.responses == 23
        assert merged.duration == 2.5
        assert merged.rounds == 3
        assert merged.routes == {1: {(9, 0xA)}, 2: {(9, 0xB)}}
        assert merged.targets == {1: 0x0101011D, 2: 0x0202021D}

    def test_merge_results_rejects_empty_and_mixed_tools(self):
        with pytest.raises(ValueError):
            merge_results([])
        with pytest.raises(ValueError):
            merge_results([self._result(),
                           ScanResult(tool="Yarrp-32", granularity=24)])

    def test_merge_snapshots_counters_sum_gauges_last_win(self):
        a = {"schema": METRICS_SCHEMA, "counters": {"scan.probes": 5},
             "gauges": {"scan.rate_pps": 100.0},
             "histograms": {"rtt": {"bounds": [1, 2], "counts": [1, 0, 0],
                                    "count": 1, "sum": 0.5}}}
        b = {"schema": METRICS_SCHEMA, "counters": {"scan.probes": 7},
             "gauges": {"scan.rate_pps": 200.0},
             "histograms": {"rtt": {"bounds": [1, 2], "counts": [0, 2, 0],
                                    "count": 2, "sum": 3.0}}}
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"scan.probes": 12}
        assert merged["gauges"] == {"scan.rate_pps": 200.0}
        assert merged["histograms"]["rtt"] == {
            "bounds": [1, 2], "counts": [1, 2, 0], "count": 3, "sum": 3.5}

    def test_merge_snapshots_rejects_bad_input(self):
        with pytest.raises(ValueError):
            merge_snapshots([])
        with pytest.raises(ValueError):
            merge_snapshots([{"schema": "bogus/9"}])
        a = {"schema": METRICS_SCHEMA, "counters": {}, "gauges": {},
             "histograms": {"h": {"bounds": [1], "counts": [0, 0],
                                  "count": 0, "sum": 0.0}}}
        b = {"schema": METRICS_SCHEMA, "counters": {}, "gauges": {},
             "histograms": {"h": {"bounds": [2], "counts": [0, 0],
                                  "count": 0, "sum": 0.0}}}
        with pytest.raises(ValueError):
            merge_snapshots([a, b])

    def test_merge_event_logs_jsonl(self):
        header = event_log_header(binary=False)
        merged = merge_event_logs(['{"a":1}\n', '{"b":2}\n'],
                                  binary=False)
        assert merged == header + '{"a":1}\n{"b":2}\n'
        assert strip_event_header(merged, binary=False) == \
            '{"a":1}\n{"b":2}\n'

    def test_merge_event_logs_jsonl_ring_trims_merged_stream(self):
        lines = [f'{{"n":{n}}}\n' for n in range(10)]
        merged = merge_event_logs(lines, binary=False, ring=3)
        body = strip_event_header(merged, binary=False)
        assert body.splitlines() == ['{"n":7}', '{"n":8}', '{"n":9}']

    def test_merge_event_logs_binary_ring_requires_alignment(self):
        with pytest.raises(ValueError):
            merge_event_logs([b"\x01\x02\x03"], binary=True, ring=1)

    def test_strip_event_header_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            strip_event_header("not a header\n", binary=False)
        with pytest.raises(ValueError):
            strip_event_header(b"NOTMAGIC", binary=True)

    def test_merge_simnet_stats_sums_counters_keeps_limit(self):
        a = {"probes_sent": 10, "responses_generated": 8,
             "rewritten_responses": 1,
             "ratelimit": {"limit": 100, "dropped": 2},
             "route_cache": {"hits": 5}, "faults": {"probe_losses": 1}}
        b = {"probes_sent": 20, "responses_generated": 16,
             "rewritten_responses": 0,
             "ratelimit": {"limit": 100, "dropped": 3},
             "route_cache": {"hits": 7}, "faults": {"probe_losses": 2}}
        merged = merge_simnet_stats([a, b])
        assert merged["probes_sent"] == 30
        assert merged["ratelimit"] == {"limit": 100, "dropped": 5}
        assert merged["route_cache"] == {"hits": 12}
        assert merged["faults"] == {"probe_losses": 3}
        with pytest.raises(ValueError):
            merge_simnet_stats([])
