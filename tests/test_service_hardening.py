"""Daemon hardening: deadlines, load shedding, drain, fault isolation.

All asyncio tests run through ``asyncio.run`` (no plugin dependency),
mirroring test_service.py.  Deterministic cases drive
:class:`TraceService` directly — a hand-built never-finishing
:class:`Flight` stands in for a slow trace so deadline and admission
behaviour needs no wall-clock races; the hostile-client cases boot a
real loopback server.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import api
from repro.service.client import DaemonClient, trace_stream
from repro.service.daemon import (
    Flight,
    ServiceError,
    TraceService,
    start_service,
)
from repro.service.obs import ServiceTelemetry
from repro.testing.chaos import (
    MALFORMED_LINES,
    ChaosSpec,
    malformed_flood_client,
    reset_client,
    run_daemon_chaos,
    slow_loris_client,
)

_PAYLOAD = {"destination": "20.0.0.7", "flow": 1}


def _engine(prefixes=64, seed=20201027):
    return api.Engine.from_request(api.ScanRequest(prefixes=prefixes,
                                                   seed=seed))


async def _collect(service, payload):
    """Drain one handle_trace stream into (hops, terminal)."""
    hops, terminal = [], None
    async for record in service.handle_trace(payload):
        if record["type"] == "hop":
            hops.append(record)
        else:
            terminal = record
    return hops, terminal


def _stuck_flight(service, key=(0x14000007, 1)):
    """Register a flight that never finishes (a wedged trace)."""
    flight = Flight(key, service.epoch)
    service._flights[key] = flight
    return flight


def _wedge_task(flight):
    """A never-ending flight task honouring the Flight.task contract:
    cancellation finishes the flight with the shutdown error (exactly
    what ``_run_flight`` does)."""
    async def wedge():
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            flight.finish(None, error="trace cancelled (shutdown)")
            raise

    flight.task = asyncio.ensure_future(wedge())
    return flight.task


class TestDeadlines:
    def test_client_deadline_expires_mid_stream(self):
        async def run():
            service = TraceService(_engine())
            flight = _stuck_flight(service)
            payload = dict(_PAYLOAD, deadline_ms=30.0)
            hops, terminal = await _collect(service, payload)
            return service, flight, terminal

        service, flight, terminal = asyncio.run(run())
        assert terminal["type"] == "error"
        assert terminal["code"] == "deadline_exceeded"
        assert terminal["deadline_ms"] == 30.0
        assert "30" in terminal["error"]
        assert service.deadlined == 1
        assert service.errors == 0, \
            "a deadline is its own outcome, not a generic error"

    def test_default_deadline_applies_when_client_sends_none(self):
        async def run():
            service = TraceService(_engine(), default_deadline_ms=25.0)
            _stuck_flight(service)
            _, terminal = await _collect(service, dict(_PAYLOAD))
            return terminal

        terminal = asyncio.run(run())
        assert terminal["code"] == "deadline_exceeded"
        assert terminal["deadline_ms"] == 25.0

    def test_client_deadline_overrides_default(self):
        async def run():
            service = TraceService(_engine(), default_deadline_ms=10_000)
            _stuck_flight(service)
            _, terminal = await _collect(
                service, dict(_PAYLOAD, deadline_ms=20.0))
            return terminal

        terminal = asyncio.run(run())
        assert terminal["deadline_ms"] == 20.0

    def test_fast_trace_beats_its_deadline(self):
        async def run():
            service = TraceService(_engine())
            return await _collect(
                service, dict(_PAYLOAD, deadline_ms=30_000.0))

        hops, terminal = asyncio.run(run())
        assert terminal["type"] == "done"
        assert hops

    @pytest.mark.parametrize("bad", [0, -5, "soon", True, float("nan")])
    def test_invalid_deadline_is_an_error_record(self, bad):
        async def run():
            service = TraceService(_engine())
            _, terminal = await _collect(
                service, dict(_PAYLOAD, deadline_ms=bad))
            return service, terminal

        service, terminal = asyncio.run(run())
        assert terminal["type"] == "error"
        assert "deadline_ms" in terminal["error"]
        assert service.errors == 1

    def test_deadline_outcome_reaches_telemetry(self):
        async def run():
            service = TraceService(_engine(),
                                   telemetry=ServiceTelemetry())
            _stuck_flight(service)
            await _collect(service, dict(_PAYLOAD, deadline_ms=20.0))
            return service.telemetry.metrics_snapshot(service)

        snapshot = asyncio.run(run())
        assert snapshot["counters"]["service.requests.deadline"] == 1

    def test_constructor_rejects_bad_default(self):
        with pytest.raises(ValueError):
            TraceService(_engine(), default_deadline_ms=0)
        with pytest.raises(ValueError):
            TraceService(_engine(), default_deadline_ms=float("inf"))


class TestAdmissionControl:
    def _occupy(self, service):
        """Start a handle_trace that holds an admission slot for as
        long as its wedged flight lives; returns (task, flight)."""
        flight = _stuck_flight(service)
        stream = service.handle_trace(dict(_PAYLOAD))

        async def pump():
            async for _ in stream:
                pass

        return asyncio.ensure_future(pump()), flight

    def test_overflow_sheds_with_structured_record(self):
        async def run():
            service = TraceService(_engine(), max_inflight=1,
                                   telemetry=ServiceTelemetry())
            task, _ = self._occupy(service)
            await asyncio.sleep(0)  # let the occupier take the slot
            other = {"destination": "20.0.9.9", "flow": 5}
            _, terminal = await _collect(service, other)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return service, terminal

        service, terminal = asyncio.run(run())
        assert terminal["type"] == "error"
        assert terminal["code"] == "overloaded"
        assert terminal["retry_after_ms"] > 0
        assert service.shed == 1
        registry = service.telemetry.registry.snapshot()["counters"]
        assert registry["service.shed.total"] == 1
        assert registry["service.shed.overloaded"] == 1

    def test_queued_request_runs_when_slot_frees(self):
        async def run():
            service = TraceService(_engine(), max_inflight=1,
                                   max_queued=4)
            task, flight = self._occupy(service)
            await asyncio.sleep(0)
            other = {"destination": "20.0.9.9", "flow": 5}
            waiter = asyncio.ensure_future(_collect(service, other))
            await asyncio.sleep(0.01)
            assert not waiter.done(), "no free slot yet"
            # Free the slot: the wedged flight finishes, the occupier's
            # stream ends, the queued request is granted.
            flight.finish({"probes": 0})
            await asyncio.gather(task, return_exceptions=True)
            _, terminal = await waiter
            return terminal

        terminal = asyncio.run(run())
        assert terminal["type"] == "done"

    def test_deadline_expires_while_queued(self):
        async def run():
            service = TraceService(_engine(), max_inflight=1,
                                   max_queued=4)
            task, _ = self._occupy(service)
            await asyncio.sleep(0)
            other = {"destination": "20.0.9.9", "flow": 5,
                     "deadline_ms": 25.0}
            _, terminal = await _collect(service, other)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return service, terminal

        service, terminal = asyncio.run(run())
        assert terminal["code"] == "deadline_exceeded"
        assert service.deadlined == 1
        assert len(service._admit_queue) == 0, \
            "an expired waiter must leave the queue"

    def test_constructor_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            TraceService(_engine(), max_inflight=0)
        with pytest.raises(ValueError):
            TraceService(_engine(), max_queued=-1)

    def test_stats_expose_hardening_counters(self):
        service = TraceService(_engine())
        stats = service.stats()
        for key in ("deadline_exceeded", "shed", "internal_errors",
                    "draining", "queued"):
            assert key in stats


class TestDrain:
    def test_draining_sheds_new_traces(self):
        async def run():
            service = TraceService(_engine(),
                                   telemetry=ServiceTelemetry())
            service.draining = True
            _, terminal = await _collect(service, dict(_PAYLOAD))
            return service, terminal

        service, terminal = asyncio.run(run())
        assert terminal["type"] == "error"
        assert terminal["code"] == "draining"
        assert service.shed == 1
        registry = service.telemetry.registry.snapshot()["counters"]
        assert registry["service.shed.draining"] == 1
        assert service.health()["draining"] is True

    def test_cancel_flights_wakes_subscribers(self):
        async def run():
            service = TraceService(_engine())
            flight = _stuck_flight(service)
            _wedge_task(flight)
            collector = asyncio.ensure_future(
                _collect(service, dict(_PAYLOAD)))
            await asyncio.sleep(0.01)
            assert service.cancel_flights() == 1
            await service.drain()
            return await collector

        _, terminal = asyncio.run(run())
        assert terminal["type"] == "error"
        assert "cancelled" in terminal["error"]

    def test_server_drain_refuses_then_finishes(self):
        async def run():
            handle = await start_service(_engine(), port=0)
            host, port = handle.host, handle.port
            # A healthy trace completes before the drain starts.
            _, done = await trace_stream(dict(_PAYLOAD), host=host,
                                         port=port)
            await handle.drain(drain_seconds=2.0)
            assert handle.service.draining
            # The listener is closed: new connections fail.
            with pytest.raises(OSError):
                await trace_stream(dict(_PAYLOAD), host=host, port=port,
                                   timeout=1.0)
            return done

        done = asyncio.run(run())
        assert done["type"] == "done"

    def test_server_drain_cancels_stragglers_on_timeout(self):
        async def run():
            handle = await start_service(_engine(), port=0)
            service = handle.service
            flight = _stuck_flight(service)
            _wedge_task(flight)
            collector = asyncio.ensure_future(
                _collect(service, dict(_PAYLOAD)))
            await asyncio.sleep(0.01)
            await handle.drain(drain_seconds=0.05)
            _, terminal = await collector
            return terminal

        terminal = asyncio.run(run())
        assert terminal["type"] == "error"
        assert "cancelled" in terminal["error"]


class TestFaultIsolation:
    def test_broken_session_yields_internal_error_record(self):
        async def run():
            service = TraceService(_engine())

            def broken(request, start_time):
                raise RuntimeError("engine exploded")

            service.engine.open_session = broken
            _, terminal = await _collect(service, dict(_PAYLOAD))
            return service, terminal

        service, terminal = asyncio.run(run())
        assert terminal["type"] == "error"
        assert terminal["code"] == "internal"
        assert "RuntimeError" in terminal["error"]
        assert "engine exploded" in terminal["error"]
        assert service.internal_errors == 1

    def test_daemon_survives_broken_session_over_the_wire(self):
        async def run():
            handle = await start_service(_engine(), port=0)

            def broken(request, start_time):
                raise RuntimeError("engine exploded")

            handle.service.open_session = broken
            handle.service.engine.open_session = broken
            _, terminal = await trace_stream(dict(_PAYLOAD),
                                             host=handle.host,
                                             port=handle.port)
            # Same connection machinery still answers afterwards.
            _, pong = await trace_stream({"control": "ping"},
                                         host=handle.host,
                                         port=handle.port)
            await handle.close()
            return terminal, pong

        terminal, pong = asyncio.run(run())
        assert terminal["code"] == "internal"
        assert pong["type"] == "pong"


class TestHostileClients:
    def test_malformed_flood_gets_structured_errors(self):
        async def run():
            handle = await start_service(_engine(), port=0)
            summary = await malformed_flood_client(host=handle.host,
                                                   port=handle.port)
            _, pong = await trace_stream({"control": "ping"},
                                         host=handle.host,
                                         port=handle.port)
            await handle.close()
            return summary, pong

        summary, pong = asyncio.run(run())
        assert summary["lines_sent"] == len(MALFORMED_LINES)
        assert summary["error_records"] == len(MALFORMED_LINES), \
            "every malformed line gets its own structured error record"
        assert pong["type"] == "pong"

    def test_reset_and_slow_loris_leave_daemon_alive(self):
        async def run():
            handle = await start_service(_engine(), port=0)
            await asyncio.gather(
                reset_client(dict(_PAYLOAD), host=handle.host,
                             port=handle.port),
                slow_loris_client(host=handle.host, port=handle.port,
                                  duration=0.1),
                return_exceptions=True)
            _, pong = await trace_stream({"control": "ping"},
                                         host=handle.host,
                                         port=handle.port)
            await handle.close()
            return pong

        assert asyncio.run(run())["type"] == "pong"

    def test_run_daemon_chaos_summary(self):
        async def run():
            handle = await start_service(_engine(), port=0)
            spec = ChaosSpec(seed=1, slow_loris=2, disconnects=2,
                             resets=2, malformed=2)
            summary = await run_daemon_chaos(
                spec, [dict(_PAYLOAD, id=0)], host=handle.host,
                port=handle.port)
            _, pong = await trace_stream({"control": "ping"},
                                         host=handle.host,
                                         port=handle.port)
            await handle.close()
            return summary, pong

        summary, pong = asyncio.run(run())
        assert summary["clients"] == 8
        assert summary["client_failures"] == 0
        assert pong["type"] == "pong"


class TestClientTimeout:
    def test_wedged_server_times_out_with_service_error(self):
        async def run():
            async def black_hole(reader, writer):
                # Accept, read, never answer.
                await asyncio.Event().wait()

            server = await asyncio.start_server(black_hole,
                                                host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with DaemonClient(host="127.0.0.1", port=port,
                                        timeout=0.2) as client:
                    with pytest.raises(ServiceError) as exc_info:
                        await client.control("ping")
                return str(exc_info.value)
            finally:
                server.close()
                await server.wait_closed()

        message = asyncio.run(run())
        assert "timed out" in message
        assert "not responding" in message

    def test_timeout_none_waits(self):
        async def run():
            handle = await start_service(_engine(), port=0)
            async with DaemonClient(host=handle.host, port=handle.port,
                                    timeout=None) as client:
                pong = await client.control("ping")
            await handle.close()
            return pong

        assert asyncio.run(run())["type"] == "pong"
