"""Yarrp baseline: stateless bulk probing, fill mode, protection, UDP bug."""

import pytest

from repro.baselines.yarrp import Yarrp, YarrpConfig, YarrpUdpEncodingError
from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.simnet.network import SimulatedNetwork


class TestConfig:
    def test_yarrp32_label(self):
        assert YarrpConfig.yarrp_32().label == "Yarrp-32"

    def test_yarrp16_label(self):
        assert YarrpConfig.yarrp_16().label == "Yarrp-16"

    def test_protection_label(self):
        assert "3-hop" in YarrpConfig.yarrp_32(neighborhood_radius=3).label

    def test_bulk_ttl(self):
        assert YarrpConfig.yarrp_32().bulk_ttl == 32
        assert YarrpConfig.yarrp_16().bulk_ttl == 16

    @pytest.mark.parametrize("kwargs", [
        {"max_ttl": 0}, {"max_ttl": 64}, {"fill_start": 0},
        {"probe_type": "icmp"}, {"neighborhood_radius": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            YarrpConfig(**kwargs)


class TestYarrp32:
    def test_probe_count_is_exact(self, tiny_topology, tiny_targets):
        result = Yarrp(YarrpConfig.yarrp_32()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        assert result.probes_sent == 32 * len(tiny_targets)

    def test_probes_every_ttl_equally(self, tiny_topology, tiny_targets):
        result = Yarrp(YarrpConfig.yarrp_32()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        counts = set(result.ttl_probe_histogram[ttl] for ttl in range(1, 33))
        assert counts == {len(tiny_targets)}

    def test_interfaces_are_real(self, tiny_topology, tiny_targets):
        result = Yarrp(YarrpConfig.yarrp_32()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        assert result.interfaces() <= set(tiny_topology.iface_addrs)

    def test_deterministic(self, tiny_topology, tiny_targets):
        a = Yarrp(YarrpConfig.yarrp_32()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        b = Yarrp(YarrpConfig.yarrp_32()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        assert a.routes == b.routes
        assert a.probes_sent == b.probes_sent

    def test_tcp_finds_fewer_than_udp_simulation(self, tiny_topology,
                                                 tiny_targets):
        tcp = Yarrp(YarrpConfig.yarrp_32()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        udp_sim = FlashRoute(FlashRouteConfig.yarrp32_udp_simulation()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        assert tcp.interface_count() <= udp_sim.interface_count()


class TestYarrp16FillMode:
    def test_bulk_plus_fill_probe_count(self, tiny_topology, tiny_targets):
        result = Yarrp(YarrpConfig.yarrp_16()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        bulk = 16 * len(tiny_targets)
        assert result.probes_sent >= bulk
        assert result.probes_sent < 32 * len(tiny_targets)

    def test_fill_probes_only_beyond_bulk(self, tiny_topology, tiny_targets):
        result = Yarrp(YarrpConfig.yarrp_16()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        for ttl in range(1, 17):
            assert result.ttl_probe_histogram[ttl] == len(tiny_targets)
        for ttl in range(17, 33):
            assert result.ttl_probe_histogram.get(ttl, 0) < len(tiny_targets)

    def test_fill_mode_loses_interfaces(self, tiny_topology, tiny_targets):
        full = Yarrp(YarrpConfig.yarrp_32()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        fill = Yarrp(YarrpConfig.yarrp_16()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        assert fill.interface_count() < full.interface_count()

    def test_fill_chain_contiguity(self, tiny_topology, tiny_targets):
        """A fill probe at TTL t implies the same destination was probed at
        every TTL 17..t-1 too (the chain is sequential)."""
        network = SimulatedNetwork(tiny_topology, log_probes=True)
        Yarrp(YarrpConfig.yarrp_16()).scan(network, targets=tiny_targets)
        by_dst = {}
        for _t, dst, ttl in network.probe_log:
            by_dst.setdefault(dst, set()).add(ttl)
        for ttls in by_dst.values():
            deep = sorted(t for t in ttls if t > 16)
            assert deep == list(range(17, 17 + len(deep)))


class TestNeighborhoodProtection:
    def test_protection_reduces_probes(self, tiny_topology, tiny_targets):
        # The scan must outlast the staleness timeout for protection to arm
        # (the paper's hour-long scans dwarf the 30 s default).
        plain = Yarrp(YarrpConfig.yarrp_32(probing_rate=500.0)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        protected = Yarrp(YarrpConfig.yarrp_32(
            probing_rate=500.0, neighborhood_radius=3,
            neighborhood_timeout=1.0)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        assert protected.probes_sent < plain.probes_sent
        assert protected.skipped_probes > 0

    def test_protection_only_affects_protected_ttls(self, tiny_topology,
                                                    tiny_targets):
        protected = Yarrp(YarrpConfig.yarrp_32(
            probing_rate=500.0, neighborhood_radius=3,
            neighborhood_timeout=1.0)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        for ttl in range(4, 33):
            assert protected.ttl_probe_histogram[ttl] == len(tiny_targets)


class TestUdpMode:
    def test_reproduces_message_too_long(self, tiny_topology, tiny_targets):
        """Paper footnote 2: Yarrp's UDP timestamp encoding outgrows the
        MTU and the scan dies with 'Message too long'."""
        scanner = Yarrp(YarrpConfig(max_ttl=32, probe_type="udp",
                                    probing_rate=100.0))
        with pytest.raises(YarrpUdpEncodingError):
            scanner.scan(SimulatedNetwork(tiny_topology),
                         targets=tiny_targets)

    def test_udp_works_for_very_short_scans(self, tiny_topology):
        """Under ~1.5 s of scan time the length field still fits."""
        targets = {next(iter(sorted(tiny_topology.scanned_prefixes()))):
                   (tiny_topology.base_prefix << 8) | 5}
        scanner = Yarrp(YarrpConfig(max_ttl=4, probe_type="udp",
                                    probing_rate=1000.0))
        result = scanner.scan(SimulatedNetwork(tiny_topology),
                              targets=targets)
        assert result.probes_sent == 4
