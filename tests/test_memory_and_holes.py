"""Memory projections (§5.4) and route-hole accounting (§4.2.2)."""

import pytest

from repro.analysis.intrusiveness import count_route_holes
from repro.core.dcb import PAPER_BYTES_PER_DCB, projected_scan_memory
from repro.core.results import ScanResult

GIB = 2**30
MIB = 2**20


class TestMemoryProjection:
    def test_slash24_matches_paper(self):
        """Paper §3.4: ~900 MB for the full /24 array."""
        assert projected_scan_memory(24) == pytest.approx(900 * MIB, rel=0.1)

    def test_slash28_under_15gb(self):
        """Paper §5.4: one target per /28 'would only require < 15GB'."""
        assert projected_scan_memory(28) < 15 * GIB

    def test_slash32_around_230gb(self):
        """Paper §5.4: 'up to 230GB for a complete /32 scan'."""
        assert projected_scan_memory(32) == pytest.approx(230 * GIB, rel=0.1)

    def test_exponential_growth(self):
        assert projected_scan_memory(28) == 16 * projected_scan_memory(24)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            projected_scan_memory(33)
        with pytest.raises(ValueError):
            projected_scan_memory(24, bytes_per_dcb=0)

    def test_custom_bytes(self):
        assert projected_scan_memory(10, bytes_per_dcb=1) == 1024

    def test_paper_constant_is_sane(self):
        # Listing 1 fields (7 bytes) + two 32-bit links + mutex/overhead.
        assert 15 < PAPER_BYTES_PER_DCB < 128


class TestRouteHoles:
    def _result(self):
        result = ScanResult(tool="t")
        result.targets = {100: (100 << 8) | 7}
        result.add_hop(100, 2, 0xA2)
        result.add_hop(100, 4, 0xA4)
        result.record_destination(100, 5)
        return result

    def test_counts_probed_gaps(self):
        log = [(0.0, (100 << 8) | 7, ttl) for ttl in (1, 2, 3, 4, 5)]
        # TTLs 1 and 3 were probed, are below the route end, and have no
        # recorded hop: two holes.
        assert count_route_holes(self._result(), log) == 2

    def test_unprobed_gaps_are_not_holes(self):
        log = [(0.0, (100 << 8) | 7, ttl) for ttl in (2, 4, 5)]
        assert count_route_holes(self._result(), log) == 0

    def test_beyond_route_end_is_not_a_hole(self):
        log = [(0.0, (100 << 8) | 7, ttl) for ttl in (6, 7, 8)]
        assert count_route_holes(self._result(), log) == 0

    def test_destination_position_is_not_a_hole(self):
        log = [(0.0, (100 << 8) | 7, 5)]
        assert count_route_holes(self._result(), log) == 0

    def test_silent_routes_skipped(self):
        result = ScanResult(tool="t")
        log = [(0.0, (200 << 8) | 1, ttl) for ttl in range(1, 10)]
        assert count_route_holes(result, log) == 0

    def test_rate_limited_scan_has_more_holes(self, tiny_topology,
                                              tiny_targets):
        """Drive the same scan against a strict and a loose rate limit: the
        strict one must leave more holes (the §4.2.2 mechanism)."""
        from repro.core.config import FlashRouteConfig
        from repro.core.prober import FlashRoute
        from repro.simnet.network import SimulatedNetwork

        def run(limit):
            network = SimulatedNetwork(tiny_topology, log_probes=True,
                                       rate_limit=limit)
            result = FlashRoute(FlashRouteConfig(
                preprobe="none", redundancy_removal=False,
                probing_rate=50_000.0)).scan(network, targets=tiny_targets)
            return count_route_holes(result, network.probe_log)

        assert run(limit=5) > run(limit=10**9)
