"""Direct unit tests for :class:`IcmpRateLimiter`.

The one-second-bin semantics were previously only exercised indirectly
through full scans; these pin them down at the unit level — in particular
bin rollover at whole-second boundaries and the generation-counter reset
(a reset between scans must clear *all* accounting, including a partially
filled bin mid-second).
"""

from __future__ import annotations

import pytest

from repro.simnet.ratelimit import IcmpRateLimiter


def _limiters(limit):
    """Both implementations: array-backed (sized) and dict fallback."""
    return [IcmpRateLimiter(limit, num_interfaces=8),
            IcmpRateLimiter(limit)]


class TestBinAccounting:
    def test_first_limit_requests_pass_then_drop(self):
        for limiter in _limiters(3):
            results = [limiter.allow(0, 0.5) for _ in range(5)]
            assert results == [True, True, True, False, False]
            assert limiter.dropped == 2
            assert limiter.overprobed_interfaces == frozenset({0})

    def test_interfaces_are_independent(self):
        for limiter in _limiters(1):
            assert limiter.allow(0, 0.1)
            assert limiter.allow(1, 0.1)
            assert not limiter.allow(0, 0.2)
            assert limiter.overprobed_interfaces == frozenset({0})

    def test_rollover_at_whole_second_boundary(self):
        for limiter in _limiters(2):
            # Fill the [0, 1) bin to the brim.
            assert limiter.allow(0, 0.0)
            assert limiter.allow(0, 0.999999)
            assert not limiter.allow(0, 0.9999999)
            # Crossing t=1.0 opens a fresh bin: counting restarts.
            assert limiter.allow(0, 1.0)
            assert limiter.allow(0, 1.5)
            assert not limiter.allow(0, 1.9)
            # Bins align to whole seconds, not to the first request:
            # 2.7 -> bin 2 even though the last bin started at exactly 1.0.
            assert limiter.allow(0, 2.7)
            assert limiter.dropped == 2

    def test_bins_align_to_virtual_seconds_not_elapsed_time(self):
        for limiter in _limiters(1):
            assert limiter.allow(0, 41.9)
            # Only 0.2s later, but in the next whole-second bin.
            assert limiter.allow(0, 42.1)
            # Same bin as the previous request: over the limit.
            assert not limiter.allow(0, 42.8)

    def test_interface_beyond_size_hint_still_accounted(self):
        limiter = IcmpRateLimiter(1, num_interfaces=2)
        assert limiter.allow(100, 0.1)
        assert not limiter.allow(100, 0.2)
        assert limiter.overprobed_interfaces == frozenset({100})

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError):
            IcmpRateLimiter(0)


class TestReset:
    def test_reset_clears_partial_bin_mid_second(self):
        for limiter in _limiters(2):
            # Partially fill (and overflow) the bin at second 5.
            limiter.allow(3, 5.1)
            limiter.allow(3, 5.2)
            assert not limiter.allow(3, 5.3)
            limiter.reset()
            # Same interface, same virtual second: a fresh scan gets the
            # full budget again — stale bins must not leak through.
            assert limiter.allow(3, 5.4)
            assert limiter.allow(3, 5.5)
            assert not limiter.allow(3, 5.6)

    def test_reset_clears_counters_and_overprobed(self):
        for limiter in _limiters(1):
            limiter.allow(0, 0.1)
            limiter.allow(0, 0.2)
            assert limiter.dropped == 1
            assert limiter.overprobed_interfaces == frozenset({0})
            limiter.reset()
            assert limiter.dropped == 0
            assert limiter.overprobed_interfaces == frozenset()

    def test_repeated_resets_stay_correct(self):
        for limiter in _limiters(1):
            for _ in range(5):
                assert limiter.allow(2, 9.5)
                assert not limiter.allow(2, 9.6)
                limiter.reset()
