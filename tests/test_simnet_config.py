"""Simnet configuration helpers, scenarios, and entity edge cases."""

import random

import pytest

from repro.simnet.config import (
    SCENARIOS,
    TopologyConfig,
    scaled_probing_rate,
    weighted_choice,
)
from repro.simnet.entities import (
    MAX_DIAMOND_DEPTH,
    VOID_HOP,
    HopKind,
    lb_group_id,
    lb_offset,
    lb_token,
)


class TestScaledProbingRate:
    def test_paper_scale_is_full_rate(self):
        assert scaled_probing_rate(2**24) == pytest.approx(100_000.0)

    def test_proportional(self):
        assert scaled_probing_rate(2**23) == pytest.approx(50_000.0)

    def test_floor(self):
        assert scaled_probing_rate(1) == 1.0

    def test_custom_paper_rate(self):
        assert scaled_probing_rate(2**24, paper_rate=10_000.0) == \
            pytest.approx(10_000.0)


class TestWeightedChoice:
    def test_single_entry(self):
        rng = random.Random(0)
        assert weighted_choice(rng, ((7, 100),)) == 7

    def test_respects_weights(self):
        rng = random.Random(1)
        draws = [weighted_choice(rng, ((1, 90), (2, 10)))
                 for _ in range(2000)]
        ones = draws.count(1)
        assert 1600 < ones < 2000

    def test_all_values_reachable(self):
        rng = random.Random(2)
        table = ((1, 1), (2, 1), (3, 1))
        seen = {weighted_choice(rng, table) for _ in range(500)}
        assert seen == {1, 2, 3}


class TestScenarios:
    def test_presets_exist(self):
        assert {"tiny", "small", "default", "bench"} <= set(SCENARIOS)

    def test_presets_are_valid_configs(self):
        for name, config in SCENARIOS.items():
            assert isinstance(config, TopologyConfig)
            assert config.num_prefixes > 0

    def test_sizes_ordered(self):
        assert SCENARIOS["tiny"].num_prefixes < \
            SCENARIOS["small"].num_prefixes < \
            SCENARIOS["bench"].num_prefixes


class TestConfigValidation:
    def test_infrastructure_overlap_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_prefixes=256,
                           base_prefix_addr=0x14000000,
                           infrastructure_base_addr=0x14000100)

    def test_rate_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            TopologyConfig(icmp_rate_limit=0)

    def test_defaults_are_valid(self):
        TopologyConfig()  # must not raise


class TestHopTokens:
    def test_plain_token_round_trip(self):
        for group in (0, 1, 7, 1000):
            for offset in range(MAX_DIAMOND_DEPTH):
                token = lb_token(group, offset)
                assert token < 0
                assert lb_group_id(token) == group
                assert lb_offset(token) == offset

    def test_distinct_tokens(self):
        tokens = {lb_token(g, o) for g in range(10)
                  for o in range(MAX_DIAMOND_DEPTH)}
        assert len(tokens) == 10 * MAX_DIAMOND_DEPTH

    def test_offset_bounds(self):
        with pytest.raises(ValueError):
            lb_token(0, MAX_DIAMOND_DEPTH)
        with pytest.raises(ValueError):
            lb_token(0, -1)

    def test_decoders_reject_plain_tokens(self):
        with pytest.raises(ValueError):
            lb_group_id(5)
        with pytest.raises(ValueError):
            lb_offset(0)

    def test_void_hop_singleton(self):
        assert VOID_HOP.kind is HopKind.VOID
        assert VOID_HOP.iface == -1
