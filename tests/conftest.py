"""Shared fixtures: one small topology per session, fresh networks per test.

The topology is deterministic (seeded), so expensive generation happens once
and tests can assert exact properties against it.
"""

from __future__ import annotations

import pytest

from repro.core.targets import hitlist_targets, random_targets
from repro.simnet.config import TopologyConfig
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology

SMALL_PREFIXES = 512
TINY_PREFIXES = 128


@pytest.fixture(scope="session")
def small_topology() -> Topology:
    """512-prefix topology shared (read-only) by most tests."""
    return Topology(TopologyConfig(num_prefixes=SMALL_PREFIXES, seed=7))


@pytest.fixture(scope="session")
def tiny_topology() -> Topology:
    """128-prefix topology for the heavier integration scans."""
    return Topology(TopologyConfig(num_prefixes=TINY_PREFIXES, seed=3))


@pytest.fixture()
def network(small_topology: Topology) -> SimulatedNetwork:
    """A fresh network (clean rate limiter/counters) over the shared
    topology."""
    return SimulatedNetwork(small_topology)


@pytest.fixture()
def tiny_network(tiny_topology: Topology) -> SimulatedNetwork:
    return SimulatedNetwork(tiny_topology)


@pytest.fixture(scope="session")
def small_targets(small_topology: Topology):
    return random_targets(small_topology, seed=1)


@pytest.fixture(scope="session")
def small_hitlist(small_topology: Topology):
    return hitlist_targets(small_topology)


@pytest.fixture(scope="session")
def tiny_targets(tiny_topology: Topology):
    return random_targets(tiny_topology, seed=1)


def first_prefix_with(topology: Topology, predicate) -> int:
    """Test helper: the first scanned /24 whose PrefixInfo satisfies
    ``predicate``; raises if none exists (so tests fail loudly)."""
    for offset, record in enumerate(topology.prefixes):
        if predicate(record, topology.stubs[record.stub_id]):
            return topology.base_prefix + offset
    raise AssertionError("no prefix satisfies the predicate")
