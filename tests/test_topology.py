"""Topology generator invariants and the hop_at ground-truth oracle."""

import pytest

from repro.simnet.config import TopologyConfig
from repro.simnet.entities import HopKind
from repro.simnet.topology import Topology

from conftest import first_prefix_with


class TestGenerationInvariants:
    def test_every_prefix_has_a_record(self, small_topology):
        assert len(small_topology.prefixes) == small_topology.num_prefixes

    def test_stubs_tile_the_space(self, small_topology):
        covered = 0
        for stub in small_topology.stubs:
            assert stub.first_offset == covered
            covered += stub.block_size
        assert covered == small_topology.num_prefixes

    def test_prefix_records_point_at_owning_stub(self, small_topology):
        for offset, record in enumerate(small_topology.prefixes):
            stub = small_topology.stubs[record.stub_id]
            assert stub.first_offset <= offset < (stub.first_offset
                                                  + stub.block_size)

    def test_interface_addresses_unique(self, small_topology):
        addrs = small_topology.iface_addrs
        assert len(addrs) == len(set(addrs))

    def test_gateway_depth_matches_transit_length(self, small_topology):
        for stub in small_topology.stubs:
            assert stub.gateway_depth == len(stub.transit) + 1

    def test_transit_depth_ordering(self, small_topology):
        topo = small_topology
        for stub in topo.stubs:
            for depth, token in enumerate(stub.transit, start=1):
                iface = topo.resolve_token(token, flow=0)
                assert topo.iface_depth[iface] == depth

    def test_root_interface_always_responsive(self, small_topology):
        # Backward probing must be able to terminate at TTL 1 (§3.2).
        root_token = small_topology.stubs[0].transit[0]
        root = small_topology.resolve_token(root_token, 0)
        assert small_topology.udp_resp[root]

    def test_all_stubs_share_the_same_root(self, small_topology):
        roots = {small_topology.resolve_token(stub.transit[0], 0)
                 for stub in small_topology.stubs}
        assert len(roots) == 1

    def test_gateway_address_inside_first_prefix(self, small_topology):
        topo = small_topology
        for stub in topo.stubs:
            gateway_addr = topo.iface_addrs[stub.gateway_iface]
            assert gateway_addr >> 8 == topo.base_prefix + stub.first_offset

    def test_internal_iface_addresses_inside_their_prefix(self, small_topology):
        topo = small_topology
        for offset, record in enumerate(topo.prefixes):
            for iface in record.internal_ifaces:
                assert topo.iface_addrs[iface] >> 8 == topo.base_prefix + offset

    def test_hitlist_host_always_set(self, small_topology):
        for record in small_topology.prefixes:
            assert 1 <= record.hitlist_host <= 254

    def test_deterministic_generation(self):
        a = Topology(TopologyConfig(num_prefixes=128, seed=99))
        b = Topology(TopologyConfig(num_prefixes=128, seed=99))
        assert a.iface_addrs == b.iface_addrs
        assert [s.transit for s in a.stubs] == [s.transit for s in b.stubs]
        assert [r.hitlist_host for r in a.prefixes] == \
            [r.hitlist_host for r in b.prefixes]

    def test_seed_changes_topology(self):
        a = Topology(TopologyConfig(num_prefixes=128, seed=1))
        b = Topology(TopologyConfig(num_prefixes=128, seed=2))
        assert a.iface_addrs != b.iface_addrs

    def test_lb_groups_have_multiple_branches(self, small_topology):
        for branches in small_topology.lb_groups:
            assert len(branches) >= 2
            levels = {len(branch) for branch in branches}
            assert len(levels) == 1  # all branches span the same hop count


class TestConfigValidation:
    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            TopologyConfig(base_prefix_addr=0x14000001)

    def test_rejects_nonpositive_prefixes(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_prefixes=0)

    def test_rejects_overflowing_space(self):
        with pytest.raises(ValueError):
            TopologyConfig(base_prefix_addr=(2**24 - 1) << 8, num_prefixes=2)


class TestHopAt:
    def test_transit_hops_resolve(self, small_topology):
        topo = small_topology
        stub = topo.stubs[0]
        dst = (topo.base_prefix + stub.first_offset) << 8 | 200
        for ttl in range(1, len(stub.transit) + 1):
            hop = topo.hop_at(dst, ttl)
            assert hop.kind is HopKind.ROUTER
            assert topo.iface_depth[hop.iface] == ttl

    def test_gateway_expires_ordinary_probes_at_its_depth(self, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: not record.flap
            and 200 not in record.special_hosts)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        dst = (prefix << 8) | 200
        hop = topo.hop_at(dst, stub.gateway_depth)
        assert hop.kind is HopKind.ROUTER
        assert hop.iface == stub.gateway_iface

    def test_active_host_destination(self, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: bool(record.active_hosts)
            and not record.flap and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        octet = min(record.active_hosts)
        dst = (prefix << 8) | octet
        depth = stub.gateway_depth + len(record.internal_ifaces) + 1
        hop = topo.hop_at(dst, depth)
        assert hop.kind is HopKind.DESTINATION
        assert hop.residual_ttl == 1
        assert hop.dest_depth == depth

    def test_destination_residual_arithmetic(self, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: bool(record.active_hosts)
            and not record.flap and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        dst = (prefix << 8) | min(record.active_hosts)
        depth = stub.gateway_depth + len(record.internal_ifaces) + 1
        hop = topo.hop_at(dst, 32)
        assert hop.kind is HopKind.DESTINATION
        # distance = initial - residual + 1 must recover the true depth
        assert 32 - hop.residual_ttl + 1 == depth

    def test_unassigned_traverses_interior_then_dies(self, small_topology):
        """Packets to unassigned addresses are forwarded down the prefix's
        interior chain and die silently at the last-hop router (§5.1: this
        is how random targets reveal interiors hitlist targets hide)."""
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: not record.active_hosts
            and not stub.loop_unassigned and not stub.host_unreachable
            and not record.flap and not stub.ttl_reset
            and len(record.internal_ifaces) >= 1)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        # Octet below 128: the lower host half, served by the primary
        # last-hop chain (octets >= 128 may sit behind alt_last_hop).
        octet = 100
        if octet in record.special_hosts:
            octet = 101
        dst = (prefix << 8) | octet
        # Interior hops are traversed...
        hop = topo.hop_at(dst, stub.gateway_depth + 1)
        assert hop.kind is HopKind.ROUTER
        assert hop.iface == record.internal_ifaces[0]
        # ...but at the would-be host position there is only silence.
        dest_depth = stub.gateway_depth + len(record.internal_ifaces) + 1
        assert topo.hop_at(dst, dest_depth).kind is HopKind.VOID
        assert topo.hop_at(dst, dest_depth + 3).kind is HopKind.VOID

    def test_loop_stub_answers_forever(self):
        topo = Topology(TopologyConfig(num_prefixes=512, seed=5,
                                       default_route_loop_probability=0.4))
        prefix = first_prefix_with(
            topo, lambda record, stub: stub.loop_unassigned
            and not record.active_hosts and not record.flap
            and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        octet = 200 if 200 not in record.special_hosts else 199
        dst = (prefix << 8) | octet
        dest_depth = stub.gateway_depth + len(record.internal_ifaces) + 1
        hops = [topo.hop_at(dst, ttl) for ttl in
                range(dest_depth, dest_depth + 6)]
        assert all(h.kind is HopKind.LOOP_ROUTER for h in hops)
        # The loop alternates between two interfaces.
        assert len({h.iface for h in hops}) == 2

    def test_host_unreachable_stub(self, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: stub.host_unreachable
            and not stub.loop_unassigned and not record.active_hosts
            and not record.flap and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        octet = 200 if 200 not in record.special_hosts else 199
        dst = (prefix << 8) | octet
        dest_depth = stub.gateway_depth + len(record.internal_ifaces) + 1
        hop = topo.hop_at(dst, dest_depth + 1)
        assert hop.kind is HopKind.GATEWAY_UNREACHABLE
        expected = (record.internal_ifaces[-1] if record.internal_ifaces
                    else stub.gateway_iface)
        assert hop.iface == expected

    def test_ttl_reset_middlebox_boosts_residual(self):
        config = TopologyConfig(num_prefixes=512, seed=13,
                                ttl_reset_middlebox_probability=0.5,
                                stub_active_probability=0.9)
        topo = Topology(config)
        prefix = first_prefix_with(
            topo, lambda record, stub: stub.ttl_reset
            and bool(record.active_hosts) and not record.flap)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        dst = (prefix << 8) | min(record.active_hosts)
        # Any TTL that crosses the gateway reaches the destination.
        hop = topo.hop_at(dst, stub.gateway_depth + 1)
        assert hop.kind is HopKind.DESTINATION
        # And the residual is normalized up, so the computed distance is
        # wildly wrong — the Fig. 3 tail.
        distance = (stub.gateway_depth + 1) - hop.residual_ttl + 1
        assert distance != hop.dest_depth

    def test_flap_shifts_route_in_odd_epochs(self, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: record.flap
            and bool(record.active_hosts) and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        even = topo.destination_distance(dst, epoch=0)
        odd = topo.destination_distance(dst, epoch=1)
        assert odd == even + 1

    def test_out_of_space_destination_is_void(self, small_topology):
        hop = small_topology.hop_at(0x01010101, 5)
        assert hop.kind is HopKind.VOID

    def test_nonpositive_ttl_is_void(self, small_topology):
        dst = (small_topology.base_prefix << 8) | 5
        assert small_topology.hop_at(dst, 0).kind is HopKind.VOID


def prefix_of_gateway(topo, stub):
    return topo.iface_addrs[stub.gateway_iface] >> 8


class TestTrueRoute:
    def test_route_length_bounded(self, small_topology):
        dst = (small_topology.base_prefix << 8) | 77
        route = small_topology.true_route(dst, max_ttl=32)
        assert len(route) == 32

    def test_route_entries_are_addresses_or_none(self, small_topology):
        topo = small_topology
        dst = (topo.base_prefix << 8) | 77
        known = set(topo.iface_addrs)
        for entry in topo.true_route(dst):
            assert entry is None or entry in known

    def test_flow_changes_lb_branches_only(self, small_topology):
        topo = small_topology
        # Any two flows agree everywhere except load-balancer diamonds.
        for offset in range(0, topo.num_prefixes, 17):
            dst = ((topo.base_prefix + offset) << 8) | 99
            route_a = topo.true_route(dst, flow=1000)
            route_b = topo.true_route(dst, flow=2000)
            for hop_a, hop_b in zip(route_a, route_b):
                if hop_a != hop_b:
                    iface_a = topo.addr_to_iface.get(hop_a)
                    iface_b = topo.addr_to_iface.get(hop_b)
                    members = {m for group in topo.lb_groups
                               for branch in group for m in branch}
                    assert iface_a is None or iface_a in members
                    assert iface_b is None or iface_b in members


class TestReachableInterfaces:
    def test_reachable_is_subset_of_all(self, small_topology):
        reachable = small_topology.reachable_interfaces()
        assert all(0 <= iface < len(small_topology.iface_addrs)
                   for iface in reachable)

    def test_reachable_only_contains_responsive(self, small_topology):
        for iface in small_topology.reachable_interfaces():
            assert small_topology.udp_resp[iface]

    def test_max_ttl_monotone(self, small_topology):
        shallow = small_topology.reachable_interfaces(max_ttl=8)
        deep = small_topology.reachable_interfaces(max_ttl=32)
        assert shallow <= deep

    def test_tcp_reachable_subset_of_udp(self, small_topology):
        # Every TCP-responsive interface responds to UDP too (by model).
        tcp = small_topology.reachable_interfaces(udp=False)
        udp = small_topology.reachable_interfaces(udp=True)
        assert tcp <= udp
