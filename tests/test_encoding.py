"""FlashRoute probe encoding: the heart of the stateless receive path."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoding import (
    EncodingError,
    TIMESTAMP_WRAP_MS,
    decode_response,
    destination_intact,
    encode_probe,
    rtt_ms,
    yarrp_elapsed_from_seq,
    yarrp_tcp_seq,
)
from repro.net.checksum import flow_source_port
from repro.net.icmp import IcmpResponse, ResponseKind
from repro.net.packets import ProbeHeader, UDP_HEADER_LEN


def _response_for(marking, dst, residual=1, arrival=0.5):
    quoted = ProbeHeader(src=0, dst=dst, ttl=residual, ipid=marking.ipid,
                         src_port=marking.src_port, udp_length=marking.udp_length)
    return IcmpResponse(kind=ResponseKind.TTL_EXCEEDED, responder=7,
                        quoted=quoted, arrival_time=arrival,
                        quoted_residual_ttl=residual)


class TestEncode:
    def test_source_port_is_checksum_of_destination(self):
        marking = encode_probe(0x14000001, 16, 0.0)
        assert marking.src_port == flow_source_port(0x14000001, 0)

    def test_scan_offset_changes_port(self):
        base = encode_probe(0x14000001, 16, 0.0, scan_offset=0)
        extra = encode_probe(0x14000001, 16, 0.0, scan_offset=1)
        assert base.src_port != extra.src_port

    def test_udp_length_carries_low_timestamp_bits(self):
        marking = encode_probe(1, 1, send_time=0.063)  # 63 ms
        assert marking.udp_length == UDP_HEADER_LEN + 63

    def test_udp_length_bounded_by_six_bits(self):
        for ms in range(0, 200, 7):
            marking = encode_probe(1, 1, send_time=ms / 1000.0)
            assert UDP_HEADER_LEN <= marking.udp_length < UDP_HEADER_LEN + 64

    @pytest.mark.parametrize("ttl", [0, 33, -1, 64])
    def test_rejects_unencodable_ttl(self, ttl):
        with pytest.raises(EncodingError):
            encode_probe(1, ttl, 0.0)

    def test_ipid_fits_sixteen_bits(self):
        for ttl in (1, 16, 32):
            marking = encode_probe(1, ttl, 65.0, is_preprobe=True)
            assert 0 <= marking.ipid <= 0xFFFF


class TestDecode:
    @given(st.integers(min_value=1, max_value=32), st.booleans(),
           st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_round_trip(self, ttl, preprobe, send_time):
        marking = encode_probe(0x14000042, ttl, send_time,
                               is_preprobe=preprobe)
        decoded = decode_response(_response_for(marking, 0x14000042))
        assert decoded.initial_ttl == ttl
        assert decoded.is_preprobe == preprobe
        assert decoded.timestamp_ms == int(send_time * 1000) % TIMESTAMP_WRAP_MS
        assert decoded.dst == 0x14000042

    def test_ttl_32_uses_all_five_bits(self):
        marking = encode_probe(1, 32, 0.0)
        decoded = decode_response(_response_for(marking, 1))
        assert decoded.initial_ttl == 32


class TestIntegrity:
    def test_intact_destination_passes(self):
        marking = encode_probe(0x14000001, 8, 0.0)
        decoded = decode_response(_response_for(marking, 0x14000001))
        assert destination_intact(decoded)

    def test_rewritten_destination_detected(self):
        marking = encode_probe(0x14000001, 8, 0.0)
        # Middlebox rewrote the destination: the quote carries another
        # address but the original checksum port.
        decoded = decode_response(_response_for(marking, 0x14000099))
        assert not destination_intact(decoded)

    def test_extra_scan_offset_respected(self):
        marking = encode_probe(0x14000001, 8, 0.0, scan_offset=3)
        decoded = decode_response(_response_for(marking, 0x14000001))
        assert destination_intact(decoded, scan_offset=3)
        assert not destination_intact(decoded, scan_offset=0)


class TestRtt:
    def test_simple_rtt(self):
        marking = encode_probe(1, 8, send_time=1.000)
        decoded = decode_response(_response_for(marking, 1))
        assert rtt_ms(decoded, receive_time=1.250) == pytest.approx(250.0)

    def test_wraparound_recovery(self):
        # Send just before the 65.536 s wrap, receive just after.
        send = 65.530
        marking = encode_probe(1, 8, send_time=send)
        decoded = decode_response(_response_for(marking, 1))
        assert rtt_ms(decoded, receive_time=send + 0.100) == pytest.approx(100.0)

    @given(st.floats(min_value=0, max_value=10_000, allow_nan=False),
           st.integers(min_value=1, max_value=60_000))
    def test_any_subwrap_rtt_exact(self, send_time, rtt_int):
        marking = encode_probe(1, 8, send_time=send_time)
        decoded = decode_response(_response_for(marking, 1))
        send_ms = int(send_time * 1000)
        receive = (send_ms + rtt_int) / 1000.0
        # Float-to-ms truncation can shave one millisecond.
        assert abs(rtt_ms(decoded, receive) - rtt_int) <= 1


class TestYarrpEncoding:
    def test_seq_is_elapsed_ms(self):
        assert yarrp_tcp_seq(1.5, scan_start=0.5) == 1000

    def test_rejects_negative_elapsed(self):
        with pytest.raises(EncodingError):
            yarrp_tcp_seq(0.0, scan_start=1.0)

    def test_elapsed_recovery(self):
        seq = yarrp_tcp_seq(2.0)
        assert yarrp_elapsed_from_seq(seq, receive_time=2.3) == pytest.approx(300.0)

    def test_implausible_seq_rejected(self):
        assert yarrp_elapsed_from_seq(10_000, receive_time=1.0) is None
