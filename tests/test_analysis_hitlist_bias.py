"""§5.1 hitlist-bias analysis on synthetic scan pairs."""

import pytest

from repro.analysis.hitlist_bias import analyze_hitlist_bias
from repro.core.results import ScanResult


def _scan(tool, routes, dests, targets):
    result = ScanResult(tool=tool)
    result.targets = dict(targets)
    for prefix, hops in routes.items():
        for ttl, responder in hops.items():
            result.add_hop(prefix, ttl, responder)
    for prefix, distance in dests.items():
        result.record_destination(prefix, distance)
    return result


@pytest.fixture()
def scans():
    # Prefix 100: hitlist target is the gateway (distance 3); the random
    # target sits behind it (distance 5) revealing interior hops 0xC1, 0xC2.
    # Prefix 101: hitlist responds, random does not and its route loops.
    # Prefix 102: both respond at equal distance.
    targets_h = {100: (100 << 8) | 1, 101: (101 << 8) | 1,
                 102: (102 << 8) | 1}
    targets_r = {100: (100 << 8) | 77, 101: (101 << 8) | 99,
                 102: (102 << 8) | 50}
    hitlist = _scan(
        "hitlist",
        {100: {1: 0xA1, 2: 0xA2},
         101: {1: 0xA1, 2: 0xB2},
         102: {1: 0xA1}},
        {100: 3, 101: 3, 102: 2},
        targets_h)
    random_scan = _scan(
        "random",
        {100: {1: 0xA1, 2: 0xA2, 3: (100 << 8) | 1, 4: 0xC2},
         101: {1: 0xA1, 2: 0xB2, 3: 0xB9, 4: 0xB2},  # 0xB2 repeats: loop
         102: {1: 0xA1}},
        {100: 5, 102: 2},
        targets_r)
    return hitlist, random_scan


class TestAnalyzeHitlistBias:
    def test_interface_counts(self, scans):
        report = analyze_hitlist_bias(*scans)
        assert report.random_interfaces > report.hitlist_interfaces

    def test_route_length_asymmetry(self, scans):
        report = analyze_hitlist_bias(*scans)
        assert report.random_longer >= 1
        assert report.random_longer > report.hitlist_longer

    def test_responsive_counts(self, scans):
        report = analyze_hitlist_bias(*scans)
        assert report.hitlist_responsive == 3
        assert report.random_responsive == 2

    def test_both_responsive_subset(self, scans):
        report = analyze_hitlist_bias(*scans)
        assert report.both_responsive == 2
        assert report.both_random_longer == 1
        assert report.both_hitlist_longer == 0

    def test_hitlist_target_on_random_route_detected(self, scans):
        report = analyze_hitlist_bias(*scans)
        # The hitlist target of prefix 100 appears as hop 3 of the random
        # scan's route.
        assert report.hitlist_on_random_routes == 1
        assert report.random_on_hitlist_routes == 0

    def test_loop_detection(self, scans):
        report = analyze_hitlist_bias(*scans)
        assert report.unresponsive_random_with_responsive_hitlist == 1
        assert report.looped_routes == 1
        assert report.loop_fraction() == 1.0

    def test_tail_interfaces(self, scans):
        report = analyze_hitlist_bias(*scans)
        # 0xC2 (and the target hop) sit beyond the hitlist route's end.
        assert report.random_extra_tail_interfaces >= 1

    def test_interface_gap(self, scans):
        report = analyze_hitlist_bias(*scans)
        assert report.interface_gap() == (report.random_interfaces
                                          - report.hitlist_interfaces)

    def test_empty_scans(self):
        empty_a = _scan("a", {}, {}, {})
        empty_b = _scan("b", {}, {}, {})
        report = analyze_hitlist_bias(empty_a, empty_b)
        assert report.loop_fraction() == 0.0
        assert report.both_responsive == 0
