"""Synthesized ISI hitlist: selection rule and the bias it encodes."""

import random

import pytest

from repro.simnet.config import TopologyConfig
from repro.simnet.hitlist import hitlist_addresses, synthesize_hitlist
from repro.simnet.topology import Topology


class TestSynthesis:
    def test_every_prefix_gets_a_pick(self, small_topology):
        for record in small_topology.prefixes:
            assert 1 <= record.hitlist_host <= 254

    def test_gateway_preferred_when_responsive(self, small_topology):
        topo = small_topology
        for stub in topo.stubs:
            if not topo.udp_resp[stub.gateway_iface]:
                continue
            record = topo.prefixes[stub.first_offset]
            gateway_octet = topo.iface_addrs[stub.gateway_iface] & 0xFF
            assert record.hitlist_host == gateway_octet

    def test_deterministic(self, small_topology):
        before = [record.hitlist_host for record in small_topology.prefixes]
        synthesize_hitlist(small_topology,
                           random.Random(small_topology.config.seed ^ 0x48495453))
        after = [record.hitlist_host for record in small_topology.prefixes]
        assert before == after

    def test_addresses_map(self, small_topology):
        addresses = hitlist_addresses(small_topology)
        assert len(addresses) == small_topology.num_prefixes
        for prefix, addr in addresses.items():
            assert addr >> 8 == prefix


class TestEncodedBias:
    """The structural properties §5.1 measures must hold by construction."""

    def test_hitlist_prefers_shallower_destinations(self, small_topology):
        """Averaged over prefixes where both are assigned, the hitlist pick
        sits no deeper than a random assigned host."""
        topo = small_topology
        hit_depths = []
        host_depths = []
        for offset, record in enumerate(topo.prefixes):
            prefix = topo.base_prefix + offset
            hit_dst = (prefix << 8) | record.hitlist_host
            hit_depth = topo.destination_distance(hit_dst)
            if hit_depth is not None:
                hit_depths.append(hit_depth)
            if record.active_hosts:
                host = (prefix << 8) | max(record.active_hosts)
                host_depth = topo.destination_distance(host)
                if host_depth is not None:
                    host_depths.append(host_depth)
        assert hit_depths and host_depths
        assert (sum(hit_depths) / len(hit_depths)
                <= sum(host_depths) / len(host_depths))

    def test_some_hitlist_picks_are_on_path_appliances(self, small_topology):
        """A visible share of hitlist picks are router interfaces (gateway
        or interior appliances) — the paper's periphery preference."""
        topo = small_topology
        appliance_picks = sum(
            1 for record in topo.prefixes
            if record.hitlist_host in record.special_hosts)
        assert appliance_picks > 0.02 * topo.num_prefixes

    def test_hitlist_more_ping_responsive_than_random(self, small_topology):
        """Picks favour addresses that exist (ping responders), even when
        those are invisible to UDP preprobing."""
        topo = small_topology
        exists = 0
        for offset, record in enumerate(topo.prefixes):
            octet = record.hitlist_host
            if (octet in record.active_hosts or octet in record.ping_hosts
                    or octet in record.special_hosts):
                exists += 1
        # A uniform random pick would land on an existing address far less
        # often (host density ~13% of active prefixes).
        assert exists > 0.3 * topo.num_prefixes
