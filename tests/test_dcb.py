"""Destination control blocks and the overlaid ring (paper §3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dcb import (
    DCBArray,
    FLAG_DEST_REACHED,
    FLAG_REMOVED,
    initial_order,
)


def make(size=10, split=16, gap=5):
    return DCBArray(list(range(1000, 1000 + size)), split, gap)


class TestConstruction:
    def test_initial_fields(self):
        dcb = make(split=16, gap=5)
        view = dcb.view(0)
        assert view.split_ttl == 16
        assert view.next_backward == 16
        assert view.next_forward == 17
        assert view.forward_horizon == 21

    def test_destinations_stored(self):
        dcb = make(size=4)
        assert dcb.destination == [1000, 1001, 1002, 1003]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DCBArray([], 16, 5)

    def test_rejects_huge_split(self):
        with pytest.raises(ValueError):
            DCBArray([1], 300, 5)

    def test_unlinked_until_ring_built(self):
        dcb = make()
        assert len(dcb) == 0
        assert dcb.head == -1


class TestRing:
    def test_link_all(self):
        dcb = make(size=5)
        dcb.link_ring([3, 1, 4, 0, 2])
        assert len(dcb) == 5
        assert dcb.head == 3
        assert list(dcb.iter_ring()) == [3, 1, 4, 0, 2]

    def test_ring_is_circular(self):
        dcb = make(size=3)
        dcb.link_ring([0, 1, 2])
        assert dcb.next_index[2] == 0
        assert dcb.prev_index[0] == 2

    def test_excluded_slots_marked_removed(self):
        dcb = make(size=5)
        dcb.link_ring([0, 2, 4])
        assert dcb.is_removed(1)
        assert dcb.is_removed(3)
        assert not dcb.is_removed(0)

    def test_remove_middle(self):
        dcb = make(size=4)
        dcb.link_ring([0, 1, 2, 3])
        dcb.remove(1)
        assert list(dcb.iter_ring()) == [0, 2, 3]
        assert len(dcb) == 3

    def test_remove_head_moves_head(self):
        dcb = make(size=3)
        dcb.link_ring([0, 1, 2])
        dcb.remove(0)
        assert dcb.head == 1
        assert list(dcb.iter_ring()) == [1, 2]

    def test_remove_last_empties_ring(self):
        dcb = make(size=1)
        dcb.link_ring([0])
        dcb.remove(0)
        assert len(dcb) == 0
        assert dcb.head == -1
        assert list(dcb.iter_ring()) == []

    def test_double_remove_is_noop(self):
        dcb = make(size=3)
        dcb.link_ring([0, 1, 2])
        dcb.remove(1)
        dcb.remove(1)
        assert len(dcb) == 2

    def test_remove_during_iteration(self):
        # The sender's pattern: unlink the current element mid-walk.
        dcb = make(size=5)
        dcb.link_ring([0, 1, 2, 3, 4])
        visited = []
        for index in dcb.iter_ring():
            visited.append(index)
            dcb.remove(index)
        assert visited == [0, 1, 2, 3, 4]
        assert len(dcb) == 0

    def test_link_ring_rejects_empty_order(self):
        dcb = make()
        with pytest.raises(ValueError):
            dcb.link_ring([])

    def test_link_ring_rejects_bad_index(self):
        dcb = make(size=3)
        with pytest.raises(IndexError):
            dcb.link_ring([0, 7])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=10**6))
    def test_remove_random_subset_preserves_order(self, size, seed):
        import random
        rng = random.Random(seed)
        dcb = make(size=size)
        order = list(range(size))
        rng.shuffle(order)
        dcb.link_ring(order)
        to_remove = {i for i in range(size) if rng.random() < 0.5}
        for index in to_remove:
            dcb.remove(index)
        expected = [i for i in order if i not in to_remove]
        ring = list(dcb.iter_ring())
        if expected:
            # The ring preserves relative permutation order.
            start = expected.index(ring[0])
            assert ring == expected[start:] + expected[:start]
        else:
            assert ring == []


class TestFlags:
    def test_dest_reached(self):
        dcb = make(size=2)
        dcb.mark_dest_reached(1)
        assert dcb.dest_reached(1)
        assert not dcb.dest_reached(0)

    def test_set_distance_measured(self):
        dcb = make()
        dcb.set_distance(0, 12, predicted=False)
        view = dcb.view(0)
        assert view.split_ttl == 12
        assert view.next_backward == 12
        assert view.next_forward == 13
        assert view.distance_measured
        assert not view.distance_predicted

    def test_set_distance_predicted(self):
        dcb = make()
        dcb.set_distance(0, 9, predicted=True)
        assert dcb.view(0).distance_predicted

    def test_flags_are_independent_bits(self):
        dcb = make(size=1)
        dcb.link_ring([0])
        dcb.mark_dest_reached(0)
        dcb.remove(0)
        assert dcb.flags[0] & FLAG_DEST_REACHED
        assert dcb.flags[0] & FLAG_REMOVED


class TestMemory:
    def test_footprint_scales_linearly(self):
        small = make(size=100).memory_footprint()
        large = make(size=10_000).memory_footprint()
        assert large > small
        # Struct-of-arrays: well under 100 bytes per destination.
        assert large / 10_000 < 100


class TestInitialOrder:
    def test_is_permutation(self):
        order = initial_order(100, seed=5)
        assert sorted(order) == list(range(100))

    def test_excludes(self):
        order = initial_order(100, seed=5, excluded={0, 99, 42})
        assert sorted(order) == sorted(set(range(100)) - {0, 99, 42})

    def test_deterministic(self):
        assert initial_order(64, seed=8) == initial_order(64, seed=8)
