"""FlashRoute engine integration tests: probing logic, stop conditions,
preprobing, folding, and ground-truth consistency."""

import pytest

from repro.core.config import FlashRouteConfig, PreprobeMode
from repro.core.prober import FlashRoute
from repro.core.targets import random_targets
from repro.simnet.network import SimulatedNetwork


def scan(topology, targets, **config_kwargs):
    config = FlashRouteConfig(**config_kwargs)
    return FlashRoute(config).scan(SimulatedNetwork(topology),
                                   targets=targets)


class TestScanCompletion:
    def test_scan_terminates(self, tiny_topology, tiny_targets):
        result = scan(tiny_topology, tiny_targets)
        assert not result.aborted
        assert result.rounds >= 1
        assert result.duration > 0

    def test_every_target_recorded(self, tiny_topology, tiny_targets):
        result = scan(tiny_topology, tiny_targets)
        assert result.targets == tiny_targets
        assert result.num_targets == len(tiny_targets)

    def test_deterministic(self, tiny_topology, tiny_targets):
        a = scan(tiny_topology, tiny_targets, seed=5)
        b = scan(tiny_topology, tiny_targets, seed=5)
        assert a.probes_sent == b.probes_sent
        assert a.routes == b.routes
        assert a.duration == b.duration


class TestGroundTruthConsistency:
    def test_hops_match_reality(self, tiny_topology, tiny_targets):
        """Every recorded hop must be the true interface at that TTL for
        some flow (the engine cannot invent topology)."""
        topo = tiny_topology
        result = scan(topo, tiny_targets)
        for prefix, hops in result.routes.items():
            dst = tiny_targets[prefix]
            from repro.net.checksum import addr_checksum
            flow = addr_checksum(dst)
            for ttl, responder in hops.items():
                candidates = set()
                for epoch in (0, 1):
                    hop = topo.hop_at(dst, ttl, flow=flow, epoch=epoch)
                    if hop.iface >= 0:
                        candidates.add(topo.iface_addrs[hop.iface])
                assert responder in candidates

    def test_interfaces_are_real(self, tiny_topology, tiny_targets):
        topo = tiny_topology
        result = scan(topo, tiny_targets)
        known = set(topo.iface_addrs)
        assert result.interfaces() <= known

    def test_destination_distances_are_true(self, tiny_topology, tiny_targets):
        topo = tiny_topology
        result = scan(topo, tiny_targets)
        for prefix, measured in result.dest_distance.items():
            dst = tiny_targets[prefix]
            truth = {topo.destination_distance(dst, epoch=epoch)
                     for epoch in (0, 1)}
            assert measured in truth


class TestProbeBudget:
    def test_exhaustive_mode_is_exactly_32_per_target(self, tiny_topology,
                                                      tiny_targets):
        config = FlashRouteConfig.yarrp32_udp_simulation()
        result = FlashRoute(config).scan(SimulatedNetwork(tiny_topology),
                                         targets=tiny_targets)
        assert result.probes_sent == 32 * len(tiny_targets)

    def test_redundancy_removal_saves_probes(self, tiny_topology,
                                             tiny_targets):
        with_removal = scan(tiny_topology, tiny_targets, split_ttl=16,
                            preprobe=PreprobeMode.NONE,
                            redundancy_removal=True)
        without = scan(tiny_topology, tiny_targets, split_ttl=16,
                       preprobe=PreprobeMode.NONE, redundancy_removal=False)
        assert with_removal.probes_sent < without.probes_sent

    def test_flashroute16_beats_exhaustive(self, tiny_topology, tiny_targets):
        fr16 = scan(tiny_topology, tiny_targets, split_ttl=16)
        exhaustive = FlashRoute(
            FlashRouteConfig.yarrp32_udp_simulation()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        # On 128 prefixes path sharing is weak, so the savings are smaller
        # than at scale (the benchmarks assert the paper's full ratios).
        assert fr16.probes_sent < 0.65 * exhaustive.probes_sent
        # ... while finding nearly as many interfaces.
        assert fr16.interface_count() > 0.9 * exhaustive.interface_count()

    def test_each_target_ttl_probed_at_most_once(self, tiny_topology,
                                                 tiny_targets):
        """Without retries, no (destination, TTL) pair is probed twice."""
        topo = tiny_topology
        network = SimulatedNetwork(topo, log_probes=True)
        FlashRoute(FlashRouteConfig(split_ttl=16,
                                    preprobe=PreprobeMode.NONE)).scan(
            network, targets=tiny_targets)
        seen = set()
        for _t, dst, ttl in network.probe_log:
            assert (dst, ttl) not in seen
            seen.add((dst, ttl))


class TestPreprobing:
    def test_preprobe_probe_count(self, tiny_topology, tiny_targets):
        result = scan(tiny_topology, tiny_targets, split_ttl=16,
                      preprobe=PreprobeMode.RANDOM)
        assert result.preprobe_probes == len(tiny_targets)

    def test_no_preprobe_means_no_preprobe_probes(self, tiny_topology,
                                                  tiny_targets):
        result = scan(tiny_topology, tiny_targets,
                      preprobe=PreprobeMode.NONE)
        assert result.preprobe_probes == 0

    def test_fold_saves_the_preprobe_round(self, tiny_topology, tiny_targets):
        """With split 32 + random preprobing the preprobe IS the first
        round, so it must not cost extra probes compared to no preprobing
        (paper §4.1.3: 'preprobing does not entail extra probes')."""
        folded = scan(tiny_topology, tiny_targets, split_ttl=32,
                      preprobe=PreprobeMode.RANDOM)
        plain = scan(tiny_topology, tiny_targets, split_ttl=32,
                     preprobe=PreprobeMode.NONE)
        # The preprobe round replaces the first main round one-for-one, so
        # folding never costs more than a sliver (distance-guided split
        # points can shift a couple of probes either way on 128 prefixes).
        assert folded.probes_sent <= plain.probes_sent * 1.02

    def test_split16_preprobe_costs_extra(self, tiny_topology, tiny_targets):
        """With split 16 the preprobe cannot fold; wasted preprobes make the
        scan at least as expensive in probes (paper Table 2)."""
        preprobed = scan(tiny_topology, tiny_targets, split_ttl=16,
                         preprobe=PreprobeMode.RANDOM)
        plain = scan(tiny_topology, tiny_targets, split_ttl=16,
                     preprobe=PreprobeMode.NONE)
        assert preprobed.preprobe_probes > 0


class TestStopConditions:
    def test_gap_limit_zero_means_no_forward(self, tiny_topology,
                                             tiny_targets):
        result = scan(tiny_topology, tiny_targets, split_ttl=16, gap_limit=0,
                      preprobe=PreprobeMode.NONE)
        # No probe may exceed the split TTL.
        assert all(ttl <= 16 for ttl in result.ttl_probe_histogram)

    def test_forward_probing_extends_beyond_split(self, tiny_topology,
                                                  tiny_targets):
        result = scan(tiny_topology, tiny_targets, split_ttl=16, gap_limit=5,
                      preprobe=PreprobeMode.NONE)
        assert any(ttl > 16 for ttl in result.ttl_probe_histogram)

    def test_max_ttl_respected(self, tiny_topology, tiny_targets):
        result = scan(tiny_topology, tiny_targets, split_ttl=16, gap_limit=5,
                      preprobe=PreprobeMode.NONE, max_ttl=20)
        assert max(result.ttl_probe_histogram) <= 20

    def test_backward_probing_reaches_ttl_1_without_removal(
            self, tiny_topology, tiny_targets):
        result = scan(tiny_topology, tiny_targets, split_ttl=16,
                      preprobe=PreprobeMode.NONE, redundancy_removal=False)
        assert result.ttl_probe_histogram[1] == len(tiny_targets)

    def test_redundancy_removal_prunes_low_ttls(self, tiny_topology,
                                                tiny_targets):
        result = scan(tiny_topology, tiny_targets, split_ttl=16,
                      preprobe=PreprobeMode.NONE, redundancy_removal=True)
        # Convergence termination means almost nobody probes TTL 1.
        assert result.ttl_probe_histogram[1] < len(tiny_targets) * 0.2


class TestStartTtls:
    def test_start_ttls_override_split(self, tiny_topology, tiny_targets):
        start = {prefix: 4 for prefix in tiny_targets}
        result = FlashRoute(FlashRouteConfig(
            split_ttl=16, gap_limit=0, preprobe=PreprobeMode.NONE)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets,
            start_ttls=start)
        assert max(result.ttl_probe_histogram) <= 4


class TestSharedStopSet:
    def test_shared_stop_set_shrinks_second_scan(self, tiny_topology,
                                                 tiny_targets):
        stop_set = set()
        first = FlashRoute(FlashRouteConfig(
            split_ttl=16, preprobe=PreprobeMode.NONE)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets,
            stop_set=stop_set)
        assert stop_set  # populated by the first scan
        second = FlashRoute(FlashRouteConfig(
            split_ttl=16, preprobe=PreprobeMode.NONE, seed=2)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets,
            stop_set=stop_set)
        assert second.probes_sent < first.probes_sent


class TestExclusions:
    def test_excluded_prefixes_never_probed(self, tiny_topology,
                                            tiny_targets):
        excluded = sorted(tiny_targets)[:5]
        network = SimulatedNetwork(tiny_topology, log_probes=True)
        FlashRoute(FlashRouteConfig(preprobe=PreprobeMode.NONE)).scan(
            network, targets=tiny_targets, excluded=excluded)
        probed_prefixes = {dst >> 8 for _t, dst, ttl in network.probe_log}
        assert not probed_prefixes & set(excluded)

    def test_all_excluded_raises(self, tiny_topology, tiny_targets):
        with pytest.raises(ValueError):
            FlashRoute(FlashRouteConfig(preprobe=PreprobeMode.NONE)).scan(
                SimulatedNetwork(tiny_topology), targets=tiny_targets,
                excluded=list(tiny_targets))


class TestTiming:
    def test_duration_respects_round_pacing(self, tiny_topology,
                                            tiny_targets):
        result = scan(tiny_topology, tiny_targets,
                      preprobe=PreprobeMode.NONE, round_seconds=1.0)
        assert result.duration >= result.rounds * 1.0

    def test_higher_rate_is_faster(self, tiny_topology, tiny_targets):
        slow = scan(tiny_topology, tiny_targets, preprobe=PreprobeMode.NONE,
                    probing_rate=100.0)
        fast = scan(tiny_topology, tiny_targets, preprobe=PreprobeMode.NONE,
                    probing_rate=10_000.0)
        assert fast.duration < slow.duration
        assert fast.probes_sent == pytest.approx(slow.probes_sent, rel=0.15)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"split_ttl": 0}, {"split_ttl": 33}, {"gap_limit": -1},
        {"max_ttl": 0}, {"max_ttl": 40}, {"proximity_span": -1},
        {"probing_rate": 0.0}, {"round_seconds": -0.5},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            FlashRouteConfig(**kwargs)

    def test_string_preprobe_coerced(self):
        assert FlashRouteConfig(preprobe="hitlist").preprobe is \
            PreprobeMode.HITLIST
