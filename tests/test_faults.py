"""Deterministic fault injection (repro.simnet.faults)."""

import pytest

from repro.core import FlashRoute, FlashRouteConfig
from repro.core.output import result_to_dict
from repro.core.scanner import ScannerOptions, create_scanner
from repro.simnet import (
    FaultInjector,
    FaultModel,
    SimulatedNetwork,
    Topology,
    TopologyConfig,
)

CFG = TopologyConfig(num_prefixes=96, seed=13)


@pytest.fixture(scope="module")
def topology():
    return Topology(CFG)


def scan_dict(topology, faults=None, use_route_cache=True, gap_limit=5,
              seed=1):
    network = SimulatedNetwork(topology, faults=faults,
                               use_route_cache=use_route_cache)
    config = FlashRouteConfig(split_ttl=16, gap_limit=gap_limit, seed=seed)
    result = FlashRoute(config).scan(network)
    return result_to_dict(result)


class TestFaultModel:
    def test_default_is_disabled(self):
        assert not FaultModel().enabled

    def test_enabled_by_any_fault(self):
        assert FaultModel(probe_loss=0.1).enabled
        assert FaultModel(response_loss=0.1).enabled
        assert FaultModel(reorder_window=0.01).enabled
        assert FaultModel(duplicate_probability=0.1).enabled
        assert FaultModel(blackout_fraction=0.1).enabled

    def test_blackout_without_duration_is_disabled(self):
        assert not FaultModel(blackout_fraction=0.5,
                              blackout_duration=0.0).enabled

    @pytest.mark.parametrize("kwargs", [
        {"probe_loss": -0.1},
        {"probe_loss": 1.0},
        {"response_loss": 1.5},
        {"duplicate_probability": -1},
        {"blackout_fraction": 1.2},
        {"reorder_window": -0.5},
        {"blackout_period": 0.0},
        {"blackout_duration": 100.0},  # > default period
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)

    def test_symmetric_loss(self):
        model = FaultModel.symmetric_loss(0.05, seed=9)
        assert model.probe_loss == 0.05
        assert model.response_loss == 0.05
        assert model.seed == 9


class TestZeroFaultIdentity:
    def test_disabled_model_builds_no_injector(self, topology):
        network = SimulatedNetwork(topology, faults=FaultModel())
        assert network.faults is None

    def test_zero_fault_scan_is_bit_identical(self, topology):
        """A FaultModel() network must reproduce the no-faults network's
        output exactly, field for field."""
        baseline = scan_dict(topology, faults=None)
        with_model = scan_dict(topology, faults=FaultModel())
        assert with_model == baseline

    def test_config_default_model_is_bit_identical(self, topology):
        """TopologyConfig grows a faults field; its default must leave the
        network's behaviour untouched."""
        assert not topology.config.faults.enabled
        baseline = scan_dict(topology, faults=None)
        assert scan_dict(topology) == baseline


class TestDeterminism:
    def test_same_seed_same_result(self, topology):
        model = FaultModel.symmetric_loss(0.05, seed=77)
        first = scan_dict(topology, faults=model)
        second = scan_dict(topology, faults=model)
        assert first == second

    def test_cached_and_uncached_agree_under_faults(self, topology):
        """The cached-vs-uncached equivalence guarantee must survive fault
        injection: faults apply post-lookup from stateless per-probe
        hashes, so serving mode cannot change the fault sequence."""
        model = FaultModel(probe_loss=0.04, response_loss=0.04,
                           duplicate_probability=0.03, seed=5)
        cached = scan_dict(topology, faults=model, use_route_cache=True)
        uncached = scan_dict(topology, faults=model, use_route_cache=False)
        assert cached == uncached

    def test_different_seeds_differ(self, topology):
        a = scan_dict(topology, faults=FaultModel.symmetric_loss(0.1, seed=1))
        b = scan_dict(topology, faults=FaultModel.symmetric_loss(0.1, seed=2))
        assert a != b


class TestFaultEffects:
    def test_loss_reduces_discovery(self, topology):
        baseline = scan_dict(topology)
        lossy = scan_dict(topology,
                          faults=FaultModel.symmetric_loss(0.2, seed=3))
        count = lambda payload: len({r for hops in payload["routes"].values()
                                     for r in hops.values()})
        assert count(lossy) < count(baseline)
        assert lossy["responses"] < baseline["responses"]

    def test_duplicates_are_recorded(self, topology):
        model = FaultModel(duplicate_probability=0.3, seed=11)
        payload = scan_dict(topology, faults=model)
        assert payload["duplicate_responses"] > 0
        # Counted inside responses, never beyond them.
        assert payload["duplicate_responses"] <= payload["responses"]
        # A duplicate re-hits the Doubletree stop set, so it terminates
        # backward probing earlier — the scan must shrink, not grow.
        baseline = scan_dict(topology)
        assert payload["probes_sent"] <= baseline["probes_sent"]

    def test_blackouts_drop_responses(self, topology):
        model = FaultModel(blackout_fraction=0.5, blackout_period=10.0,
                           blackout_duration=5.0, seed=21)
        network = SimulatedNetwork(topology, faults=model)
        FlashRoute(FlashRouteConfig(split_ttl=16)).scan(network)
        assert network.faults.blackout_drops > 0

    def test_reordering_changes_arrival_only(self, topology):
        model = FaultModel(reorder_window=0.05, seed=8)
        payload = scan_dict(topology, faults=model)
        baseline = scan_dict(topology)
        # Same topology knowledge, possibly different counters/timing.
        assert payload["routes"] == baseline["routes"]

    def test_injector_counters(self, topology):
        model = FaultModel.symmetric_loss(0.1, seed=4)
        network = SimulatedNetwork(topology, faults=model)
        FlashRoute(FlashRouteConfig(split_ttl=16)).scan(network)
        stats = network.faults.stats()
        assert stats["probes_lost"] > 0
        assert stats["responses_lost"] > 0
        network.reset()
        assert network.faults.stats()["probes_lost"] == 0


class TestGapLimitUnderLoss:
    def test_gap_limit_bounds_truncation(self, topology):
        """§4.2: under loss, gap limit 5 keeps forward probing alive past
        lost replies; gap limit 1 truncates at the first one.  The default
        must therefore discover at least as much, and strictly more
        somewhere, than gap 1 on the same fault sequence."""
        model = FaultModel.symmetric_loss(0.1, seed=6)

        def interfaces(gap):
            scanner = create_scanner("flashroute-16",
                                     ScannerOptions(gap_limit=gap))
            network = SimulatedNetwork(topology, faults=model)
            return scanner.scan(network).interface_count()

        assert interfaces(5) > interfaces(1)


class TestInjectorUnit:
    def test_filter_probe_loss_certain(self):
        # probe_loss close to 1 drops (nearly) everything; the filter must
        # never return a response object for a dropped probe.
        injector = FaultInjector(FaultModel(probe_loss=0.999, seed=1))
        dropped = sum(
            1 for i in range(500)
            if injector.filter(i, 10, float(i), None) is None)
        assert dropped == 500
        assert injector.probes_lost > 450

    def test_filter_is_pure_per_probe(self):
        injector = FaultInjector(FaultModel(probe_loss=0.5, seed=1))
        first = [injector.filter(dst, 7, 0.25, None) is None
                 for dst in range(100)]
        second = [injector.filter(dst, 7, 0.25, None) is None
                  for dst in range(100)]
        assert first == second
