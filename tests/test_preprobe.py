"""Proximity-span distance prediction (paper §3.3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.preprobe import (
    PreprobeOutcome,
    clamp_distance,
    predict_distances,
)


class TestPredictDistances:
    def test_spreads_both_directions(self):
        predicted = predict_distances({10: 15}, num_prefixes=21,
                                      proximity_span=5)
        assert set(predicted) == {5, 6, 7, 8, 9, 11, 12, 13, 14, 15}
        assert all(value == 15 for value in predicted.values())

    def test_clipped_at_space_edges(self):
        predicted = predict_distances({0: 9}, num_prefixes=3,
                                      proximity_span=5)
        assert set(predicted) == {1, 2}

    def test_nearest_neighbour_wins(self):
        predicted = predict_distances({0: 10, 10: 20}, num_prefixes=11,
                                      proximity_span=5)
        assert predicted[1] == 10
        assert predicted[9] == 20

    def test_tie_prefers_preceding_block(self):
        # Offset 5 is equidistant from 0 and 10; allocation is
        # left-to-right so the preceding block wins.
        predicted = predict_distances({0: 10, 10: 20}, num_prefixes=11,
                                      proximity_span=5)
        assert predicted[5] == 10

    def test_measured_prefixes_not_predicted(self):
        predicted = predict_distances({3: 7}, num_prefixes=10,
                                      proximity_span=5)
        assert 3 not in predicted

    def test_span_zero_predicts_nothing(self):
        assert predict_distances({5: 9}, 100, 0) == {}

    def test_empty_measured_predicts_nothing(self):
        assert predict_distances({}, 100, 5) == {}

    def test_gap_larger_than_span_not_covered(self):
        predicted = predict_distances({0: 8}, num_prefixes=20,
                                      proximity_span=3)
        assert 4 not in predicted
        assert 3 in predicted

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(min_value=0, max_value=199),
                           st.integers(min_value=1, max_value=32),
                           max_size=40),
           st.integers(min_value=1, max_value=10))
    def test_all_predictions_come_from_a_span_neighbour(self, measured, span):
        predicted = predict_distances(measured, 200, span)
        for offset, value in predicted.items():
            neighbours = [measured[offset + delta]
                          for delta in range(-span, span + 1)
                          if offset + delta in measured]
            assert value in neighbours
            assert offset not in measured

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(min_value=0, max_value=99),
                           st.integers(min_value=1, max_value=32),
                           min_size=1, max_size=99),
           st.integers(min_value=1, max_value=8))
    def test_coverage_is_monotone_in_span(self, measured, span):
        smaller = predict_distances(measured, 100, span)
        larger = predict_distances(measured, 100, span + 1)
        assert set(smaller) <= set(larger)


class TestClampDistance:
    def test_in_range_passthrough(self):
        assert clamp_distance(17, 32) == 17

    def test_clamps_to_max(self):
        assert clamp_distance(50, 32) == 32

    def test_rejects_nonpositive(self):
        assert clamp_distance(0, 32) is None
        assert clamp_distance(-3, 32) is None


class TestPreprobeOutcome:
    def test_coverage(self):
        outcome = PreprobeOutcome(measured={0: 5}, predicted={1: 5, 2: 5})
        assert outcome.coverage(10) == pytest.approx(0.3)

    def test_coverage_empty_space(self):
        assert PreprobeOutcome().coverage(0) == 0.0

    def test_distance_for_prefers_measured(self):
        outcome = PreprobeOutcome(measured={0: 5}, predicted={0: 9, 1: 9})
        assert outcome.distance_for(0) == 5
        assert outcome.distance_for(1) == 9
        assert outcome.distance_for(2) is None
